#!/usr/bin/env python
"""Social-network growth: how LinkedIn-style contact discovery reshapes the graph.

The paper's second motivating application: people discover new contacts
through triangulation ("let me introduce two of my friends") or two-hop
introductions ("a friend of a friend").  This example starts from a
scale-free network and tracks, over time:

* the average number of direct contacts (1st degree),
* the sizes of the 2nd and 3rd degree neighbourhoods (the numbers LinkedIn
  shows on every profile),
* the network diameter and clustering coefficient.

Run with::

    python examples/social_network_growth.py [--n 96] [--rounds 150] [--process push]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.graphs import generators
from repro.social.evolution import simulate_social_evolution


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=96, help="number of people")
    parser.add_argument("--rounds", type=int, default=150, help="rounds of discovery")
    parser.add_argument("--process", choices=["push", "pull"], default="push")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    # A preferential-attachment network: a few highly connected people, many
    # with just a couple of contacts — a reasonable cartoon of a young
    # professional network.
    network = generators.barabasi_albert_graph(args.n, 2, np.random.default_rng(args.seed))
    label = "triangulation" if args.process == "push" else "two-hop introduction"
    print(f"Social network of {args.n} people evolving under {label}")
    print("-" * 86)
    print(
        f"{'round':>6s} {'contacts':>9s} {'2nd degree':>11s} {'3rd degree':>11s} "
        f"{'diameter':>9s} {'clustering':>11s} {'edges':>8s}"
    )

    snapshots = simulate_social_evolution(
        network,
        process=args.process,
        rounds=args.rounds,
        every=max(1, args.rounds // 6),
        seed=args.seed,
        probe_nodes=24,
    )
    for snap in snapshots:
        diameter = "-" if snap.diameter is None else str(snap.diameter)
        print(
            f"{snap.round_index:>6d} {snap.mean_degree:>9.1f} {snap.mean_second_degree:>11.1f} "
            f"{snap.mean_third_degree:>11.1f} {diameter:>9s} {snap.average_clustering:>11.3f} "
            f"{snap.num_edges:>8d}"
        )

    first, last = snapshots[0], snapshots[-1]
    print()
    print(
        f"After {last.round_index} rounds the average member grew from "
        f"{first.mean_degree:.1f} to {last.mean_degree:.1f} direct contacts; the 2-hop "
        f"neighbourhood went from {first.mean_second_degree:.1f} to "
        f"{last.mean_second_degree:.1f} as contacts-of-contacts turn into contacts."
    )
    if first.diameter is not None and last.diameter is not None:
        print(f"The network diameter shrank from {first.diameter} to {last.diameter}.")


if __name__ == "__main__":
    main()
