#!/usr/bin/env python
"""Group discovery: members of a social group find each other in O(k log² k) rounds.

The paper's corollary: if k nodes induce a connected subgraph (a club, an
alumni group), running the gossip process among themselves completes the
group in O(k log² k) rounds regardless of how big the surrounding network
is.  This example embeds groups of growing size in a large host network
and shows that the convergence time tracks the group size, not the host.

Run with::

    python examples/group_discovery.py [--host-n 512] [--groups 8 16 32 64]
"""

from __future__ import annotations

import argparse
import math

import numpy as np

from repro.graphs import generators
from repro.social.group_discovery import discover_group


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host-n", type=int, default=512, help="host network size")
    parser.add_argument("--groups", type=int, nargs="+", default=[8, 16, 32, 64])
    parser.add_argument("--process", choices=["push", "pull"], default="push")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    host = generators.barabasi_albert_graph(args.host_n, 3, np.random.default_rng(args.seed))
    print(
        f"Group discovery inside a host network of {args.host_n} nodes "
        f"({args.process} process)"
    )
    print("-" * 66)
    print(f"{'group size k':>13s} {'rounds':>8s} {'rounds / (k ln^2 k)':>21s} {'complete':>9s}")
    for k in args.groups:
        result = discover_group(host, k=k, process=args.process, seed=args.seed)
        print(
            f"{result.group_size:>13d} {result.rounds:>8d} "
            f"{result.rounds_over_k_log2_k:>21.3f} {str(result.converged):>9s}"
        )
    print()
    print(
        "The normalised column stays roughly flat: the time for a group to fully\n"
        "discover itself is governed by the group size k alone — the other\n"
        f"{args.host_n} members of the network never slow it down."
    )


if __name__ == "__main__":
    main()
