#!/usr/bin/env python
"""Directed discovery: why directionality makes gossip discovery dramatically slower.

The paper's §5 shows the two-hop walk needs Θ(n² log n) rounds on directed
graphs, versus O(n log² n) undirected — the information can only flow along
edge directions, so "hard" cuts appear.  This example runs the directed
two-hop walk on:

* a bidirected cycle (effectively undirected),
* a random strongly connected digraph,
* the paper's Theorem-15 lower-bound construction (Figures 3/4),

and prints the rounds-to-closure side by side with the undirected pull
process at the same sizes.

Run with::

    python examples/directed_discovery.py [--sizes 8 16 24] [--seed 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.simulation.engine import measure_convergence_rounds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 24])
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("Directed two-hop walk: rounds until the transitive closure is reached")
    print("-" * 86)
    print(
        f"{'n':>4s} {'bidirected cycle':>17s} {'random strong':>14s} "
        f"{'thm15 (Fig 3/4)':>16s} {'undirected pull':>16s}"
    )
    for n in args.sizes:
        rng = np.random.default_rng(args.seed)
        rows = []
        for name, graph in [
            ("bidirected", dgen.bidirected_cycle(n)),
            ("random_strong", dgen.random_strongly_connected_digraph(n, 0.1, rng)),
            ("thm15", dgen.thm15_strong_lower_bound(n if n % 2 == 0 else n + 1)),
        ]:
            result = measure_convergence_rounds(
                "directed_pull", graph, rng=args.seed, copy_graph=False
            )
            rows.append(result.rounds)
        undirected = measure_convergence_rounds(
            "pull", gen.cycle_graph(n), rng=args.seed, copy_graph=False
        ).rounds
        print(
            f"{n:>4d} {rows[0]:>17d} {rows[1]:>14d} {rows[2]:>16d} {undirected:>16d}"
        )
    print()
    print(
        "The Theorem-15 construction keeps every out-degree at n/2 while hiding a\n"
        "single directed path the process must discover cut by cut, which is why\n"
        "its rounds blow up roughly quadratically while the undirected process\n"
        "stays near-linear."
    )


if __name__ == "__main__":
    main()
