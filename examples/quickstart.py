#!/usr/bin/env python
"""Quickstart: run both gossip discovery processes on a small network.

This is the 60-second tour of the library:

1. build a starting graph,
2. run the push (triangulation) process to convergence,
3. run the pull (two-hop walk) process on the same start,
4. compare rounds and message accounting against the paper's bounds.

Run with::

    python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import math
import sys

from repro import PushDiscovery, PullDiscovery, generators
from repro.core.metrics import MetricsRecorder


def main(n: int = 64, seed: int = 0) -> None:
    print(f"Discovery through Gossip — quickstart (n={n}, seed={seed})")
    print("-" * 60)

    # 1. A sparse connected starting graph: the n-cycle.
    graph_for_push = generators.cycle_graph(n)
    graph_for_pull = generators.cycle_graph(n)

    # 2. Push discovery (triangulation): every node introduces two random
    #    neighbours to each other, every round, until the graph is complete.
    push = PushDiscovery(graph_for_push, rng=seed)
    push_metrics = MetricsRecorder()
    push_result = push.run_to_convergence(callbacks=[push_metrics])

    # 3. Pull discovery (two-hop walk): every node connects to a random
    #    neighbour-of-a-neighbour, every round.
    pull = PullDiscovery(graph_for_pull, rng=seed)
    pull_metrics = MetricsRecorder()
    pull_result = pull.run_to_convergence(callbacks=[pull_metrics])

    # 4. Report against the paper's O(n log^2 n) upper bound.
    bound = n * math.log(n) ** 2
    for name, result, graph in [
        ("push (triangulation)", push_result, graph_for_push),
        ("pull (two-hop walk) ", pull_result, graph_for_pull),
    ]:
        print(
            f"{name}: converged={result.converged} in {result.rounds} rounds, "
            f"final edges={graph.number_of_edges()} "
            f"(complete={graph.is_complete()})"
        )
        print(
            f"{'':23s}rounds / (n ln^2 n) = {result.rounds / bound:.3f}, "
            f"total messages = {result.total_messages}, "
            f"total bits = {result.total_bits}"
        )
    print()
    print("Minimum-degree trajectory (push), sampled every 10 rounds:")
    series = push_metrics.min_degree_series()
    samples = series[::10].tolist()
    print("  " + " -> ".join(str(v) for v in samples[:15]) + (" ..." if len(samples) > 15 else ""))


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, seed)
