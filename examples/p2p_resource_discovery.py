#!/usr/bin/env python
"""P2P resource discovery: the message-level protocols with bandwidth accounting.

The paper's first motivating application: hosts in a peer-to-peer overlay
must discover the IP addresses of all other hosts, but every message may
carry only O(log n) bits.  This example runs the *message-passing*
implementation (every node sees only its own contact table) and compares
the gossip protocols against the Name Dropper baseline on:

* rounds to full discovery,
* peak per-node per-round bandwidth,
* total traffic,

optionally under message loss (``--drop``).

Run with::

    python examples/p2p_resource_discovery.py [--n 64] [--drop 0.1] [--seed 1]
"""

from __future__ import annotations

import argparse

from repro.graphs import generators
from repro.network.failures import DropUniform, NoFailures
from repro.network.message import id_bits_for
from repro.network.simulator import NetworkSimulator


def run_protocol(name: str, n: int, drop: float, seed: int) -> dict:
    """Run one protocol to full discovery and return its accounting row."""
    import numpy as np

    # The same seed yields the same starting overlay for every protocol.
    topology = generators.random_connected_graph(
        n, extra_edge_prob=0.02, rng=np.random.default_rng(seed)
    )
    failures = DropUniform(drop) if drop > 0 else NoFailures()
    sim = NetworkSimulator(topology, protocol=name, rng=seed, failures=failures)
    sim.run_to_convergence(max_rounds=200_000)
    return {
        "protocol": name,
        "rounds": sim.stats.rounds,
        "discovered_all": sim.is_converged(),
        "peak_bits_per_node_round": sim.max_bits_per_node_round(),
        "total_messages": sim.stats.messages_sent,
        "dropped": sim.stats.messages_dropped,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64, help="number of hosts")
    parser.add_argument("--drop", type=float, default=0.0, help="message drop probability")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print(f"P2P resource discovery with {args.n} hosts (drop={args.drop})")
    print(f"budget for an O(log n)-bit message: {id_bits_for(args.n)} bits per ID")
    print("-" * 78)
    header = (
        f"{'protocol':14s} {'rounds':>8s} {'all found':>10s} "
        f"{'peak bits/node/round':>22s} {'messages':>10s} {'dropped':>8s}"
    )
    print(header)
    for name in ("push", "pull", "name_dropper"):
        row = run_protocol(name, args.n, args.drop, args.seed)
        print(
            f"{row['protocol']:14s} {row['rounds']:>8d} {str(row['discovered_all']):>10s} "
            f"{row['peak_bits_per_node_round']:>22d} {row['total_messages']:>10d} "
            f"{row['dropped']:>8d}"
        )
    print()
    print(
        "Take-away: the gossip protocols (push/pull) stay within a few IDs per\n"
        "node per round — deployable on bandwidth-constrained networks — while\n"
        "Name Dropper finishes in far fewer rounds but ships whole contact\n"
        "tables in single messages."
    )


if __name__ == "__main__":
    main()
