"""Members-of-a-group discovery (experiment E9).

The paper's corollary: if ``k`` nodes of a social network induce a
connected subgraph and run the gossip process among themselves, every
member discovers every other member in ``O(k log² k)`` rounds — regardless
of the host network's size.  :func:`discover_group` runs that scenario end
to end: pick (or accept) a group, verify it induces a connected subgraph,
run the restricted process, and report both the convergence rounds and the
normalisation by ``k log² k``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.subset import SubsetDiscovery
from repro.graphs.adjacency import DynamicGraph

__all__ = ["GroupDiscoveryResult", "discover_group", "sample_connected_group"]


@dataclass(frozen=True)
class GroupDiscoveryResult:
    """Outcome of one group-discovery run."""

    group_size: int
    host_size: int
    rounds: int
    converged: bool
    rounds_over_k_log2_k: float
    members: List[int]


def sample_connected_group(
    graph: DynamicGraph, k: int, rng: Union[np.random.Generator, int, None] = None
) -> List[int]:
    """Sample ``k`` nodes inducing a connected subgraph via a random BFS ball.

    Starting from a random seed node, grow the group by repeatedly adding a
    random host-graph neighbour of the current group.  The resulting group
    always induces a connected subgraph of the host.
    """
    if k < 1 or k > graph.n:
        raise ValueError(f"group size must be in [1, {graph.n}], got {k}")
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    start = int(rng.integers(graph.n))
    group = [start]
    group_set = {start}
    frontier = list(graph.neighbors(start))
    while len(group) < k:
        candidates = [v for v in frontier if v not in group_set]
        if not candidates:
            raise ValueError(
                f"could not grow a connected group of size {k} from node {start}; "
                "the host component is too small"
            )
        pick = candidates[int(rng.integers(len(candidates)))]
        group.append(pick)
        group_set.add(pick)
        frontier.extend(graph.neighbors(pick))
    return group


def discover_group(
    host: DynamicGraph,
    members: Optional[Sequence[int]] = None,
    k: Optional[int] = None,
    process: str = "push",
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    backend: Optional[str] = None,
) -> GroupDiscoveryResult:
    """Run the group-discovery scenario on ``host``.

    Exactly one of ``members`` (an explicit group) or ``k`` (sample a
    connected group of that size) must be provided.  ``backend`` selects
    the substrate of the restricted run (``"list"`` or ``"array"``; the
    seeded result is identical — group sampling and the restricted
    process share one generator on either backend).
    """
    if (members is None) == (k is None):
        raise ValueError("provide exactly one of `members` or `k`")
    rng = np.random.default_rng(seed)
    if members is None:
        members = sample_connected_group(host, int(k), rng)
    subset = SubsetDiscovery(host, members, process=process, rng=rng, backend=backend)
    result = subset.run_to_convergence(max_rounds=max_rounds)
    group_size = subset.k
    log_k = max(float(np.log(group_size)), 1.0)
    return GroupDiscoveryResult(
        group_size=group_size,
        host_size=host.n,
        rounds=result.rounds,
        converged=result.converged,
        rounds_over_k_log2_k=result.rounds / (group_size * log_k * log_k),
        members=list(members),
    )
