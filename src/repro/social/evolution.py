"""Social-network evolution under the discovery processes (experiment E12).

The paper's Applications section argues that analysing these processes
helps predict how decentralised social networks grow: the sizes of 1st,
2nd and 3rd degree neighbourhoods (the numbers LinkedIn shows every user),
the shrinking diameter, and the rising clustering as triangulation closes
triangles.  This module runs a process on a synthetic social graph and
records those quantities at a configurable cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.baselines._packed import supports_undirected
from repro.core.base import DiscoveryProcess, RoundResult
from repro.graphs.adjacency import DynamicGraph
from repro.graphs import properties
from repro.simulation.engine import make_process

__all__ = ["EvolutionSnapshot", "EvolutionTracker", "simulate_social_evolution"]


@dataclass(frozen=True)
class EvolutionSnapshot:
    """Network statistics at one point in time."""

    round_index: int
    num_edges: int
    mean_degree: float
    min_degree: int
    diameter: Optional[int]
    average_clustering: float
    mean_second_degree: float
    mean_third_degree: float


class EvolutionTracker:
    """Run-loop callback recording social-evolution statistics every ``every`` rounds.

    Second/third-degree neighbourhood sizes are averaged over a fixed
    random sample of ``probe_nodes`` nodes so the cost per snapshot stays
    O(probe_nodes · m) rather than O(n · m).
    """

    def __init__(
        self,
        every: int = 10,
        probe_nodes: int = 16,
        rng: Union[np.random.Generator, int, None] = None,
        compute_diameter: bool = True,
    ) -> None:
        if every < 1:
            raise ValueError("snapshot period must be >= 1")
        self.every = every
        self.probe_nodes = probe_nodes
        self.compute_diameter = compute_diameter
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.snapshots: List[EvolutionSnapshot] = []
        self._probes: Optional[List[int]] = None

    def _ensure_probes(self, graph: DynamicGraph) -> List[int]:
        if self._probes is None:
            count = min(self.probe_nodes, graph.n)
            self._probes = self.rng.choice(graph.n, size=count, replace=False).tolist()
        return self._probes

    def snapshot(self, graph: DynamicGraph, round_index: int) -> EvolutionSnapshot:
        """Take one snapshot of ``graph`` (also used for the round-0 baseline)."""
        probes = self._ensure_probes(graph)
        second_sizes = []
        third_sizes = []
        for u in probes:
            dist = properties.bfs_distances(graph, u)
            second_sizes.append(int(np.sum(dist == 2)))
            third_sizes.append(int(np.sum(dist == 3)))
        diameter: Optional[int] = None
        if self.compute_diameter and properties.is_connected(graph):
            diameter = properties.diameter(graph)
        degrees = graph.degrees()
        return EvolutionSnapshot(
            round_index=round_index,
            num_edges=graph.number_of_edges(),
            mean_degree=float(degrees.mean()) if graph.n else 0.0,
            min_degree=int(degrees.min()) if graph.n else 0,
            diameter=diameter,
            average_clustering=properties.average_clustering(graph),
            mean_second_degree=float(np.mean(second_sizes)) if second_sizes else 0.0,
            mean_third_degree=float(np.mean(third_sizes)) if third_sizes else 0.0,
        )

    def __call__(self, process: DiscoveryProcess, result: RoundResult) -> None:
        if result.round_index % self.every != 0:
            return
        graph = process.graph
        # Capability check, not a backend isinstance: a stale
        # `isinstance(graph, DynamicGraph)` guard here silently recorded
        # zero snapshots whenever the run used the array backend.
        if not supports_undirected(graph):
            return
        self.snapshots.append(self.snapshot(graph, result.round_index + 1))

    def as_rows(self) -> List[Dict[str, float]]:
        """The snapshots as a list of plain dicts (one row per snapshot)."""
        rows = []
        for s in self.snapshots:
            rows.append(
                {
                    "round": s.round_index,
                    "edges": s.num_edges,
                    "mean_degree": s.mean_degree,
                    "min_degree": s.min_degree,
                    "diameter": -1 if s.diameter is None else s.diameter,
                    "clustering": s.average_clustering,
                    "second_degree": s.mean_second_degree,
                    "third_degree": s.mean_third_degree,
                }
            )
        return rows


def simulate_social_evolution(
    graph: DynamicGraph,
    process: str = "push",
    rounds: int = 200,
    every: int = 10,
    seed: Optional[int] = None,
    probe_nodes: int = 16,
    backend: Optional[str] = None,
) -> List[EvolutionSnapshot]:
    """Run ``process`` on a copy of ``graph`` for ``rounds`` rounds, returning snapshots.

    The round-0 snapshot of the untouched starting graph is always included
    first so growth can be expressed relative to the initial network.
    ``backend`` selects the graph substrate for the run (``"list"`` or
    ``"array"``); snapshots are recorded on either.
    """
    work = graph.copy()
    tracker = EvolutionTracker(every=every, probe_nodes=probe_nodes, rng=seed)
    baseline = tracker.snapshot(work, 0)
    proc = make_process(process, work, rng=seed, backend=backend)
    proc.run(rounds, callbacks=[tracker])
    return [baseline] + tracker.snapshots
