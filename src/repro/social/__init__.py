"""Social-network application layer: evolution statistics and group discovery."""

from repro.social.evolution import EvolutionSnapshot, EvolutionTracker, simulate_social_evolution
from repro.social.group_discovery import GroupDiscoveryResult, discover_group

__all__ = [
    "EvolutionSnapshot",
    "EvolutionTracker",
    "simulate_social_evolution",
    "GroupDiscoveryResult",
    "discover_group",
]
