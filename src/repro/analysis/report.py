"""Markdown report generation for experiment results.

Turns row tables (lists of flat dicts, as produced by the runner and the
analysis functions) into GitHub-flavoured markdown tables and assembles
multi-section reports.  EXPERIMENTS.md-style documents can therefore be
regenerated programmatically from fresh measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["markdown_table", "ReportSection", "ReportBuilder"]


def _format_value(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def markdown_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[List[str]] = None,
    float_fmt: str = ".3g",
) -> str:
    """Render a row table as a GitHub-flavoured markdown table.

    Parameters
    ----------
    rows:
        List of flat dicts; missing keys render as empty cells.
    columns:
        Column order (defaults to the union of keys in first-seen order).
    float_fmt:
        ``format()`` spec applied to float values.
    """
    if not rows:
        return "*(no data)*"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = "| " + " | ".join(columns) + " |"
    separator = "|" + "|".join(["---"] * len(columns)) + "|"
    body = []
    for row in rows:
        cells = [_format_value(row.get(c, ""), float_fmt) for c in columns]
        body.append("| " + " | ".join(cells) + " |")
    return "\n".join([header, separator] + body)


@dataclass
class ReportSection:
    """One titled section of a report: prose, an optional table, optional code block."""

    title: str
    body: str = ""
    rows: Optional[Sequence[Dict[str, object]]] = None
    columns: Optional[List[str]] = None
    code: Optional[str] = None
    level: int = 2

    def render(self) -> str:
        parts = [f"{'#' * self.level} {self.title}"]
        if self.body:
            parts.append(self.body.strip())
        if self.rows is not None:
            parts.append(markdown_table(self.rows, self.columns))
        if self.code:
            parts.append("```\n" + self.code.rstrip() + "\n```")
        return "\n\n".join(parts)


@dataclass
class ReportBuilder:
    """Assemble a markdown report from sections and write it to disk."""

    title: str
    preamble: str = ""
    sections: List[ReportSection] = field(default_factory=list)

    def add_section(
        self,
        title: str,
        body: str = "",
        rows: Optional[Sequence[Dict[str, object]]] = None,
        columns: Optional[List[str]] = None,
        code: Optional[str] = None,
        level: int = 2,
    ) -> ReportSection:
        """Append a section and return it (for further tweaking)."""
        section = ReportSection(
            title=title, body=body, rows=rows, columns=columns, code=code, level=level
        )
        self.sections.append(section)
        return section

    def render(self) -> str:
        """Render the full report as markdown text."""
        parts = [f"# {self.title}"]
        if self.preamble:
            parts.append(self.preamble.strip())
        parts.extend(section.render() for section in self.sections)
        return "\n\n".join(parts) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Write the rendered report to ``path`` atomically and return the path."""
        from repro.simulation.io import atomic_write_text

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(target, self.render())
        return target
