"""Convergence-time scaling measurements and fits (experiments E1, E2, E5).

:func:`measure_scaling` sweeps a process over a graph family at a list of
sizes, averages the convergence rounds over trials, and fits both a pure
power law ``T(n) = c·n^a`` and the theorem-shaped law
``T(n) = c·n^p·(ln n)^b`` with the polynomial exponent ``p`` fixed by the
theorem under test (1 for the undirected bounds, 2 for the directed ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.simulation.experiment import ExperimentSpec
from repro.simulation.runner import run_trials, summarize_trials
from repro.simulation import stats

__all__ = ["ScalingMeasurement", "measure_scaling"]


@dataclass
class ScalingMeasurement:
    """The outcome of one scaling sweep.

    Attributes
    ----------
    process, family:
        What was measured.
    sizes:
        The swept graph sizes.
    mean_rounds, std_rounds:
        Convergence-round statistics per size (over trials).
    power_fit:
        Fitted pure power law ``T = c·n^a``.
    power_log_fit:
        Fitted ``T = c·n^p·(ln n)^b`` with the requested fixed ``p``.
    per_size:
        Full summary rows (one per size) as produced by the runner.
    """

    process: str
    family: str
    sizes: List[int]
    mean_rounds: List[float]
    std_rounds: List[float]
    power_fit: stats.PowerLawFit
    power_log_fit: stats.PowerLogLawFit
    per_size: List[Dict[str, float]] = field(default_factory=list)

    def normalized_by(self, bound: Callable[[float], float]) -> np.ndarray:
        """Measured mean rounds divided by ``bound(n)`` at every size."""
        return stats.ratio_series(self.sizes, self.mean_rounds, bound)

    def as_rows(self) -> List[Dict[str, float]]:
        """Row dicts suitable for printing as a results table."""
        rows = []
        for n, mean, std in zip(self.sizes, self.mean_rounds, self.std_rounds):
            rows.append(
                {
                    "process": self.process,
                    "family": self.family,
                    "n": n,
                    "rounds_mean": mean,
                    "rounds_std": std,
                    "rounds_over_n_log_n": mean / (n * max(np.log(n), 1e-9)),
                    "rounds_over_n_log2_n": mean / (n * max(np.log(n), 1e-9) ** 2),
                }
            )
        return rows


def measure_scaling(
    process: str,
    family: str,
    sizes: Sequence[int],
    trials: int = 5,
    seed: Optional[int] = None,
    directed: bool = False,
    poly_exponent: float = 1.0,
    max_rounds: Optional[int] = None,
    process_kwargs: Optional[Dict] = None,
    backend: str = "list",
    shards: int = 1,
) -> ScalingMeasurement:
    """Sweep ``process`` over ``family`` at the given sizes and fit growth laws.

    Parameters
    ----------
    process:
        Registry name (``"push"``, ``"pull"``, ``"directed_pull"``, ...).
    family:
        Registered (directed) graph family name.
    sizes:
        Graph sizes to sweep; at least two distinct sizes are required for
        the fits.
    trials:
        Independent trials per size.
    seed:
        Root seed for the whole sweep.
    directed:
        Whether ``family`` is in the directed registry.
    poly_exponent:
        Fixed polynomial exponent for the theorem-shaped fit.
    backend:
        Graph backend for every trial (``"list"`` or ``"array"``).  The
        measured rounds are backend-independent for a fixed seed; only the
        wall-clock cost changes.
    shards:
        Row-shard count for the round engine (requires ``backend="array"``
        when > 1; see :mod:`repro.simulation.sharding`).
    """
    if len(sizes) < 2:
        raise ValueError("scaling measurement needs at least two sizes")
    mean_rounds: List[float] = []
    std_rounds: List[float] = []
    per_size: List[Dict[str, float]] = []
    for n in sizes:
        spec = ExperimentSpec(
            process=process,
            family=family,
            n=int(n),
            trials=trials,
            directed=directed,
            process_kwargs=dict(process_kwargs or {}),
            max_rounds=max_rounds,
            backend=backend,
            shards=shards,
        )
        trials_out = run_trials(spec, root_seed=seed)
        summary = summarize_trials(trials_out)
        mean_rounds.append(summary["rounds_mean"])
        std_rounds.append(summary["rounds_std"])
        per_size.append(summary)
    power_fit = stats.fit_power_law(list(sizes), mean_rounds)
    power_log_fit = stats.fit_power_log_law(list(sizes), mean_rounds, poly_exponent=poly_exponent)
    return ScalingMeasurement(
        process=process,
        family=family,
        sizes=[int(n) for n in sizes],
        mean_rounds=mean_rounds,
        std_rounds=std_rounds,
        power_fit=power_fit,
        power_log_fit=power_log_fit,
        per_size=per_size,
    )
