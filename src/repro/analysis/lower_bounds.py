"""Empirical lower-bound shape checks (experiments E3, E6, E7).

Each check runs a process on the relevant lower-bound instance family over
a range of sizes, and verifies that the measured convergence rounds divided
by the theoretical lower-bound curve stay *bounded below* (do not decay
towards zero as ``n`` grows) — the empirical signature of the Ω(·) claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.simulation.engine import measure_convergence_rounds
from repro.simulation.rng import spawn_rngs
from repro.simulation import stats

__all__ = ["LowerBoundCheck", "lower_bound_ratio_check"]


@dataclass
class LowerBoundCheck:
    """Result of one lower-bound shape check.

    Attributes
    ----------
    sizes:
        The swept instance sizes.
    mean_rounds:
        Mean convergence rounds per size.
    ratios:
        ``mean_rounds / bound(size)`` per size.
    non_vanishing:
        True when the final ratio is at least ``min_fraction_of_first``
        times the first ratio — i.e. the ratio does not collapse as the
        size grows, consistent with the Ω(·) claim.
    power_fit_exponent:
        Fitted pure power-law exponent of the measured times (useful to
        compare against the bound's polynomial degree).
    """

    sizes: List[int]
    mean_rounds: List[float]
    ratios: List[float]
    non_vanishing: bool
    power_fit_exponent: float


def lower_bound_ratio_check(
    process: str,
    instance_factory: Callable[[int], object],
    sizes: Sequence[int],
    bound: Callable[[float], float],
    trials: int = 3,
    seed: Optional[int] = None,
    min_fraction_of_first: float = 0.3,
    max_rounds: Optional[int] = None,
    process_kwargs: Optional[Dict] = None,
) -> LowerBoundCheck:
    """Run ``process`` on ``instance_factory(n)`` across sizes and check the Ω-shape.

    Parameters
    ----------
    process:
        Registry name of the process.
    instance_factory:
        Maps a size to a starting graph (undirected or directed).
    sizes:
        Instance sizes to sweep (at least two).
    bound:
        The theoretical lower-bound curve, e.g.
        :func:`repro.simulation.bounds.n_log_n`.
    min_fraction_of_first:
        Tolerance for the non-vanishing check: the last ratio must be at
        least this fraction of the first ratio.
    """
    if len(sizes) < 2:
        raise ValueError("lower-bound check needs at least two sizes")
    mean_rounds: List[float] = []
    for idx, n in enumerate(sizes):
        rngs = spawn_rngs(None if seed is None else seed + idx, trials)
        rounds = []
        for rng in rngs:
            graph = instance_factory(int(n))
            result = measure_convergence_rounds(
                process,
                graph,
                rng=rng,
                max_rounds=max_rounds,
                copy_graph=False,
                **(process_kwargs or {}),
            )
            rounds.append(result.rounds)
        mean_rounds.append(float(np.mean(rounds)))
    ratios = stats.ratio_series(list(sizes), mean_rounds, bound).tolist()
    non_vanishing = ratios[-1] >= min_fraction_of_first * ratios[0]
    exponent = stats.fit_power_law(list(sizes), mean_rounds).exponent
    return LowerBoundCheck(
        sizes=[int(n) for n in sizes],
        mean_rounds=mean_rounds,
        ratios=ratios,
        non_vanishing=non_vanishing,
        power_fit_exponent=exponent,
    )
