"""Analysis layer: scaling fits, degree-growth phases, non-monotonicity, lower bounds.

These modules turn raw convergence measurements into the quantities the
paper's theorems talk about: fitted growth exponents (E1/E2/E5), the exact
expected convergence times of the Figure 1(c) example (E4), minimum-degree
growth phases (E8), and bounded-ratio checks against the lower-bound
curves (E3/E6/E7).
"""

from repro.analysis.scaling import ScalingMeasurement, measure_scaling
from repro.analysis.nonmonotonicity import (
    exact_expected_convergence_time,
    monte_carlo_expected_convergence_time,
    nonmonotonicity_gap,
)
from repro.analysis.degree_growth import DegreePhase, measure_degree_growth_phases
from repro.analysis.lower_bounds import lower_bound_ratio_check
from repro.analysis import theory, report

__all__ = [
    "theory",
    "report",
    "ScalingMeasurement",
    "measure_scaling",
    "exact_expected_convergence_time",
    "monte_carlo_expected_convergence_time",
    "nonmonotonicity_gap",
    "DegreePhase",
    "measure_degree_growth_phases",
    "lower_bound_ratio_check",
]
