"""Minimum-degree growth phases (experiment E8).

The engine of both undirected upper-bound proofs (Theorems 8 and 12) is:
*in O(n log n) rounds the minimum degree grows by a constant factor (the
paper uses 9/8 or 13/12) or the graph becomes complete*.  Applying that
O(log n) times gives the O(n log² n) bound.  This module measures the
phase structure empirically: it runs a process, records the round at which
the minimum degree first reaches each threshold ``δ_0 · γ^i``, and reports
the phase lengths normalised by ``n ln n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import DiscoveryProcess, RoundResult
from repro.graphs.adjacency import DynamicGraph
from repro.simulation.engine import make_process

__all__ = ["DegreePhase", "measure_degree_growth_phases"]


@dataclass(frozen=True)
class DegreePhase:
    """One growth phase of the minimum degree.

    Attributes
    ----------
    phase_index:
        Zero-based index of the phase.
    threshold:
        The minimum-degree target of this phase (``δ_0 · γ^(i+1)``, capped
        at ``n - 1``).
    start_round, end_round:
        Rounds at which the phase began and at which the threshold was
        first met.
    length:
        ``end_round - start_round``.
    normalized_length:
        ``length / (n · ln n)`` — the quantity the proofs bound by a
        constant.
    """

    phase_index: int
    threshold: int
    start_round: int
    end_round: int
    length: int
    normalized_length: float


class _MinDegreeWatcher:
    """Run-loop callback that records when each degree threshold is first met."""

    def __init__(self, thresholds: Sequence[int]) -> None:
        self.thresholds = list(thresholds)
        self.hit_round: Dict[int, int] = {}

    def __call__(self, process: DiscoveryProcess, result: RoundResult) -> None:
        cached = getattr(process, "cached_min_degree", None)
        current = cached() if cached is not None else process.graph.min_degree()
        for threshold in self.thresholds:
            if threshold not in self.hit_round and current >= threshold:
                self.hit_round[threshold] = result.round_index + 1


def measure_degree_growth_phases(
    graph: DynamicGraph,
    process: str = "push",
    growth_factor: float = 9.0 / 8.0,
    rng: Union[np.random.Generator, int, None] = None,
    max_rounds: Optional[int] = None,
) -> List[DegreePhase]:
    """Measure how long each constant-factor minimum-degree growth phase takes.

    Parameters
    ----------
    graph:
        Connected starting graph (a private copy is mutated).
    process:
        ``"push"`` or ``"pull"``.
    growth_factor:
        The per-phase multiplicative target γ (the paper's analysis uses
        γ = 9/8; any γ > 1 produces a valid phase decomposition).
    """
    if growth_factor <= 1.0:
        raise ValueError("growth_factor must exceed 1")
    work = graph.copy()
    n = work.n
    delta0 = max(1, work.min_degree())
    # Build the ladder of thresholds δ0·γ, δ0·γ², ..., capped at n - 1.
    thresholds: List[int] = []
    target = float(delta0)
    while True:
        target *= growth_factor
        threshold = min(int(np.ceil(target)), n - 1)
        if thresholds and threshold <= thresholds[-1]:
            threshold = thresholds[-1] + 1
        if threshold >= n - 1:
            thresholds.append(n - 1)
            break
        thresholds.append(threshold)
    watcher = _MinDegreeWatcher(thresholds)
    proc = make_process(process, work, rng=rng)
    proc.run_to_convergence(max_rounds=max_rounds, callbacks=[watcher])

    phases: List[DegreePhase] = []
    log_n = max(float(np.log(n)), 1.0)
    prev_round = 0
    for i, threshold in enumerate(thresholds):
        if threshold not in watcher.hit_round:
            break
        end_round = watcher.hit_round[threshold]
        length = end_round - prev_round
        phases.append(
            DegreePhase(
                phase_index=i,
                threshold=threshold,
                start_round=prev_round,
                end_round=end_round,
                length=length,
                normalized_length=length / (n * log_n),
            )
        )
        prev_round = end_round
    return phases
