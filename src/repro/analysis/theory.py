"""Theory helpers: the paper's probability lemmas made executable.

These functions compute, for a *given* graph state, the exact per-round
probabilities that the paper's proofs reason about, and provide an
executable form of Lemma 2 (the coupon-collector bound on sums of
geometric random variables with growing success probabilities).  They are
used by tests to validate the simulation against hand-computable
quantities and by the analysis layer for diagnostics.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph

__all__ = [
    "push_edge_probability",
    "pull_edge_probability",
    "directed_edge_probability",
    "expected_new_edges_push",
    "expected_new_edges_pull",
    "lemma2_round_bound",
    "lemma2_empirical_quantile",
]


# --------------------------------------------------------------------------- #
# single-round, single-edge probabilities
# --------------------------------------------------------------------------- #
def push_edge_probability(graph: DynamicGraph, v: int, w: int) -> float:
    """Probability that the edge ``(v, w)`` is added in one push round.

    A node ``u`` adds ``(v, w)`` when it draws the ordered pair ``(v, w)``
    or ``(w, v)`` from its neighbourhood, i.e. with probability
    ``2 / d(u)²`` when both are neighbours of ``u``.  Different nodes act
    independently, so the round probability is
    ``1 − Π_u (1 − 2/d(u)²)`` over the common neighbours ``u``.
    Returns 0.0 when the edge already exists or ``v == w``.
    """
    if v == w or graph.has_edge(v, w):
        return 0.0
    miss_prob = 1.0
    neighbors_v = set(graph.neighbors(v))
    for u in graph.neighbors(w):
        if u in neighbors_v:
            d = graph.degree(u)
            miss_prob *= 1.0 - 2.0 / (d * d)
    return 1.0 - miss_prob


def pull_edge_probability(graph: DynamicGraph, u: int, w: int) -> float:
    """Probability that node ``u`` adds the edge ``(u, w)`` in one pull round.

    ``u`` reaches ``w`` by first choosing a common neighbour ``v`` (with
    probability ``1/d(u)``) and then ``w`` out of ``v``'s neighbours (with
    probability ``1/d(v)``).  Note the *other* endpoint ``w`` may also add
    the same undirected edge through its own walk; this function returns
    the one-sided probability for ``u``'s walk only.
    """
    if u == w or graph.has_edge(u, w):
        return 0.0
    du = graph.degree(u)
    if du == 0:
        return 0.0
    total = 0.0
    w_neighbors = set(graph.neighbors(w))
    for v in graph.neighbors(u):
        if v in w_neighbors:
            total += (1.0 / du) * (1.0 / graph.degree(v))
    return total


def directed_edge_probability(graph: DynamicDiGraph, u: int, w: int) -> float:
    """Probability that node ``u`` adds the directed edge ``(u, w)`` in one round
    of the directed two-hop walk."""
    if u == w or graph.has_edge(u, w):
        return 0.0
    du = graph.out_degree(u)
    if du == 0:
        return 0.0
    total = 0.0
    for v in graph.out_neighbors(u):
        dv = graph.out_degree(v)
        if dv == 0:
            continue
        if graph.has_edge(v, w):
            total += (1.0 / du) * (1.0 / dv)
    return total


def expected_new_edges_push(graph: DynamicGraph) -> float:
    """Expected number of *new* edges created by one push round from this state."""
    total = 0.0
    for v in range(graph.n):
        for w in range(v + 1, graph.n):
            total += push_edge_probability(graph, v, w)
    return total


def expected_new_edges_pull(graph: DynamicGraph) -> float:
    """Expected number of *new* edges created by one pull round from this state.

    For a missing pair ``{u, w}`` either endpoint's walk may create the
    edge; the two walks are independent, so the pair is created with
    probability ``1 − (1 − p_u)(1 − p_w)``.
    """
    total = 0.0
    for u in range(graph.n):
        for w in range(u + 1, graph.n):
            if graph.has_edge(u, w):
                continue
            pu = pull_edge_probability(graph, u, w)
            pw = pull_edge_probability(graph, w, u)
            total += 1.0 - (1.0 - pu) * (1.0 - pw)
    return total


# --------------------------------------------------------------------------- #
# Lemma 2
# --------------------------------------------------------------------------- #
def lemma2_round_bound(n: int, c: float = 1.0) -> float:
    """The Lemma-2 bound ``(c + 1)·n·ln n`` on the total number of trials.

    Lemma 2: for ``k ≤ m ≤ n`` Bernoulli experiments where the i-th has
    success probability at least ``i/m``, the total number of trials until
    every experiment succeeds exceeds ``(c+1)·n·ln n`` with probability
    less than ``1/n^c``.
    """
    if n < 2:
        raise ValueError("the bound is stated for n >= 2")
    if c <= 0:
        raise ValueError("c must be positive")
    return (c + 1.0) * n * math.log(n)


def lemma2_empirical_quantile(
    m: int,
    k: Optional[int] = None,
    trials: int = 200,
    c: float = 1.0,
    rng: Union[np.random.Generator, int, None] = None,
) -> Tuple[float, float]:
    """Simulate the Lemma-2 experiment sequence and check the tail bound.

    Runs ``trials`` independent simulations of the worst-case instance
    (experiment ``i`` succeeds with probability exactly ``i/m``), sums the
    geometric waiting times, and returns ``(fraction_exceeding_bound,
    bound)`` where ``bound = (c+1)·m·ln m``.  Lemma 2 promises the fraction
    is below ``1/m^c`` (so effectively 0 for the sizes used in tests).

    ``rng`` must be an explicit ``np.random.Generator`` or integer seed —
    the Monte-Carlo estimate is part of the replayable record, so there is
    no unseeded fallback.
    """
    if k is None:
        k = m
    if not (1 <= k <= m):
        raise ValueError("need 1 <= k <= m")
    if rng is None:
        raise ValueError(
            "lemma2_empirical_quantile requires an explicit rng (a "
            "np.random.Generator or an integer seed); unseeded runs are not "
            "replayable"
        )
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    bound = lemma2_round_bound(m, c)
    probabilities = np.arange(1, k + 1) / float(m)
    exceed = 0
    for _ in range(trials):
        waits = rng.geometric(probabilities)
        if float(waits.sum()) > bound:
            exceed += 1
    return exceed / trials, bound
