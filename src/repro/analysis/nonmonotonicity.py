"""Exact and Monte-Carlo expected convergence times for tiny graphs (experiment E4).

Figure 1(c) of the paper exhibits non-monotonicity: the expected number of
rounds for the triangulation process to complete the 4-edge example graph
*exceeds* the expectation for its 3-edge path subgraph, even though the
former has strictly more edges.  Because the graphs are tiny we can verify
this exactly: the process is an absorbing Markov chain on the (small)
lattice of supergraphs of the start graph, and the expected absorption
time is the solution of a linear system.

The exact engine works for any graph small enough that the product of
squared degrees stays enumerable (n ≲ 6); the Monte-Carlo estimator works
for anything and is used to cross-check the exact numbers.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.graphs.adjacency import DynamicGraph

__all__ = [
    "exact_expected_convergence_time",
    "monte_carlo_expected_convergence_time",
    "nonmonotonicity_gap",
]

EdgeSet = FrozenSet[Tuple[int, int]]


def _edge(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


def _state_of(graph: DynamicGraph) -> EdgeSet:
    return frozenset(graph.edges())


def _neighbors_of_state(n: int, state: EdgeSet) -> List[List[int]]:
    nbrs: List[List[int]] = [[] for _ in range(n)]
    for u, v in sorted(state):
        nbrs[u].append(v)
        nbrs[v].append(u)
    return nbrs


def _complete_state(n: int) -> EdgeSet:
    return frozenset(_edge(u, v) for u in range(n) for v in range(u + 1, n))


def _push_round_distribution(n: int, state: EdgeSet) -> Dict[EdgeSet, float]:
    """Distribution over next states after one synchronous triangulation round."""
    nbrs = _neighbors_of_state(n, state)
    # Each node independently picks an ordered pair of neighbours; enumerate
    # the product of per-node choices with their probabilities.
    per_node_choices: List[List[Tuple[Optional[Tuple[int, int]], float]]] = []
    for u in range(n):
        d = len(nbrs[u])
        if d == 0:
            per_node_choices.append([(None, 1.0)])
            continue
        choices: Dict[Optional[Tuple[int, int]], float] = {}
        p = 1.0 / (d * d)
        for a in nbrs[u]:
            for b in nbrs[u]:
                key = None if a == b else _edge(a, b)
                choices[key] = choices.get(key, 0.0) + p
        per_node_choices.append(list(choices.items()))
    dist: Dict[EdgeSet, float] = {}
    for combo in itertools.product(*per_node_choices):
        prob = 1.0
        added = set()
        for edge, p in combo:
            prob *= p
            if edge is not None:
                added.add(edge)
        new_state = frozenset(state | added)
        dist[new_state] = dist.get(new_state, 0.0) + prob
    return dist


def _pull_round_distribution(n: int, state: EdgeSet) -> Dict[EdgeSet, float]:
    """Distribution over next states after one synchronous two-hop-walk round."""
    nbrs = _neighbors_of_state(n, state)
    per_node_choices: List[List[Tuple[Optional[Tuple[int, int]], float]]] = []
    for u in range(n):
        d = len(nbrs[u])
        if d == 0:
            per_node_choices.append([(None, 1.0)])
            continue
        choices: Dict[Optional[Tuple[int, int]], float] = {}
        for v in nbrs[u]:
            dv = len(nbrs[v])
            for w in nbrs[v]:
                p = (1.0 / d) * (1.0 / dv)
                key = None if w == u else _edge(u, w)
                choices[key] = choices.get(key, 0.0) + p
        per_node_choices.append(list(choices.items()))
    dist: Dict[EdgeSet, float] = {}
    for combo in itertools.product(*per_node_choices):
        prob = 1.0
        added = set()
        for edge, p in combo:
            prob *= p
            if edge is not None:
                added.add(edge)
        new_state = frozenset(state | added)
        dist[new_state] = dist.get(new_state, 0.0) + prob
    return dist


def exact_expected_convergence_time(graph: DynamicGraph, process: str = "push") -> float:
    """Exact expected rounds for the process to reach the complete graph.

    Builds the absorbing Markov chain over all supergraph states reachable
    from ``graph`` and solves ``(I - Q)·t = 1`` for the expected absorption
    times.  Only feasible for very small graphs (the intended use is the
    Figure 1(c) example and similar hand-sized instances).

    Parameters
    ----------
    graph:
        A connected starting graph on at most ~6 nodes.
    process:
        ``"push"`` (triangulation) or ``"pull"`` (two-hop walk).
    """
    if process not in ("push", "pull"):
        raise ValueError(f"process must be 'push' or 'pull', got {process!r}")
    n = graph.n
    if n > 6:
        raise ValueError(
            "exact computation enumerates every joint choice per round and is "
            f"only supported for n <= 6 (got n={n}); use the Monte-Carlo estimator"
        )
    round_dist = _push_round_distribution if process == "push" else _pull_round_distribution
    start = _state_of(graph)
    absorbing = _complete_state(n)

    # Discover the reachable state space (supergraphs of the start state).
    transitions: Dict[EdgeSet, Dict[EdgeSet, float]] = {}
    frontier = [start]
    seen = {start}
    while frontier:
        state = frontier.pop()
        if state == absorbing:
            continue
        dist = round_dist(n, state)
        transitions[state] = dist
        for nxt in dist:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)

    if start == absorbing:
        return 0.0

    transient = sorted(s for s in seen if s != absorbing)
    index = {s: i for i, s in enumerate(transient)}
    size = len(transient)
    q_matrix = np.zeros((size, size))
    for state, dist in transitions.items():
        i = index[state]
        for nxt, p in dist.items():
            if nxt != absorbing:
                q_matrix[i, index[nxt]] += p
    expected = np.linalg.solve(np.eye(size) - q_matrix, np.ones(size))
    return float(expected[index[start]])


def monte_carlo_expected_convergence_time(
    graph: DynamicGraph,
    process: str = "push",
    trials: int = 2000,
    seed: Optional[int] = None,
    max_rounds: int = 100000,
) -> Tuple[float, float]:
    """Monte-Carlo estimate ``(mean, std_error)`` of the expected convergence rounds."""
    if process not in ("push", "pull"):
        raise ValueError(f"process must be 'push' or 'pull', got {process!r}")
    root = np.random.SeedSequence(seed)
    streams = [np.random.default_rng(c) for c in root.spawn(trials)]
    counts = np.empty(trials, dtype=float)
    for i, rng in enumerate(streams):
        work = graph.copy()
        proc = PushDiscovery(work, rng=rng) if process == "push" else PullDiscovery(work, rng=rng)
        result = proc.run(max_rounds)
        counts[i] = result.rounds
    mean = float(counts.mean())
    sem = float(counts.std(ddof=1) / np.sqrt(trials)) if trials > 1 else 0.0
    return mean, sem


def nonmonotonicity_gap(
    process: str = "push",
) -> Dict[str, float]:
    """Exact expected convergence times demonstrating Figure 1(c)'s non-monotonicity.

    Two comparisons are reported:

    * the paper's 4-edge graph (triangle + pendant edge) versus its 3-edge
      triangle subgraph (``fig1c_*`` keys) — the triangle is already
      complete, so the 4-edge supergraph is strictly slower;
    * a same-node-set pair (``pair_*`` keys): the 4-cycle versus the
      diamond (4-cycle + chord) — the *denser* diamond is strictly slower.

    ``gap`` fields are (denser minus sparser); positive values mean the
    non-monotonicity is reproduced.
    """
    from repro.graphs.generators import (
        fig1c_nonmonotone,
        fig1c_triangle_subgraph,
        nonmonotone_supergraph_pair,
    )

    fig_dense = exact_expected_convergence_time(fig1c_nonmonotone(), process=process)
    fig_sparse = exact_expected_convergence_time(fig1c_triangle_subgraph(), process=process)
    sparser, denser = nonmonotone_supergraph_pair()
    pair_sparse = exact_expected_convergence_time(sparser, process=process)
    pair_dense = exact_expected_convergence_time(denser, process=process)
    return {
        "fig1c_four_edge": fig_dense,
        "fig1c_triangle": fig_sparse,
        "fig1c_gap": fig_dense - fig_sparse,
        "pair_cycle4": pair_sparse,
        "pair_diamond": pair_dense,
        "pair_gap": pair_dense - pair_sparse,
    }
