"""The directed two-hop walk process — paper §5.

In each round, each node ``u`` takes a two-hop *directed* random walk
``u → v → w`` (``v`` uniform over ``u``'s out-neighbours, ``w`` uniform
over ``v``'s out-neighbours, both in the round-start graph) and adds the
directed edge ``(u, w)``.

The process terminates when the edge set equals the transitive closure of
the initial graph ``G_0``: every node ``u`` has a direct edge to every node
it could originally reach.  Theorem 14 gives an ``O(n² log n)`` upper bound
and an ``Ω(n² log n)`` weakly-connected lower bound; Theorem 15 gives an
``Ω(n²)`` lower bound on a strongly connected construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.base import BatchProposals, DiscoveryProcess, UpdateSemantics
from repro.graphs.adjacency import DynamicDiGraph
from repro.graphs.closure import transitive_closure_edges

__all__ = ["DirectedTwoHopWalk"]


class DirectedTwoHopWalk(DiscoveryProcess):
    """The two-hop walk process on a directed graph with closure termination.

    The target transitive closure is computed once from the starting graph;
    afterwards a counter of still-missing closure edges is maintained in
    O(1) per added edge, so convergence checks never rescan the graph.

    Parameters
    ----------
    graph:
        Directed starting graph (mutated in place).  Every node should have
        out-degree at least 1 for the walk to be defined everywhere;
        out-degree-0 nodes simply never act (their reachable set is empty,
        so they owe no closure edges either).
    rng:
        Seed or :class:`numpy.random.Generator`.
    semantics:
        Synchronous (default) or sequential updates.
    backend:
        Optional graph backend selector (``"list"`` or ``"array"``); see
        :class:`DiscoveryProcess`.
    """

    #: request to v, reply with w's ID, introduction/edge creation toward w.
    MESSAGES_PER_NODE = 3

    def __init__(
        self,
        graph: DynamicDiGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        backend: Optional[str] = None,
    ) -> None:
        if not getattr(graph, "directed", False):
            raise TypeError(
                "DirectedTwoHopWalk requires a directed graph (DynamicDiGraph or ArrayDiGraph)"
            )
        super().__init__(graph, rng, semantics, backend=backend)
        graph = self.graph  # the backend conversion may have replaced it
        self._target_closure: Set[Tuple[int, int]] = transitive_closure_edges(graph)
        self._missing: Set[Tuple[int, int]] = {
            e for e in self._target_closure if not graph.has_edge(*e)
        }

    # ------------------------------------------------------------------ #
    # process definition
    # ------------------------------------------------------------------ #
    def propose(self, node: int) -> Optional[Tuple[int, int]]:
        """Sample the endpoint of ``node``'s directed two-hop walk this round."""
        out = self.graph.out_neighbors(node)
        if len(out) == 0:
            return None
        v = self.graph.random_out_neighbor(node, self.rng)
        v_out = self.graph.out_neighbors(v)
        if len(v_out) == 0:
            return None
        w = self.graph.random_out_neighbor(v, self.rng)
        if w == node:
            return None
        return node, w

    def propose_batch(self, nodes: Iterable[int]):
        """Vectorized directed round: both hops of every walk in two bulk draws."""
        if (
            not self._propose_is(DirectedTwoHopWalk)
            or not self._default_accounting()
            or not hasattr(self.graph, "random_out_neighbors")
        ):
            return super().propose_batch(nodes)
        return self._propose_batch_kernel(nodes)

    def _propose_batch_kernel(self, nodes: Iterable[int]) -> BatchProposals:
        """The raw kernel: ``-1`` sentinels chain dead ends through both hops."""
        graph = self.graph
        nodes = np.asarray(nodes, dtype=np.int64)
        vs = graph.random_out_neighbors(nodes, self.rng)
        ws = graph.random_out_neighbors(vs, self.rng)
        valid = (ws >= 0) & (ws != nodes)
        pos = np.flatnonzero(valid)
        return BatchProposals(nodes.shape[0], nodes[pos], ws[pos], pos)

    def apply_edge(self, edge: Tuple[int, int]) -> bool:
        """Insert the edge and keep the missing-closure counter up to date."""
        added = self.graph.add_edge(*edge)
        if added:
            self._missing.discard(edge)
        return added

    def apply_proposals(
        self,
        proposed: Optional[List[Tuple[int, int]]],
        batch: Optional[BatchProposals] = None,
    ) -> List[Tuple[int, int]]:
        """Batched insert plus missing-closure bookkeeping over the new edges only."""
        if "apply_edge" in self.__dict__ or type(self).apply_edge is not DirectedTwoHopWalk.apply_edge:
            if proposed is None:
                proposed = batch.edges() if batch is not None else []
            added = [edge for edge in proposed if self.apply_edge(edge)]
        else:
            if batch is not None and hasattr(self.graph, "add_edges_batch_arrays"):
                added = self.graph.add_edges_batch_arrays(batch.us, batch.vs)
            elif hasattr(self.graph, "add_edges_batch"):
                added = self.graph.add_edges_batch(proposed if proposed is not None else [])
            else:
                added = [edge for edge in (proposed or []) if self.graph.add_edge(*edge)]
            for edge in added:
                self._missing.discard(edge)
        self._note_added_edges(added)
        return added

    def is_converged(self) -> bool:
        """True when every transitive-closure edge of ``G_0`` is present."""
        return not self._missing

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def target_closure(self) -> Set[Tuple[int, int]]:
        """The set of ordered pairs the process must eventually connect."""
        return set(self._target_closure)

    def missing_closure_edges(self) -> Set[Tuple[int, int]]:
        """Closure edges not yet present in the current graph."""
        return set(self._missing)

    def default_round_cap(self) -> int:
        """Safety cap derived from the paper's directed upper bound O(n² log n)."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(40 * n * n * log_n) + 100
