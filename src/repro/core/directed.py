"""The directed two-hop walk process — paper §5.

In each round, each node ``u`` takes a two-hop *directed* random walk
``u → v → w`` (``v`` uniform over ``u``'s out-neighbours, ``w`` uniform
over ``v``'s out-neighbours, both in the round-start graph) and adds the
directed edge ``(u, w)``.

The process terminates when the edge set equals the transitive closure of
the initial graph ``G_0``: every node ``u`` has a direct edge to every node
it could originally reach.  Theorem 14 gives an ``O(n² log n)`` upper bound
and an ``Ω(n² log n)`` weakly-connected lower bound; Theorem 15 gives an
``Ω(n²)`` lower bound on a strongly connected construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.base import BatchProposals, DiscoveryProcess, UpdateSemantics
from repro.graphs import bitset
from repro.graphs.adjacency import DynamicDiGraph
from repro.graphs.closure import IncrementalClosure, adjacency_bits

__all__ = ["DirectedTwoHopWalk"]


class DirectedTwoHopWalk(DiscoveryProcess):
    """The two-hop walk process on a directed graph with closure termination.

    The target transitive closure is computed once from the starting graph
    and kept as **packed bitset rows** (n²/8 bytes) rather than a Python
    set of ordered pairs, so the termination target stays affordable at
    large ``n``.  The still-missing-closure-edges deficit is a counter
    maintained with one batched membership test per round, and the live
    closure of the evolving graph is tracked by an
    :class:`~repro.graphs.closure.IncrementalClosure` (row-OR propagation
    per edge batch instead of Warshall recomputes) — the walk only ever
    adds edges inside the initial closure, so each round's maintenance is
    O(#added edges).

    Parameters
    ----------
    graph:
        Directed starting graph (mutated in place).  Every node should have
        out-degree at least 1 for the walk to be defined everywhere;
        out-degree-0 nodes simply never act (their reachable set is empty,
        so they owe no closure edges either).
    rng:
        Seed or :class:`numpy.random.Generator`.
    semantics:
        Synchronous (default) or sequential updates.
    backend:
        Optional graph backend selector (``"list"`` or ``"array"``); see
        :class:`DiscoveryProcess`.
    """

    #: request to v, reply with w's ID, introduction/edge creation toward w.
    MESSAGES_PER_NODE = 3

    def __init__(
        self,
        graph: DynamicDiGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        backend: Optional[str] = None,
    ) -> None:
        if not getattr(graph, "directed", False):
            raise TypeError(
                "DirectedTwoHopWalk requires a directed graph (DynamicDiGraph or ArrayDiGraph)"
            )
        super().__init__(graph, rng, semantics, backend=backend)
        graph = self.graph  # the backend conversion may have replaced it
        # One full Warshall pass at construction; every later update is
        # incremental.  The target excludes the diagonal (cycles through u
        # are never edges), matching transitive_closure_edges().
        self._closure = IncrementalClosure.from_graph(graph)
        self._target_bits = self._closure.closure_bits().copy()
        diag = np.arange(graph.n, dtype=np.int64)
        bitset.clear_bits(self._target_bits, diag, diag)
        self._deficit = int(
            bitset.count_total(self._target_bits & ~adjacency_bits(graph))
        )

    # ------------------------------------------------------------------ #
    # process definition
    # ------------------------------------------------------------------ #
    def propose(self, node: int) -> Optional[Tuple[int, int]]:
        """Sample the endpoint of ``node``'s directed two-hop walk this round."""
        out = self.graph.out_neighbors(node)
        if len(out) == 0:
            return None
        v = self.graph.random_out_neighbor(node, self.rng)
        v_out = self.graph.out_neighbors(v)
        if len(v_out) == 0:
            return None
        w = self.graph.random_out_neighbor(v, self.rng)
        if w == node:
            return None
        return node, w

    def propose_batch(self, nodes: Iterable[int]):
        """Vectorized directed round: both hops of every walk in two bulk draws."""
        if (
            not self._propose_is(DirectedTwoHopWalk)
            or not self._default_accounting()
            or not hasattr(self.graph, "random_out_neighbors")
        ):
            return super().propose_batch(nodes)
        return self._propose_batch_kernel(nodes)

    def _propose_batch_kernel(self, nodes: Iterable[int]) -> BatchProposals:
        """The raw kernel: ``-1`` sentinels chain dead ends through both hops."""
        graph = self.graph
        nodes = np.asarray(nodes, dtype=np.int64)
        vs = graph.random_out_neighbors(nodes, self.rng)
        ws = graph.random_out_neighbors(vs, self.rng)
        valid = (ws >= 0) & (ws != nodes)
        pos = np.flatnonzero(valid)
        return BatchProposals(nodes.shape[0], nodes[pos], ws[pos], pos)

    def _absorb_added(self, added: List[Tuple[int, int]]) -> None:
        """Fold genuinely-new edges into the deficit counter and live closure.

        One batched membership test against the packed target rows replaces
        the old per-edge set discards; the live closure's update is O(1)
        per edge already implied (the walk never proposes anything else).
        Every insertion path — per-edge :meth:`apply_edge`, the batched
        synchronous round, the sharded merge — funnels its new edges here.
        """
        if not added:
            return
        arr = np.asarray(added, dtype=np.int64).reshape(-1, 2)
        in_target = bitset.get_bits(self._target_bits, arr[:, 0], arr[:, 1])
        self._deficit -= int(in_target.sum())
        self._closure.add_edges(arr[:, 0], arr[:, 1])

    def apply_edge(self, edge: Tuple[int, int]) -> bool:
        """Insert the edge and keep the closure-deficit counter up to date."""
        added = self.graph.add_edge(*edge)
        if added:
            self._absorb_added([edge])
        return added

    def apply_proposals(
        self,
        proposed: Optional[List[Tuple[int, int]]],
        batch: Optional[BatchProposals] = None,
    ) -> List[Tuple[int, int]]:
        """Batched insert plus closure-deficit bookkeeping over the new edges only."""
        if "apply_edge" in self.__dict__ or type(self).apply_edge is not DirectedTwoHopWalk.apply_edge:
            if proposed is None:
                proposed = batch.edges() if batch is not None else []
            added = [edge for edge in proposed if self.apply_edge(edge)]
        else:
            if batch is not None and hasattr(self.graph, "add_edges_batch_arrays"):
                added = self.graph.add_edges_batch_arrays(batch.us, batch.vs)
            elif hasattr(self.graph, "add_edges_batch"):
                added = self.graph.add_edges_batch(proposed if proposed is not None else [])
            else:
                added = [edge for edge in (proposed or []) if self.graph.add_edge(*edge)]
            self._absorb_added(added)
        self._note_added_edges(added)
        return added

    def is_converged(self) -> bool:
        """True when every transitive-closure edge of ``G_0`` is present."""
        return self._deficit == 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def target_closure(self) -> Set[Tuple[int, int]]:
        """The set of ordered pairs the process must eventually connect."""
        us, vs = np.nonzero(bitset.unpack_bool_matrix(self._target_bits, self.graph.n))
        return set(zip(us.tolist(), vs.tolist()))

    def missing_closure_edges(self) -> Set[Tuple[int, int]]:
        """Closure edges not yet present in the current graph."""
        missing = self._target_bits & ~adjacency_bits(self.graph)
        us, vs = np.nonzero(bitset.unpack_bool_matrix(missing, self.graph.n))
        return set(zip(us.tolist(), vs.tolist()))

    def closure_deficit_count(self) -> int:
        """Number of target-closure edges still missing (the counter itself)."""
        return self._deficit

    def live_closure(self) -> IncrementalClosure:
        """The incrementally-maintained closure of the *evolving* graph."""
        return self._closure

    def default_round_cap(self) -> int:
        """Safety cap derived from the paper's directed upper bound O(n² log n)."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(40 * n * n * log_n) + 100
