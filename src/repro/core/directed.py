"""The directed two-hop walk process — paper §5.

In each round, each node ``u`` takes a two-hop *directed* random walk
``u → v → w`` (``v`` uniform over ``u``'s out-neighbours, ``w`` uniform
over ``v``'s out-neighbours, both in the round-start graph) and adds the
directed edge ``(u, w)``.

The process terminates when the edge set equals the transitive closure of
the initial graph ``G_0``: every node ``u`` has a direct edge to every node
it could originally reach.  Theorem 14 gives an ``O(n² log n)`` upper bound
and an ``Ω(n² log n)`` weakly-connected lower bound; Theorem 15 gives an
``Ω(n²)`` lower bound on a strongly connected construction.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple, Union

import numpy as np

from repro.core.base import DiscoveryProcess, UpdateSemantics
from repro.graphs.adjacency import DynamicDiGraph
from repro.graphs.closure import transitive_closure_edges

__all__ = ["DirectedTwoHopWalk"]


class DirectedTwoHopWalk(DiscoveryProcess):
    """The two-hop walk process on a directed graph with closure termination.

    The target transitive closure is computed once from the starting graph;
    afterwards a counter of still-missing closure edges is maintained in
    O(1) per added edge, so convergence checks never rescan the graph.

    Parameters
    ----------
    graph:
        Directed starting graph (mutated in place).  Every node should have
        out-degree at least 1 for the walk to be defined everywhere;
        out-degree-0 nodes simply never act (their reachable set is empty,
        so they owe no closure edges either).
    rng:
        Seed or :class:`numpy.random.Generator`.
    semantics:
        Synchronous (default) or sequential updates.
    """

    #: request to v, reply with w's ID, introduction/edge creation toward w.
    MESSAGES_PER_NODE = 3

    def __init__(
        self,
        graph: DynamicDiGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    ) -> None:
        if not isinstance(graph, DynamicDiGraph):
            raise TypeError("DirectedTwoHopWalk requires a DynamicDiGraph")
        super().__init__(graph, rng, semantics)
        self._target_closure: Set[Tuple[int, int]] = transitive_closure_edges(graph)
        self._missing: Set[Tuple[int, int]] = {
            e for e in self._target_closure if not graph.has_edge(*e)
        }

    # ------------------------------------------------------------------ #
    # process definition
    # ------------------------------------------------------------------ #
    def propose(self, node: int) -> Optional[Tuple[int, int]]:
        """Sample the endpoint of ``node``'s directed two-hop walk this round."""
        out = self.graph.out_neighbors(node)
        if not out:
            return None
        v = self.graph.random_out_neighbor(node, self.rng)
        v_out = self.graph.out_neighbors(v)
        if not v_out:
            return None
        w = self.graph.random_out_neighbor(v, self.rng)
        if w == node:
            return None
        return node, w

    def apply_edge(self, edge: Tuple[int, int]) -> bool:
        """Insert the edge and keep the missing-closure counter up to date."""
        added = self.graph.add_edge(*edge)
        if added:
            self._missing.discard(edge)
        return added

    def is_converged(self) -> bool:
        """True when every transitive-closure edge of ``G_0`` is present."""
        return not self._missing

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def target_closure(self) -> Set[Tuple[int, int]]:
        """The set of ordered pairs the process must eventually connect."""
        return set(self._target_closure)

    def missing_closure_edges(self) -> Set[Tuple[int, int]]:
        """Closure edges not yet present in the current graph."""
        return set(self._missing)

    def default_round_cap(self) -> int:
        """Safety cap derived from the paper's directed upper bound O(n² log n)."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(40 * n * n * log_n) + 100
