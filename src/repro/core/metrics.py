"""Per-round metric collection for the discovery processes.

The recorder is a run-loop callback: attach it via the ``callbacks=``
argument of :meth:`DiscoveryProcess.run` and it snapshots the metrics the
experiments need.  Cheap metrics (edge count, min/mean degree, edges added,
message counts) are recorded every round; expensive metrics (diameter,
clustering) only every ``expensive_every`` rounds because they cost O(n·m).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.base import DiscoveryProcess, RoundResult
from repro.graphs import properties

__all__ = ["RoundMetrics", "MetricsRecorder"]


@dataclass
class RoundMetrics:
    """Snapshot of graph/process state after one round."""

    round_index: int
    num_edges: int
    edges_added: int
    min_degree: int
    mean_degree: float
    max_degree: int
    missing_edges: int
    messages_sent: int
    bits_sent: int
    diameter: Optional[int] = None
    average_clustering: Optional[float] = None


class MetricsRecorder:
    """Collects a :class:`RoundMetrics` entry after every round.

    Parameters
    ----------
    expensive_every:
        Period (in rounds) at which diameter and clustering are computed;
        0 disables them entirely (the default — they are only needed by the
        social-evolution experiments).
    """

    def __init__(self, expensive_every: int = 0) -> None:
        self.expensive_every = expensive_every
        self.history: List[RoundMetrics] = []

    def __call__(self, process: DiscoveryProcess, result: RoundResult) -> None:
        graph = process.graph
        # The per-round degree statistics read the process's incremental
        # cache (no O(n) copy per round); missing-edge counts come from the
        # graphs' O(1) edge counters.
        view = getattr(process, "degree_view", None)
        if view is not None:
            degrees = view()
            missing = (
                graph.missing_edges()
                if not graph.directed
                else graph.n * (graph.n - 1) - graph.number_of_edges()
            )
        elif not graph.directed:
            degrees = graph.degrees()
            missing = graph.missing_edges()
        else:
            degrees = graph.out_degrees()
            missing = graph.n * (graph.n - 1) - graph.number_of_edges()
        entry = RoundMetrics(
            round_index=result.round_index,
            num_edges=graph.number_of_edges(),
            edges_added=result.num_added,
            min_degree=int(degrees.min()) if graph.n else 0,
            mean_degree=float(degrees.mean()) if graph.n else 0.0,
            max_degree=int(degrees.max()) if graph.n else 0,
            missing_edges=missing,
            messages_sent=result.messages_sent,
            bits_sent=result.bits_sent,
        )
        if (
            self.expensive_every > 0
            and not graph.directed
            and result.round_index % self.expensive_every == 0
            and properties.is_connected(graph)
        ):
            entry.diameter = properties.diameter(graph)
            entry.average_clustering = properties.average_clustering(graph)
        self.history.append(entry)

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    def as_arrays(self) -> dict:
        """Return the recorded series as numpy arrays keyed by metric name."""
        if not self.history:
            return {}
        return {
            "round_index": np.array([m.round_index for m in self.history]),
            "num_edges": np.array([m.num_edges for m in self.history]),
            "edges_added": np.array([m.edges_added for m in self.history]),
            "min_degree": np.array([m.min_degree for m in self.history]),
            "mean_degree": np.array([m.mean_degree for m in self.history]),
            "max_degree": np.array([m.max_degree for m in self.history]),
            "missing_edges": np.array([m.missing_edges for m in self.history]),
            "messages_sent": np.array([m.messages_sent for m in self.history]),
            "bits_sent": np.array([m.bits_sent for m in self.history]),
        }

    def min_degree_series(self) -> np.ndarray:
        """The minimum-degree trajectory (one value per recorded round)."""
        return np.array([m.min_degree for m in self.history], dtype=np.int64)

    def edges_series(self) -> np.ndarray:
        """The edge-count trajectory (one value per recorded round)."""
        return np.array([m.num_edges for m in self.history], dtype=np.int64)

    def clear(self) -> None:
        """Drop all recorded history."""
        self.history.clear()

    def __len__(self) -> int:
        return len(self.history)
