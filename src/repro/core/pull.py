"""The pull discovery (two-hop walk) process — paper §4.

In each round, each node ``u`` picks a uniformly random neighbour ``v``,
then a uniformly random neighbour ``w`` of ``v`` (both from the round-start
graph), and adds the undirected edge ``(u, w)``.  If ``w == u`` or the edge
already exists nothing changes.  Operationally ``u`` asks ``v`` for the ID
of one of ``v``'s neighbours ("pulls" a contact) and then introduces
itself to ``w`` — three ``O(log n)``-bit messages per node per round
(request, reply, introduction).

Theorem 12: on any connected undirected graph the process reaches the
complete graph in ``O(n log² n)`` rounds w.h.p.; Theorem 13 gives the
``Ω(n log k)`` lower bound.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.base import DiscoveryProcess, UpdateSemantics
from repro.graphs.adjacency import DynamicGraph

__all__ = ["PullDiscovery"]


class PullDiscovery(DiscoveryProcess):
    """The two-hop walk process on an undirected graph.

    Parameters
    ----------
    graph:
        Connected undirected starting graph (mutated in place).
    rng:
        Seed or :class:`numpy.random.Generator`.
    semantics:
        Synchronous (default) or sequential updates.
    """

    #: request to v, reply with w's ID, introduction message to w.
    MESSAGES_PER_NODE = 3

    def __init__(
        self,
        graph: DynamicGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    ) -> None:
        if not isinstance(graph, DynamicGraph):
            raise TypeError("PullDiscovery requires an undirected DynamicGraph")
        super().__init__(graph, rng, semantics)

    def propose(self, node: int) -> Optional[Tuple[int, int]]:
        """Sample the endpoint of ``node``'s two-hop walk this round."""
        nbrs = self.graph.neighbors(node)
        if not nbrs:
            return None
        v = self.graph.random_neighbor(node, self.rng)
        w = self.graph.random_neighbor(v, self.rng)
        if w == node:
            # The walk returned home: no new contact this round.
            return None
        return node, w

    def is_converged(self) -> bool:
        """The absorbing state of the undirected processes is the complete graph."""
        return self.graph.is_complete()
