"""The pull discovery (two-hop walk) process — paper §4.

In each round, each node ``u`` picks a uniformly random neighbour ``v``,
then a uniformly random neighbour ``w`` of ``v`` (both from the round-start
graph), and adds the undirected edge ``(u, w)``.  If ``w == u`` or the edge
already exists nothing changes.  Operationally ``u`` asks ``v`` for the ID
of one of ``v``'s neighbours ("pulls" a contact) and then introduces
itself to ``w`` — three ``O(log n)``-bit messages per node per round
(request, reply, introduction).

Theorem 12: on any connected undirected graph the process reaches the
complete graph in ``O(n log² n)`` rounds w.h.p.; Theorem 13 gives the
``Ω(n log k)`` lower bound.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.core.base import BatchProposals, DiscoveryProcess, UpdateSemantics
from repro.graphs.adjacency import DynamicGraph

__all__ = ["PullDiscovery"]


class PullDiscovery(DiscoveryProcess):
    """The two-hop walk process on an undirected graph.

    Parameters
    ----------
    graph:
        Connected undirected starting graph (mutated in place).
    rng:
        Seed or :class:`numpy.random.Generator`.
    semantics:
        Synchronous (default) or sequential updates.
    backend:
        Optional graph backend selector (``"list"`` or ``"array"``); see
        :class:`DiscoveryProcess`.
    """

    #: request to v, reply with w's ID, introduction message to w.
    MESSAGES_PER_NODE = 3

    def __init__(
        self,
        graph: DynamicGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        backend: Optional[str] = None,
    ) -> None:
        if getattr(graph, "directed", True):
            raise TypeError("PullDiscovery requires an undirected graph (DynamicGraph or ArrayGraph)")
        super().__init__(graph, rng, semantics, backend=backend)

    def propose(self, node: int) -> Optional[Tuple[int, int]]:
        """Sample the endpoint of ``node``'s two-hop walk this round."""
        nbrs = self.graph.neighbors(node)
        if len(nbrs) == 0:
            return None
        v = self.graph.random_neighbor(node, self.rng)
        w = self.graph.random_neighbor(v, self.rng)
        if w == node:
            # The walk returned home: no new contact this round.
            return None
        return node, w

    def propose_batch(self, nodes: Iterable[int]):
        """Vectorized pull round: both hops of every node's walk in two bulk draws."""
        if (
            not self._propose_is(PullDiscovery)
            or not self._default_accounting()
            or not hasattr(self.graph, "random_neighbors")
        ):
            return super().propose_batch(nodes)
        return self._propose_batch_kernel(nodes)

    def _propose_batch_kernel(self, nodes: Iterable[int]) -> BatchProposals:
        """The raw kernel: hop one over all nodes, hop two over the sampled ``v``s.

        The second hop chains through the ``-1`` sentinel, so isolated nodes
        consume their uniforms (keeping the draw stream aligned across
        backends) without ever touching a neighbour row.
        """
        graph = self.graph
        nodes = np.asarray(nodes, dtype=np.int64)
        vs = graph.random_neighbors(nodes, self.rng)
        ws = graph.random_neighbors(vs, self.rng)
        valid = (vs >= 0) & (ws >= 0) & (ws != nodes)
        pos = np.flatnonzero(valid)
        return BatchProposals(nodes.shape[0], nodes[pos], ws[pos], pos)

    def is_converged(self) -> bool:
        """The absorbing state of the undirected processes is the complete graph."""
        return self.graph.is_complete()
