"""Process interface and the synchronous round engine.

The paper's model is synchronous: in round ``t`` every node acts on the
*same* snapshot ``G_t`` and all added edges appear together in ``G_{t+1}``.
:class:`DiscoveryProcess` implements that contract.  Because the graphs
are append-only and proposals are sampled before any edge is applied, the
synchronous semantics is achieved without copying the graph: a round
first collects every node's proposed edge(s) and only then applies them.

A ``sequential`` update mode is provided as an ablation (nodes act in index
order and see edges added earlier in the same round) — the paper's proofs
are for the synchronous mode, and experiment E1/E2 variants measure the
difference empirically.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph

__all__ = ["UpdateSemantics", "RoundResult", "RunResult", "DiscoveryProcess"]

GraphLike = Union[DynamicGraph, DynamicDiGraph]
Edge = Tuple[int, int]


class UpdateSemantics(str, enum.Enum):
    """When edges proposed during a round become visible.

    ``SYNCHRONOUS``
        All proposals are sampled against the round-start graph ``G_t`` and
        applied together afterwards (the paper's model).
    ``SEQUENTIAL``
        Nodes act in index order and immediately apply their edge, so later
        nodes in the same round can already exploit it (ablation).
    """

    SYNCHRONOUS = "synchronous"
    SEQUENTIAL = "sequential"


@dataclass
class RoundResult:
    """Outcome of a single round.

    Attributes
    ----------
    round_index:
        Zero-based index of the round that was executed.
    proposed_edges:
        Every edge proposed by some node this round (including duplicates
        and already-present edges), in node order.  Length equals the
        number of participating nodes for single-proposal processes.
    added_edges:
        The subset of proposals that were genuinely new edges.
    messages_sent:
        Number of protocol messages this round (for bit accounting).
    bits_sent:
        Total message payload in bits, assuming ``ceil(log2 n)``-bit node IDs.
    """

    round_index: int
    proposed_edges: List[Edge] = field(default_factory=list)
    added_edges: List[Edge] = field(default_factory=list)
    messages_sent: int = 0
    bits_sent: int = 0

    @property
    def num_added(self) -> int:
        """Number of new edges created this round."""
        return len(self.added_edges)


@dataclass
class RunResult:
    """Outcome of running a process until convergence or a round limit.

    Attributes
    ----------
    rounds:
        Number of rounds executed.
    converged:
        True when the stopping predicate was satisfied (rather than the
        round limit being hit).
    total_edges_added:
        Total number of new edges created over the run.
    total_messages:
        Total protocol messages over the run.
    total_bits:
        Total message payload bits over the run.
    history:
        Optional per-round results (present when ``record_history=True``).
    """

    rounds: int
    converged: bool
    total_edges_added: int
    total_messages: int
    total_bits: int
    history: Optional[List[RoundResult]] = None


class DiscoveryProcess(abc.ABC):
    """Common machinery for all discovery processes.

    Subclasses implement :meth:`propose` — the per-node random proposal that
    defines the process — and :meth:`is_converged`.  The base class owns the
    round loop, the update semantics, message accounting, and the
    participation mask used by the robustness variants.

    Parameters
    ----------
    graph:
        The starting graph; it is mutated in place.  Pass ``graph.copy()``
        if the caller needs to keep the original.
    rng:
        A :class:`numpy.random.Generator` or an integer seed.  Every random
        choice of the process flows through this generator.
    semantics:
        Synchronous (paper model, default) or sequential updates.
    """

    #: messages sent per participating node per round (overridden by subclasses).
    MESSAGES_PER_NODE: int = 2

    def __init__(
        self,
        graph: GraphLike,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    ) -> None:
        self.graph = graph
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self.semantics = UpdateSemantics(semantics)
        self.round_index = 0
        self.total_edges_added = 0
        self.total_messages = 0
        self.total_bits = 0
        self._id_bits = max(1, int(np.ceil(np.log2(max(graph.n, 2)))))

    # ------------------------------------------------------------------ #
    # to be provided by subclasses
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def propose(self, node: int) -> Optional[Edge]:
        """Return the edge node ``node`` proposes this round, or None.

        The proposal must be sampled from the process's local rule using
        only ``self.graph`` and ``self.rng``.  Returning ``None`` means the
        node makes no proposal (e.g. an isolated node in a variant).
        """

    @abc.abstractmethod
    def is_converged(self) -> bool:
        """True when the process has reached its absorbing state."""

    # ------------------------------------------------------------------ #
    # hooks that subclasses may override
    # ------------------------------------------------------------------ #
    def participating_nodes(self) -> Iterable[int]:
        """Nodes that act this round (all nodes by default)."""
        return self.graph.nodes()

    def messages_for_proposal(self, node: int, edge: Optional[Edge]) -> Tuple[int, int]:
        """Return ``(messages, bits)`` accounting for one node's action this round.

        The default charges :attr:`MESSAGES_PER_NODE` messages of one node
        ID each, matching the paper's O(log n)-bits-per-message model.
        Variants with no proposal still pay for their attempted messages.
        """
        return self.MESSAGES_PER_NODE, self.MESSAGES_PER_NODE * self._id_bits

    def apply_edge(self, edge: Edge) -> bool:
        """Insert a proposed edge into the graph; returns True when new."""
        return self.graph.add_edge(*edge)

    # ------------------------------------------------------------------ #
    # the round engine
    # ------------------------------------------------------------------ #
    def step(self) -> RoundResult:
        """Execute one synchronous (or sequential) round and return its result."""
        result = RoundResult(round_index=self.round_index)
        if self.semantics is UpdateSemantics.SYNCHRONOUS:
            proposals: List[Tuple[int, Optional[Edge]]] = [
                (node, self.propose(node)) for node in self.participating_nodes()
            ]
            for node, edge in proposals:
                msgs, bits = self.messages_for_proposal(node, edge)
                result.messages_sent += msgs
                result.bits_sent += bits
                if edge is None:
                    continue
                result.proposed_edges.append(edge)
                if self.apply_edge(edge):
                    result.added_edges.append(edge)
        else:  # sequential ablation
            for node in self.participating_nodes():
                edge = self.propose(node)
                msgs, bits = self.messages_for_proposal(node, edge)
                result.messages_sent += msgs
                result.bits_sent += bits
                if edge is None:
                    continue
                result.proposed_edges.append(edge)
                if self.apply_edge(edge):
                    result.added_edges.append(edge)
        self.round_index += 1
        self.total_edges_added += result.num_added
        self.total_messages += result.messages_sent
        self.total_bits += result.bits_sent
        return result

    def run(
        self,
        max_rounds: int,
        until: Optional[Callable[["DiscoveryProcess"], bool]] = None,
        record_history: bool = False,
        callbacks: Sequence[Callable[["DiscoveryProcess", RoundResult], None]] = (),
    ) -> RunResult:
        """Run rounds until convergence, a custom predicate, or ``max_rounds``.

        Parameters
        ----------
        max_rounds:
            Hard cap on the number of rounds executed by this call.
        until:
            Optional extra stopping predicate evaluated after every round
            (in addition to :meth:`is_converged`).
        record_history:
            When True, keep every :class:`RoundResult` in the returned
            :class:`RunResult` (memory grows linearly with rounds).
        callbacks:
            Callables invoked after every round with ``(process, result)``
            — used by the metrics recorder and the trace collector.
        """
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        history: Optional[List[RoundResult]] = [] if record_history else None
        converged = self.is_converged() or (until is not None and until(self))
        rounds_run = 0
        while not converged and rounds_run < max_rounds:
            result = self.step()
            rounds_run += 1
            if history is not None:
                history.append(result)
            for callback in callbacks:
                callback(self, result)
            converged = self.is_converged() or (until is not None and until(self))
        return RunResult(
            rounds=rounds_run,
            converged=converged,
            total_edges_added=self.total_edges_added,
            total_messages=self.total_messages,
            total_bits=self.total_bits,
            history=history,
        )

    def run_to_convergence(
        self,
        max_rounds: Optional[int] = None,
        record_history: bool = False,
        callbacks: Sequence[Callable[["DiscoveryProcess", RoundResult], None]] = (),
    ) -> RunResult:
        """Run until :meth:`is_converged` holds, with a safety cap.

        The default cap is a generous multiple of the paper's upper bounds
        (``40 · n · (log₂ n + 1)²`` for undirected processes) so a stuck run
        cannot loop forever; hitting the cap returns ``converged=False``.
        """
        if max_rounds is None:
            max_rounds = self.default_round_cap()
        return self.run(max_rounds, record_history=record_history, callbacks=callbacks)

    def default_round_cap(self) -> int:
        """A generous safety cap derived from the paper's upper bound for the process."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(40 * n * log_n * log_n) + 100

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.graph.n}, round={self.round_index}, "
            f"edges={self.graph.number_of_edges()})"
        )
