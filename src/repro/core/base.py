"""Process interface and the synchronous round engine.

The paper's model is synchronous: in round ``t`` every node acts on the
*same* snapshot ``G_t`` and all added edges appear together in ``G_{t+1}``.
:class:`DiscoveryProcess` implements that contract.  Because the graphs
are append-only and proposals are sampled before any edge is applied, the
synchronous semantics is achieved without copying the graph: a round
first collects every node's proposed edge(s) and only then applies them.

Synchronous rounds are executed through :meth:`DiscoveryProcess.propose_batch`,
which the concrete processes override with vectorized kernels (one bulk RNG
draw per sampling stage, whole-array index math, a batched edge insert).
The base implementation falls back to calling :meth:`propose` per node, so
processes that customise ``propose`` — the faulty variants' churn wrapper,
user subclasses — keep their exact per-node behaviour.  The bulk draw
convention is shared by the list and array graph backends
(see :mod:`repro.graphs.sampling`), which makes seeded traces identical
across backends under ``UpdateSemantics.SYNCHRONOUS``.

A ``sequential`` update mode is provided as an ablation (nodes act in index
order and see edges added earlier in the same round) — the paper's proofs
are for the synchronous mode, and experiment E1/E2 variants measure the
difference empirically.  The sequential mode always uses the per-node path.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.array_adjacency import ArrayDiGraph, ArrayGraph, as_backend, backend_name

__all__ = [
    "UpdateSemantics",
    "RoundResult",
    "RunResult",
    "BatchProposals",
    "DiscoveryProcess",
    "id_bits",
]

GraphLike = Union[DynamicGraph, DynamicDiGraph, ArrayGraph, ArrayDiGraph]
Edge = Tuple[int, int]


def id_bits(n: int) -> int:
    """Bits needed to name one node among ``n`` — ``max(1, ceil(log2 n))``.

    This is the paper's ``O(log n)``-bit message payload unit.  It is the
    single authority for bit accounting: the round engine (both the bulk
    and the per-node accounting paths) and the message-level network layer
    all charge ``id_bits(n)`` per transmitted node ID, so the two backends
    can never drift apart on ``bits_sent``.  Degenerate sizes are pinned by
    tests: a 1- or 2-node system still pays 1 bit per ID.
    """
    return max(1, (max(int(n), 2) - 1).bit_length())


class UpdateSemantics(str, enum.Enum):
    """When edges proposed during a round become visible.

    ``SYNCHRONOUS``
        All proposals are sampled against the round-start graph ``G_t`` and
        applied together afterwards (the paper's model).
    ``SEQUENTIAL``
        Nodes act in index order and immediately apply their edge, so later
        nodes in the same round can already exploit it (ablation).
    """

    SYNCHRONOUS = "synchronous"
    SEQUENTIAL = "sequential"


class RoundResult:
    """Outcome of a single round.

    Attributes
    ----------
    round_index:
        Zero-based index of the round that was executed.
    proposed_edges:
        Every edge proposed by some node this round (including duplicates
        and already-present edges), in node order.  Length equals the
        number of participating nodes for single-proposal processes.
        Materialised lazily when the round came from a vectorized kernel —
        hot convergence loops never touch it, so they never pay for the
        tuple conversion.
    added_edges:
        The subset of proposals that were genuinely new edges.
    messages_sent:
        Number of protocol messages this round (for bit accounting).
    bits_sent:
        Total message payload in bits, assuming ``ceil(log2 n)``-bit node IDs.
    """

    __slots__ = ("round_index", "added_edges", "messages_sent", "bits_sent", "_proposed", "_batch")

    def __init__(
        self,
        round_index: int,
        proposed_edges: Optional[List[Edge]] = None,
        added_edges: Optional[List[Edge]] = None,
        messages_sent: int = 0,
        bits_sent: int = 0,
    ) -> None:
        self.round_index = round_index
        self._proposed: Optional[List[Edge]] = (
            proposed_edges if proposed_edges is not None else []
        )
        self._batch: Optional["BatchProposals"] = None
        self.added_edges: List[Edge] = added_edges if added_edges is not None else []
        self.messages_sent = messages_sent
        self.bits_sent = bits_sent

    @property
    def proposed_edges(self) -> List[Edge]:
        """This round's proposals as tuples (materialised on first access)."""
        if self._proposed is None:
            self._proposed = self._batch.edges() if self._batch is not None else []
        return self._proposed

    @proposed_edges.setter
    def proposed_edges(self, value: List[Edge]) -> None:
        self._proposed = value
        self._batch = None

    def attach_batch(self, batch: "BatchProposals") -> None:
        """Record the array-form proposals, deferring tuple conversion."""
        self._batch = batch
        self._proposed = None

    @property
    def num_added(self) -> int:
        """Number of new edges created this round."""
        return len(self.added_edges)

    def __repr__(self) -> str:
        return (
            f"RoundResult(round_index={self.round_index}, "
            f"added={self.num_added}, messages={self.messages_sent}, bits={self.bits_sent})"
        )


class BatchProposals:
    """Array-form result of a vectorized synchronous round's sampling stage.

    The vectorized ``propose_batch`` kernels return this instead of a
    per-node pairs list so the round engine can stay in NumPy all the way
    to the batched edge insert.  ``us``/``vs`` hold the endpoints of the
    *valid* proposals only, in node order; ``pos`` maps each proposal back
    to its index among the round's ``count`` participating nodes (used by
    the faulty variants to align their bulk failure draw).
    """

    __slots__ = ("count", "us", "vs", "pos")

    def __init__(self, count: int, us: np.ndarray, vs: np.ndarray, pos: np.ndarray) -> None:
        self.count = count
        self.us = us
        self.vs = vs
        self.pos = pos

    def edges(self) -> List[Edge]:
        """The proposals as plain ``(u, v)`` tuples in node order."""
        return list(zip(self.us.tolist(), self.vs.tolist()))


@dataclass
class RunResult:
    """Outcome of running a process until convergence or a round limit.

    Attributes
    ----------
    rounds:
        Number of rounds executed.
    converged:
        True when the stopping predicate was satisfied (rather than the
        round limit being hit).
    total_edges_added:
        Total number of new edges created over the run.
    total_messages:
        Total protocol messages over the run.
    total_bits:
        Total message payload bits over the run.
    history:
        Optional per-round results (present when ``record_history=True``).
    """

    rounds: int
    converged: bool
    total_edges_added: int
    total_messages: int
    total_bits: int
    history: Optional[List[RoundResult]] = None


class DiscoveryProcess(abc.ABC):
    """Common machinery for all discovery processes.

    Subclasses implement :meth:`propose` — the per-node random proposal that
    defines the process — and :meth:`is_converged`.  The base class owns the
    round loop, the update semantics, message accounting, and the
    participation mask used by the robustness variants.

    Parameters
    ----------
    graph:
        The starting graph; it is mutated in place.  Pass ``graph.copy()``
        if the caller needs to keep the original.
    rng:
        A :class:`numpy.random.Generator` or an integer seed.  Every random
        choice of the process flows through this generator.
    semantics:
        Synchronous (paper model, default) or sequential updates.
    backend:
        Optional graph backend selector: ``"list"`` (per-node Python lists,
        the default substrate) or ``"array"`` (preallocated NumPy arrays,
        the vectorized fast path).  When given, the graph is converted with
        :func:`repro.graphs.array_adjacency.as_backend`; when ``None`` the
        graph is used as passed.  Both backends produce identical seeded
        traces under synchronous semantics.
    """

    #: messages sent per participating node per round (overridden by subclasses).
    MESSAGES_PER_NODE: int = 2

    def __init__(
        self,
        graph: GraphLike,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        backend: Optional[str] = None,
    ) -> None:
        if backend is not None:
            graph = as_backend(graph, backend)
        self.graph = graph
        self.backend = backend_name(graph)
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self.semantics = UpdateSemantics(semantics)
        self.round_index = 0
        self.total_edges_added = 0
        self.total_messages = 0
        self.total_bits = 0
        self._id_bits = id_bits(graph.n)
        # Incrementally-maintained convergence counters (built lazily by
        # degree_view): the cached (out-)degree vector, the edge count it
        # reflects, and a lazily-refreshed minimum degree.
        self._deg_cache: Optional[np.ndarray] = None
        self._deg_cache_edges = -1
        self._min_deg = 0
        self._min_deg_dirty = True

    # ------------------------------------------------------------------ #
    # to be provided by subclasses
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def propose(self, node: int) -> Optional[Edge]:
        """Return the edge node ``node`` proposes this round, or None.

        The proposal must be sampled from the process's local rule using
        only ``self.graph`` and ``self.rng``.  Returning ``None`` means the
        node makes no proposal (e.g. an isolated node in a variant).
        """

    @abc.abstractmethod
    def is_converged(self) -> bool:
        """True when the process has reached its absorbing state."""

    # ------------------------------------------------------------------ #
    # hooks that subclasses may override
    # ------------------------------------------------------------------ #
    def participating_nodes(self) -> Iterable[int]:
        """Nodes that act this round (all nodes by default)."""
        return self.graph.nodes()

    def messages_for_proposal(self, node: int, edge: Optional[Edge]) -> Tuple[int, int]:
        """Return ``(messages, bits)`` accounting for one node's action this round.

        The default charges :attr:`MESSAGES_PER_NODE` messages of one node
        ID each, matching the paper's O(log n)-bits-per-message model.
        Variants with no proposal still pay for their attempted messages.
        """
        return self.MESSAGES_PER_NODE, self.MESSAGES_PER_NODE * self._id_bits

    def apply_edge(self, edge: Edge) -> bool:
        """Insert a proposed edge into the graph; returns True when new."""
        return self.graph.add_edge(*edge)

    def propose_batch(
        self, nodes: Iterable[int]
    ) -> Union[List[Tuple[int, Optional[Edge]]], BatchProposals]:
        """Collect every node's proposal for one synchronous round.

        The base implementation calls :meth:`propose` per node and returns
        ``(node, proposal)`` pairs in node order, one per participating node
        (``None`` proposals included — they still pay their messages).  The
        concrete processes override this with vectorized kernels that return
        a :class:`BatchProposals` instead, and fall back here whenever
        ``propose`` or the message accounting has been customised (so
        wrappers that patch ``propose`` keep working unchanged).
        """
        return [(node, self.propose(node)) for node in nodes]

    def apply_proposals(
        self, proposed: Optional[List[Edge]], batch: Optional[BatchProposals] = None
    ) -> List[Edge]:
        """Apply a round's proposals to the graph; return the new edges in order.

        Uses the graph's batched insert when :meth:`apply_edge` has not been
        customised (the batch contract matches sequential first-occurrence
        application exactly) — staying in array form when the proposals came
        from a vectorized kernel; otherwise applies edge by edge through
        :meth:`apply_edge` so subclass bookkeeping stays correct.
        ``proposed=None`` means "derive the tuples from ``batch`` if a
        non-array path actually needs them".  Every path funnels the new
        edges through :meth:`_note_added_edges` so the cached convergence
        counters stay current without rescanning the graph.
        """
        added: Optional[List[Edge]] = None
        if "apply_edge" not in self.__dict__ and type(self).apply_edge is DiscoveryProcess.apply_edge:
            if batch is not None:
                arrays = getattr(self.graph, "add_edges_batch_arrays", None)
                if arrays is not None:
                    added = arrays(batch.us, batch.vs)
            if added is None:
                tuple_batch = getattr(self.graph, "add_edges_batch", None)
                if tuple_batch is not None:
                    added = tuple_batch(proposed if proposed is not None else batch.edges())
        if added is None:
            if proposed is None:
                proposed = batch.edges() if batch is not None else []
            added = [edge for edge in proposed if self.apply_edge(edge)]
        self._note_added_edges(added)
        return added

    # ------------------------------------------------------------------ #
    # incrementally-maintained convergence counters
    # ------------------------------------------------------------------ #
    def degree_view(self) -> np.ndarray:
        """The (out-)degree vector as a read-only cached array.

        Built lazily from the graph on first use, then patched in
        O(#added edges) per round by :meth:`_note_added_edges` instead of
        recomputed/copied O(n) every convergence check.  Self-healing: if
        the graph was mutated outside the round engine (a process that
        overrides :meth:`step`, direct ``add_edge`` calls), the cached edge
        count disagrees and the vector is rebuilt from the graph.  Callers
        must not mutate the returned array.
        """
        m = self.graph.number_of_edges()
        if self._deg_cache is None or self._deg_cache_edges != m:
            graph = self.graph
            self._deg_cache = graph.out_degrees() if graph.directed else graph.degrees()
            self._deg_cache_edges = m
            self._min_deg_dirty = True
        return self._deg_cache

    def cached_min_degree(self) -> int:
        """Minimum (out-)degree via the incremental cache.

        The vector minimum is recomputed only when some node at the current
        minimum gained an edge since the last query (degrees never decrease
        under the append-only contract), so convergence predicates that
        poll every round usually pay O(1).
        """
        deg = self.degree_view()
        if self._min_deg_dirty:
            self._min_deg = int(deg.min()) if deg.size else 0
            self._min_deg_dirty = False
        return self._min_deg

    def _note_added_edges(self, added: List[Edge]) -> None:
        """Patch the cached degree counters for one round's new edges."""
        if self._deg_cache is None:
            return
        if not added:
            return
        arr = np.asarray(added, dtype=np.int64).reshape(-1, 2)
        ends = arr[:, 0] if self.graph.directed else arr.ravel()
        deg = self._deg_cache
        if not self._min_deg_dirty and bool((deg[ends] == self._min_deg).any()):
            self._min_deg_dirty = True
        np.add.at(deg, ends, 1)
        self._deg_cache_edges += len(added)

    def _propose_is(self, owner: type) -> bool:
        """True when ``self.propose`` is exactly ``owner.propose`` (not customised).

        Vectorized ``propose_batch`` kernels are only valid when the scalar
        rule they mirror is the one in effect; both subclass overrides and
        instance-level patches (e.g. the churn wrapper) force the fallback.
        """
        return "propose" not in self.__dict__ and type(self).propose is owner.propose

    def _default_accounting(self) -> bool:
        """True when message accounting follows the flat per-node default."""
        return (
            "messages_for_proposal" not in self.__dict__
            and type(self).messages_for_proposal is DiscoveryProcess.messages_for_proposal
        )

    # ------------------------------------------------------------------ #
    # the round engine
    # ------------------------------------------------------------------ #
    def step(self) -> RoundResult:
        """Execute one synchronous (or sequential) round and return its result."""
        result = RoundResult(round_index=self.round_index)
        if self.semantics is UpdateSemantics.SYNCHRONOUS:
            proposals = self.propose_batch(self.participating_nodes())
            if isinstance(proposals, BatchProposals):
                array_batch: Optional[BatchProposals] = proposals
                pairs: List[Tuple[int, Optional[Edge]]] = []
                participants = proposals.count
                result.attach_batch(proposals)
                proposed: Optional[List[Edge]] = None
            else:
                array_batch = None
                pairs = proposals
                participants = len(pairs)
                proposed = [edge for _, edge in pairs if edge is not None]
                result.proposed_edges = proposed
            if self._default_accounting():
                result.messages_sent = self.MESSAGES_PER_NODE * participants
                result.bits_sent = result.messages_sent * self._id_bits
            else:
                # Only the pairs lane can reach here: the vectorized kernels
                # fall back to the per-node path under custom accounting.
                for node, edge in pairs:
                    msgs, bits = self.messages_for_proposal(node, edge)
                    result.messages_sent += msgs
                    result.bits_sent += bits
            result.added_edges = self.apply_proposals(proposed, batch=array_batch)
        else:  # sequential ablation
            for node in self.participating_nodes():
                edge = self.propose(node)
                msgs, bits = self.messages_for_proposal(node, edge)
                result.messages_sent += msgs
                result.bits_sent += bits
                if edge is None:
                    continue
                result.proposed_edges.append(edge)
                if self.apply_edge(edge):
                    result.added_edges.append(edge)
            self._note_added_edges(result.added_edges)
        self.round_index += 1
        self.total_edges_added += result.num_added
        self.total_messages += result.messages_sent
        self.total_bits += result.bits_sent
        return result

    def run(
        self,
        max_rounds: int,
        until: Optional[Callable[["DiscoveryProcess"], bool]] = None,
        record_history: bool = False,
        callbacks: Sequence[Callable[["DiscoveryProcess", RoundResult], None]] = (),
    ) -> RunResult:
        """Run rounds until convergence, a custom predicate, or ``max_rounds``.

        Parameters
        ----------
        max_rounds:
            Hard cap on the number of rounds executed by this call.
        until:
            Optional extra stopping predicate evaluated after every round
            (in addition to :meth:`is_converged`).
        record_history:
            When True, keep every :class:`RoundResult` in the returned
            :class:`RunResult` (memory grows linearly with rounds).
        callbacks:
            Callables invoked after every round with ``(process, result)``
            — used by the metrics recorder and the trace collector.
        """
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        history: Optional[List[RoundResult]] = [] if record_history else None
        converged = self.is_converged() or (until is not None and until(self))
        rounds_run = 0
        while not converged and rounds_run < max_rounds:
            result = self.step()
            rounds_run += 1
            if history is not None:
                history.append(result)
            for callback in callbacks:
                callback(self, result)
            converged = self.is_converged() or (until is not None and until(self))
        return RunResult(
            rounds=rounds_run,
            converged=converged,
            total_edges_added=self.total_edges_added,
            total_messages=self.total_messages,
            total_bits=self.total_bits,
            history=history,
        )

    def run_to_convergence(
        self,
        max_rounds: Optional[int] = None,
        record_history: bool = False,
        callbacks: Sequence[Callable[["DiscoveryProcess", RoundResult], None]] = (),
    ) -> RunResult:
        """Run until :meth:`is_converged` holds, with a safety cap.

        The default cap is a generous multiple of the paper's upper bounds
        (``40 · n · (log₂ n + 1)²`` for undirected processes) so a stuck run
        cannot loop forever; hitting the cap returns ``converged=False``.
        """
        if max_rounds is None:
            max_rounds = self.default_round_cap()
        return self.run(max_rounds, record_history=record_history, callbacks=callbacks)

    def default_round_cap(self) -> int:
        """A generous safety cap derived from the paper's upper bound for the process."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(40 * n * log_n * log_n) + 100

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.graph.n}, round={self.round_index}, "
            f"edges={self.graph.number_of_edges()})"
        )
