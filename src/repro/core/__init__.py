"""The paper's contribution: gossip-based discovery processes on dynamic graphs.

* :class:`repro.core.push.PushDiscovery` — the triangulation (push) process.
* :class:`repro.core.pull.PullDiscovery` — the two-hop walk (pull) process.
* :class:`repro.core.directed.DirectedTwoHopWalk` — the directed two-hop walk.
* :mod:`repro.core.subset` — group discovery restricted to an induced subgraph.
* :mod:`repro.core.variants` — robustness ablations (edge failures, partial
  participation, churn) from the paper's conclusion.
"""

from repro.core.base import (
    BatchProposals,
    DiscoveryProcess,
    RoundResult,
    UpdateSemantics,
    id_bits,
)
from repro.core.push import PushDiscovery
from repro.core.pull import PullDiscovery
from repro.core.directed import DirectedTwoHopWalk
from repro.core.convergence import (
    complete_graph_reached,
    closure_reached,
    min_degree_reached,
    edge_count_reached,
)
from repro.core.metrics import MetricsRecorder, RoundMetrics
from repro.core.subset import SubsetDiscovery
from repro.core.variants import FaultyPushDiscovery, FaultyPullDiscovery, ChurnModel
from repro.core.scheduler import (
    ActivationSchedule,
    FullActivation,
    BernoulliActivation,
    FixedSubsetActivation,
    RoundRobinActivation,
    PoissonLikeActivation,
    ScheduledProcess,
)

__all__ = [
    "ActivationSchedule",
    "FullActivation",
    "BernoulliActivation",
    "FixedSubsetActivation",
    "RoundRobinActivation",
    "PoissonLikeActivation",
    "ScheduledProcess",
    "BatchProposals",
    "DiscoveryProcess",
    "RoundResult",
    "UpdateSemantics",
    "id_bits",
    "PushDiscovery",
    "PullDiscovery",
    "DirectedTwoHopWalk",
    "SubsetDiscovery",
    "FaultyPushDiscovery",
    "FaultyPullDiscovery",
    "ChurnModel",
    "MetricsRecorder",
    "RoundMetrics",
    "complete_graph_reached",
    "closure_reached",
    "min_degree_reached",
    "edge_count_reached",
]
