"""Group (subset) discovery — the O(k log² k) corollary of the paper's §1 results.

The paper observes that if a subset of ``k`` nodes induces a connected
subgraph and the gossip process is run *restricted to that subgraph* (each
group member only introduces / pulls group members), then the subgraph
becomes complete in ``O(k log² k)`` rounds w.h.p. — independent of the
size of the host network.  This module wraps that restriction: it extracts
the induced subgraph, runs the chosen process on it, and exposes the result
both in subgraph labels and in the host graph's original labels.

This is the "members of a social group discover one another" scenario
(alumni of a school, members of a club) from the introduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import RunResult, UpdateSemantics
from repro.core.push import PushDiscovery
from repro.core.pull import PullDiscovery
from repro.graphs.adjacency import DynamicGraph
from repro.graphs.array_adjacency import as_backend
from repro.graphs import properties

__all__ = ["SubsetDiscovery"]


class SubsetDiscovery:
    """Run a discovery process restricted to an induced subgraph of a host graph.

    Parameters
    ----------
    host:
        The full network.  It is *not* mutated — the group runs on its own
        copy of the induced subgraph, mirroring the paper's setup where the
        group's gossip only involves group members.
    members:
        The node labels (in the host graph) forming the group.  The induced
        subgraph must be connected, as the paper requires.
    process:
        ``"push"`` (triangulation) or ``"pull"`` (two-hop walk).
    rng:
        Seed or :class:`numpy.random.Generator`.
    backend:
        Optional graph backend for the restricted run: ``"list"`` (default
        behaviour) or ``"array"`` (the vectorized fast path).  Identical
        seeded traces either way.
    """

    def __init__(
        self,
        host: DynamicGraph,
        members: Sequence[int],
        process: str = "push",
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        backend: Optional[str] = None,
    ) -> None:
        if len(members) < 2:
            raise ValueError("a group needs at least 2 members")
        if process not in ("push", "pull"):
            raise ValueError(f"process must be 'push' or 'pull', got {process!r}")
        self.host = host
        self.members: List[int] = list(members)
        # Induced-subgraph extraction lives on the list backend; an
        # array-backed host is converted for the (one-off) extraction.
        # Subgraph edges are inserted in sorted order either way, so the
        # restricted run is reproducible from a seed regardless of the
        # host's backend.
        extract = host if hasattr(host, "subgraph") else as_backend(host, "list")
        self.subgraph, self._to_sub = extract.subgraph(self.members)
        self._to_host: Dict[int, int] = {sub: orig for orig, sub in self._to_sub.items()}
        if not properties.is_connected(self.subgraph):
            raise ValueError(
                "the group must induce a connected subgraph for the paper's "
                "O(k log^2 k) guarantee to apply"
            )
        if process == "push":
            self.process = PushDiscovery(
                self.subgraph, rng=rng, semantics=semantics, backend=backend
            )
        else:
            self.process = PullDiscovery(
                self.subgraph, rng=rng, semantics=semantics, backend=backend
            )
        # The process may have converted the subgraph; keep the evolving
        # graph (the one the rounds mutate) as the single source of truth.
        self.subgraph = self.process.graph

    @property
    def k(self) -> int:
        """Group size."""
        return len(self.members)

    def run_to_convergence(self, max_rounds: Optional[int] = None, **kwargs) -> RunResult:
        """Run the restricted process until the group subgraph is complete."""
        return self.process.run_to_convergence(max_rounds=max_rounds, **kwargs)

    def discovered_pairs(self) -> List[Tuple[int, int]]:
        """Current group edges expressed in the host graph's node labels."""
        return sorted(
            (min(self._to_host[u], self._to_host[v]), max(self._to_host[u], self._to_host[v]))
            for u, v in self.subgraph.edges()
        )

    def is_group_complete(self) -> bool:
        """True when every pair of group members has discovered each other."""
        return self.subgraph.is_complete()

    def to_host_label(self, sub_node: int) -> int:
        """Translate a subgraph node label back to the host graph label."""
        return self._to_host[sub_node]

    def to_subgraph_label(self, host_node: int) -> int:
        """Translate a host graph node label to the subgraph label."""
        return self._to_sub[host_node]
