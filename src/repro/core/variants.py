"""Robustness variants of the processes — the paper's §6 future-work ablations.

The conclusion asks about "failures associated with forming connections,
the joining and leaving of nodes, or having only a subset of nodes
participate in forming connections".  This module implements those
variants so experiment E11 can measure how gracefully the convergence time
degrades:

* :class:`FaultyPushDiscovery` / :class:`FaultyPullDiscovery` — each
  proposed connection independently *fails* with probability
  ``failure_prob`` (the introduction message is lost), and each node
  independently *participates* in a round with probability
  ``participation_prob``.
* :class:`ChurnModel` — a simple join/leave overlay: inactive nodes make
  no proposals and are never chosen as new contacts by the walk-based
  process (they can still appear inside old neighbour lists, exactly like
  a stale address in a real peer-to-peer cache).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.base import BatchProposals, DiscoveryProcess, UpdateSemantics
from repro.core.push import PushDiscovery
from repro.core.pull import PullDiscovery
from repro.graphs.adjacency import DynamicGraph

__all__ = ["FaultyPushDiscovery", "FaultyPullDiscovery", "ChurnModel"]


class _FaultyMixin:
    """Shared failure / participation logic for the faulty process variants."""

    failure_prob: float
    participation_prob: float

    def _init_faults(self, failure_prob: float, participation_prob: float) -> None:
        if not (0.0 <= failure_prob < 1.0):
            raise ValueError(f"failure_prob must be in [0, 1), got {failure_prob}")
        if not (0.0 < participation_prob <= 1.0):
            raise ValueError(
                f"participation_prob must be in (0, 1], got {participation_prob}"
            )
        self.failure_prob = failure_prob
        self.participation_prob = participation_prob

    def participating_nodes(self) -> Iterable[int]:
        """Each node independently participates with ``participation_prob``."""
        if self.participation_prob >= 1.0:
            return self.graph.nodes()
        mask = self.rng.random(self.graph.n) < self.participation_prob
        return np.flatnonzero(mask).tolist()

    def _connection_fails(self) -> bool:
        return self.failure_prob > 0.0 and float(self.rng.random()) < self.failure_prob

    def _faulty_propose_batch(self, nodes, owner):
        """Vectorized faulty round: base kernel plus one bulk failure draw.

        With ``failure_prob == 0`` this is draw-for-draw identical to the
        fault-free process, preserving the "zero faults behaves like the
        base process" contract on every backend.  ``owner`` is the concrete
        faulty class whose ``propose`` pairs with this batch rule; any
        further customisation falls back to the per-node path.
        """
        if (
            not self._propose_is(owner)
            or not self._default_accounting()
            or not hasattr(self.graph, "random_neighbors")
        ):
            return DiscoveryProcess.propose_batch(self, nodes)
        batch = self._propose_batch_kernel(nodes)
        if self.failure_prob > 0.0 and batch.count:
            # One uniform per participating node (drawn after the proposals,
            # like the scalar path) masks out the lost introductions.
            fails = self.rng.random(batch.count) < self.failure_prob
            keep = np.flatnonzero(~fails[batch.pos])
            batch = BatchProposals(batch.count, batch.us[keep], batch.vs[keep], batch.pos[keep])
        return batch


class FaultyPushDiscovery(_FaultyMixin, PushDiscovery):
    """Triangulation with lossy introductions and partial participation."""

    def __init__(
        self,
        graph: DynamicGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        failure_prob: float = 0.0,
        participation_prob: float = 1.0,
    ) -> None:
        super().__init__(graph, rng=rng, semantics=semantics)
        self._init_faults(failure_prob, participation_prob)

    def propose(self, node: int) -> Optional[Tuple[int, int]]:
        edge = super().propose(node)
        if edge is not None and self._connection_fails():
            return None
        return edge

    def propose_batch(self, nodes):
        """Vectorized faulty push (see :meth:`_FaultyMixin._faulty_propose_batch`)."""
        return self._faulty_propose_batch(nodes, FaultyPushDiscovery)


class FaultyPullDiscovery(_FaultyMixin, PullDiscovery):
    """Two-hop walk with lossy introductions and partial participation."""

    def __init__(
        self,
        graph: DynamicGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        failure_prob: float = 0.0,
        participation_prob: float = 1.0,
    ) -> None:
        super().__init__(graph, rng=rng, semantics=semantics)
        self._init_faults(failure_prob, participation_prob)

    def propose(self, node: int) -> Optional[Tuple[int, int]]:
        edge = super().propose(node)
        if edge is not None and self._connection_fails():
            return None
        return edge

    def propose_batch(self, nodes):
        """Vectorized faulty pull (see :meth:`_FaultyMixin._faulty_propose_batch`)."""
        return self._faulty_propose_batch(nodes, FaultyPullDiscovery)


class ChurnModel:
    """A join/leave overlay on top of a push or pull process.

    Nodes toggle between *active* and *inactive*.  Inactive nodes make no
    proposals; proposals whose new endpoint is inactive fail (the contact
    is unreachable).  Edges are never removed — an inactive node's entries
    simply go stale, as in a real peer cache.

    Convergence is defined over the *currently active* node set: the model
    reports completion when every pair of active nodes is connected.

    Parameters
    ----------
    process:
        A :class:`PushDiscovery` or :class:`PullDiscovery` instance to wrap.
    leave_prob, join_prob:
        Per-round probability for an active node to leave and for an
        inactive node to rejoin.
    min_active_fraction:
        Churn never drives the active set below this fraction of all nodes
        (so the experiment remains meaningful).
    """

    def __init__(
        self,
        process: Union[PushDiscovery, PullDiscovery],
        leave_prob: float = 0.01,
        join_prob: float = 0.1,
        min_active_fraction: float = 0.5,
        rng: Union[np.random.Generator, int, None] = None,
    ) -> None:
        if not (0.0 <= leave_prob < 1.0) or not (0.0 <= join_prob <= 1.0):
            raise ValueError("leave_prob must be in [0,1) and join_prob in [0,1]")
        if not (0.0 < min_active_fraction <= 1.0):
            raise ValueError("min_active_fraction must be in (0, 1]")
        self.process = process
        self.graph = process.graph
        self.leave_prob = leave_prob
        self.join_prob = join_prob
        self.min_active = max(2, int(np.ceil(min_active_fraction * self.graph.n)))
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.active: Set[int] = set(range(self.graph.n))
        self._install_hooks()

    def _install_hooks(self) -> None:
        original_propose = self.process.propose
        active = self.active

        def guarded_propose(node: int):
            if node not in active:
                return None
            edge = original_propose(node)
            if edge is None:
                return None
            u, v = edge
            # The newly-contacted endpoint must be reachable (active).
            if u not in active or v not in active:
                return None
            return edge

        self.process.propose = guarded_propose  # type: ignore[method-assign]

    def churn_step(self) -> None:
        """Apply one round of random leaves and joins, respecting the floor."""
        nodes = list(range(self.graph.n))
        for node in nodes:
            if node in self.active:
                if len(self.active) > self.min_active and float(self.rng.random()) < self.leave_prob:
                    self.active.discard(node)
            else:
                if float(self.rng.random()) < self.join_prob:
                    self.active.add(node)

    def active_pairs_complete(self) -> bool:
        """True when every pair of currently active nodes is connected."""
        active = sorted(self.active)
        for i, u in enumerate(active):
            for v in active[i + 1:]:
                if not self.graph.has_edge(u, v):
                    return False
        return True

    def run(self, max_rounds: int) -> Tuple[int, bool]:
        """Alternate churn and process rounds; return ``(rounds, converged)``."""
        for rounds in range(1, max_rounds + 1):
            self.churn_step()
            self.process.step()
            if self.active_pairs_complete():
                return rounds, True
        return max_rounds, False
