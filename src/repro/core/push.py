"""The push discovery (triangulation) process — paper §3.

In each round, each node ``u`` draws two neighbours ``v`` and ``w``
uniformly at random (independently, with replacement) from its current
neighbourhood and adds the undirected edge ``(v, w)``.  If ``v == w`` or
the edge already exists nothing changes.  Operationally ``u`` "introduces"
``v`` and ``w`` to each other by sending each the other's ID — two
``O(log n)``-bit messages per node per round.

Theorem 8: on any connected undirected graph the process reaches the
complete graph in ``O(n log² n)`` rounds w.h.p.; Theorem 9 gives the
``Ω(n log k)`` lower bound when ``k`` edges are missing.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.core.base import BatchProposals, DiscoveryProcess, UpdateSemantics
from repro.graphs.adjacency import DynamicGraph
from repro.graphs.sampling import uniform_indices

__all__ = ["PushDiscovery"]


class PushDiscovery(DiscoveryProcess):
    """The triangulation process on an undirected graph.

    Parameters
    ----------
    graph:
        Connected undirected starting graph (mutated in place).
    rng:
        Seed or :class:`numpy.random.Generator`.
    semantics:
        Synchronous (default, the paper's model) or sequential updates.
    without_replacement:
        Ablation flag: when True and a node has at least two neighbours,
        the two introduced neighbours are drawn *without* replacement, so a
        node never wastes a round introducing a neighbour to itself.  The
        paper's process uses with-replacement sampling (default False).
    backend:
        Optional graph backend selector (``"list"`` or ``"array"``); see
        :class:`DiscoveryProcess`.
    """

    #: a push round sends each chosen neighbour the other's ID.
    MESSAGES_PER_NODE = 2

    def __init__(
        self,
        graph: DynamicGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        without_replacement: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        if getattr(graph, "directed", True):
            raise TypeError("PushDiscovery requires an undirected graph (DynamicGraph or ArrayGraph)")
        super().__init__(graph, rng, semantics, backend=backend)
        self.without_replacement = without_replacement

    def propose(self, node: int) -> Optional[Tuple[int, int]]:
        """Sample the pair of neighbours that ``node`` introduces this round."""
        nbrs = self.graph.neighbors(node)
        k = len(nbrs)
        if k == 0:
            return None
        if self.without_replacement and k >= 2:
            i = int(self.rng.integers(k))
            j = int(self.rng.integers(k - 1))
            if j >= i:
                j += 1
            return nbrs[i], nbrs[j]
        v, w = self.graph.random_neighbor_pair(node, self.rng)
        if v == w:
            # Introducing a neighbour to itself adds nothing; still counts
            # as the node's action (and its messages) for this round.
            return None
        return v, w

    def propose_batch(self, nodes: Iterable[int]):
        """Vectorized push round: all nodes' neighbour pairs in two bulk draws."""
        if (
            not self._propose_is(PushDiscovery)
            or not self._default_accounting()
            or not hasattr(self.graph, "random_neighbors")
        ):
            return super().propose_batch(nodes)
        return self._propose_batch_kernel(nodes)

    def _propose_batch_kernel(self, nodes: Iterable[int]) -> BatchProposals:
        """The raw kernel, draw-stream-identical on every backend.

        With replacement (the paper's process): one ``rng.random(m)`` per
        introduced endpoint, mapped to indices by the shared sampling rule.
        Without replacement: two bulk draws over ``k`` and ``k - 1`` slots
        with the collision-shift, so no draw is wasted on ``v == w``.
        """
        graph = self.graph
        nodes = np.asarray(nodes, dtype=np.int64)
        if self.without_replacement:
            u = self.rng.random((2, nodes.shape[0]))
            deg = graph.degrees()[nodes]
            i = uniform_indices(u[0], deg)
            j = uniform_indices(u[1], deg - 1)
            j = np.where(j >= i, j + 1, j)
            vs = graph.neighbors_at(nodes, i)
            ws = graph.neighbors_at(nodes, np.where(deg >= 2, j, -1))
            valid = deg >= 2
        else:
            vs = graph.random_neighbors(nodes, self.rng)
            ws = graph.random_neighbors(nodes, self.rng)
            valid = (vs >= 0) & (vs != ws)
        pos = np.flatnonzero(valid)
        return BatchProposals(nodes.shape[0], vs[pos], ws[pos], pos)

    def is_converged(self) -> bool:
        """The absorbing state of the undirected processes is the complete graph."""
        return self.graph.is_complete()
