"""Activation schedules: which nodes act in a round.

The paper's model activates *every* node in *every* round.  The conclusion
asks what happens when "only a subset of nodes participate in forming
connections"; this module provides pluggable activation schedules for that
study and for an asynchronous-style model where a random subset of expected
size one acts per tick (the classic way to compare synchronous round bounds
against asynchronous wall-clock bounds).

Schedules compose with any :class:`DiscoveryProcess` through
:class:`ScheduledProcess`, which overrides ``participating_nodes``.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.core.base import DiscoveryProcess, RoundResult

__all__ = [
    "ActivationSchedule",
    "FullActivation",
    "BernoulliActivation",
    "FixedSubsetActivation",
    "RoundRobinActivation",
    "PoissonLikeActivation",
    "ScheduledProcess",
]


class ActivationSchedule(abc.ABC):
    """Decides which nodes act in a given round."""

    @abc.abstractmethod
    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        """Return the node IDs that act in round ``round_index`` of an n-node process."""


class FullActivation(ActivationSchedule):
    """Every node acts every round — the paper's synchronous model."""

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        return range(n)


class BernoulliActivation(ActivationSchedule):
    """Each node independently acts with probability ``p`` each round."""

    def __init__(self, p: float) -> None:
        if not (0.0 < p <= 1.0):
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = p

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        mask = rng.random(n) < self.p
        return np.flatnonzero(mask).tolist()


class FixedSubsetActivation(ActivationSchedule):
    """Only a fixed subset of nodes ever acts (the rest are passive listeners).

    Node IDs are validated eagerly: negatives are rejected at construction,
    and IDs beyond the process's node count are rejected at first use.  An
    out-of-range ID is a configuration error — silently shrinking the
    active set would make a subset experiment measure something other than
    what was asked for.
    """

    def __init__(self, subset: Sequence[int]) -> None:
        subset = list(subset)
        if not subset:
            raise ValueError("the active subset must be non-empty")
        self.subset: List[int] = sorted(set(int(u) for u in subset))
        if self.subset[0] < 0:
            raise ValueError(f"active node ids must be non-negative, got {self.subset[0]}")

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        if self.subset[-1] >= n:
            raise ValueError(
                f"active subset contains node {self.subset[-1]}, but the process "
                f"has only {n} nodes (valid ids are 0..{n - 1})"
            )
        return list(self.subset)


class RoundRobinActivation(ActivationSchedule):
    """Exactly one node acts per tick, cycling through node IDs in order.

    ``n`` ticks of this schedule perform the same amount of work as one
    synchronous round, so convergence tick-counts divided by ``n`` are
    directly comparable with the paper's round bounds.
    """

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        return [round_index % n]


class PoissonLikeActivation(ActivationSchedule):
    """One uniformly random node acts per tick (asynchronous-style activation)."""

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        return [int(rng.integers(n))]


class ScheduledProcess:
    """Wrap a process so its per-round participation follows a schedule.

    The wrapper monkey-patches ``participating_nodes`` on the wrapped
    process instance; everything else (stepping, convergence, metrics)
    passes through untouched, so the wrapped process can be used with the
    normal run loop and the experiment harness.

    The wrapper is a full stand-in for the process: ``rng``,
    ``round_index``, the running totals, ``metrics`` and the degree-cache
    accessors all pass through, so recorders and the experiment harness
    never need to reach into ``.process``.  Rounds executed through the
    wrapper (``step`` or ``run``) are additionally collected in
    :attr:`history`.
    """

    def __init__(self, process: DiscoveryProcess, schedule: ActivationSchedule) -> None:
        if not isinstance(process, DiscoveryProcess):
            # Only the base round machinery consults participating_nodes();
            # patching it onto another wrapper (e.g. a ShardedProcess, whose
            # multi-shard rounds assume full activation) would be a silent
            # no-op — the exact failure mode this module exists to prevent.
            raise TypeError(
                f"ScheduledProcess wraps DiscoveryProcess instances, got "
                f"{type(process).__name__}; apply the schedule to the inner process"
            )
        self.process = process
        self.schedule = schedule
        #: per-round results of every round executed through this wrapper.
        self.history: List[RoundResult] = []
        self._install()

    def _install(self) -> None:
        process = self.process
        schedule = self.schedule

        def participating_nodes() -> Iterable[int]:
            return schedule.active_nodes(process.graph.n, process.round_index, process.rng)

        process.participating_nodes = participating_nodes  # type: ignore[method-assign]

    # Pass-through conveniences so the wrapper can be used like a process.
    def step(self):
        """Execute one scheduled round."""
        result = self.process.step()
        self.history.append(result)
        return result

    def run(self, max_rounds, until=None, record_history=False, callbacks=()):
        """Run the wrapped process with the schedule applied."""
        callbacks = list(callbacks)
        callbacks.append(lambda _process, result: self.history.append(result))
        return self.process.run(
            max_rounds, until=until, record_history=record_history, callbacks=callbacks
        )

    def run_to_convergence(self, max_rounds=None, record_history=False, callbacks=()):
        """Run the wrapped process to convergence with the schedule applied."""
        callbacks = list(callbacks)
        callbacks.append(lambda _process, result: self.history.append(result))
        return self.process.run_to_convergence(
            max_rounds=max_rounds, record_history=record_history, callbacks=callbacks
        )

    def is_converged(self) -> bool:
        """Delegate to the wrapped process."""
        return self.process.is_converged()

    def degree_view(self):
        """The wrapped process's incremental degree cache (for recorders)."""
        return self.process.degree_view()

    def cached_min_degree(self) -> int:
        """The wrapped process's incremental minimum degree."""
        return self.process.cached_min_degree()

    @property
    def graph(self):
        """The wrapped process's graph."""
        return self.process.graph

    @property
    def rng(self) -> np.random.Generator:
        """The wrapped process's generator (schedules and proposals share it)."""
        return self.process.rng

    @property
    def round_index(self) -> int:
        """Rounds executed so far by the wrapped process."""
        return self.process.round_index

    @property
    def backend(self) -> str:
        """The wrapped process's graph backend name."""
        return self.process.backend

    @property
    def semantics(self):
        """The wrapped process's update semantics."""
        return self.process.semantics

    @property
    def total_edges_added(self) -> int:
        """Total new edges created by the wrapped process."""
        return self.process.total_edges_added

    @property
    def total_messages(self) -> int:
        """Total protocol messages sent by the wrapped process."""
        return self.process.total_messages

    @property
    def total_bits(self) -> int:
        """Total payload bits sent by the wrapped process."""
        return self.process.total_bits

    @property
    def metrics(self) -> dict:
        """Running totals of the wrapped process as one dict."""
        return {
            "rounds": self.process.round_index,
            "edges_added": self.process.total_edges_added,
            "messages": self.process.total_messages,
            "bits": self.process.total_bits,
        }
