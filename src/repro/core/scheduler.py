"""Activation schedules: which nodes act in a round.

The paper's model activates *every* node in *every* round.  The conclusion
asks what happens when "only a subset of nodes participate in forming
connections"; this module provides pluggable activation schedules for that
study and for an asynchronous-style model where a random subset of expected
size one acts per tick (the classic way to compare synchronous round bounds
against asynchronous wall-clock bounds).

Schedules compose with any :class:`DiscoveryProcess` through
:class:`ScheduledProcess`, which overrides ``participating_nodes``.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.core.base import DiscoveryProcess

__all__ = [
    "ActivationSchedule",
    "FullActivation",
    "BernoulliActivation",
    "FixedSubsetActivation",
    "RoundRobinActivation",
    "PoissonLikeActivation",
    "ScheduledProcess",
]


class ActivationSchedule(abc.ABC):
    """Decides which nodes act in a given round."""

    @abc.abstractmethod
    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        """Return the node IDs that act in round ``round_index`` of an n-node process."""


class FullActivation(ActivationSchedule):
    """Every node acts every round — the paper's synchronous model."""

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        return range(n)


class BernoulliActivation(ActivationSchedule):
    """Each node independently acts with probability ``p`` each round."""

    def __init__(self, p: float) -> None:
        if not (0.0 < p <= 1.0):
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = p

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        mask = rng.random(n) < self.p
        return np.flatnonzero(mask).tolist()


class FixedSubsetActivation(ActivationSchedule):
    """Only a fixed subset of nodes ever acts (the rest are passive listeners)."""

    def __init__(self, subset: Sequence[int]) -> None:
        if not subset:
            raise ValueError("the active subset must be non-empty")
        self.subset: List[int] = sorted(set(int(u) for u in subset))

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        return [u for u in self.subset if u < n]


class RoundRobinActivation(ActivationSchedule):
    """Exactly one node acts per tick, cycling through node IDs in order.

    ``n`` ticks of this schedule perform the same amount of work as one
    synchronous round, so convergence tick-counts divided by ``n`` are
    directly comparable with the paper's round bounds.
    """

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        return [round_index % n]


class PoissonLikeActivation(ActivationSchedule):
    """One uniformly random node acts per tick (asynchronous-style activation)."""

    def active_nodes(self, n: int, round_index: int, rng: np.random.Generator) -> Iterable[int]:
        return [int(rng.integers(n))]


class ScheduledProcess:
    """Wrap a process so its per-round participation follows a schedule.

    The wrapper monkey-patches ``participating_nodes`` on the wrapped
    process instance; everything else (stepping, convergence, metrics)
    passes through untouched, so the wrapped process can be used with the
    normal run loop and the experiment harness.
    """

    def __init__(self, process: DiscoveryProcess, schedule: ActivationSchedule) -> None:
        self.process = process
        self.schedule = schedule
        self._install()

    def _install(self) -> None:
        process = self.process
        schedule = self.schedule

        def participating_nodes() -> Iterable[int]:
            return schedule.active_nodes(process.graph.n, process.round_index, process.rng)

        process.participating_nodes = participating_nodes  # type: ignore[method-assign]

    # Pass-through conveniences so the wrapper can be used like a process.
    def step(self):
        """Execute one scheduled round."""
        return self.process.step()

    def run(self, *args, **kwargs):
        """Run the wrapped process with the schedule applied."""
        return self.process.run(*args, **kwargs)

    def run_to_convergence(self, *args, **kwargs):
        """Run the wrapped process to convergence with the schedule applied."""
        return self.process.run_to_convergence(*args, **kwargs)

    def is_converged(self) -> bool:
        """Delegate to the wrapped process."""
        return self.process.is_converged()

    @property
    def graph(self):
        """The wrapped process's graph."""
        return self.process.graph
