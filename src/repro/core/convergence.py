"""Reusable stopping predicates for :meth:`DiscoveryProcess.run`.

All predicates take the process and return a bool, so they compose with
the ``until=`` parameter of the run loop.  Factories return fresh
predicates configured with their thresholds.

The predicates are evaluated after *every* round, so they run on the
process's incrementally-maintained counters (edge counts are O(1) on the
graphs; minimum degree comes from
:meth:`~repro.core.base.DiscoveryProcess.cached_min_degree`, which is
patched per round instead of recomputed O(n²)-style from the graph).
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import DiscoveryProcess

__all__ = [
    "complete_graph_reached",
    "closure_reached",
    "min_degree_reached",
    "edge_count_reached",
    "rounds_elapsed",
    "any_of",
    "all_of",
]

Predicate = Callable[[DiscoveryProcess], bool]


def complete_graph_reached(process: DiscoveryProcess) -> bool:
    """True when the (undirected) graph has every possible edge.

    O(1): both graph backends maintain the edge count as a counter, so no
    membership scan happens per round.
    """
    graph = process.graph
    if not graph.directed:
        return graph.is_complete()
    # A digraph is "complete" when every ordered pair is present.
    return graph.number_of_edges() == graph.n * (graph.n - 1)


def closure_reached(process: DiscoveryProcess) -> bool:
    """True when a directed process has added its full target closure.

    Falls back to the process's own :meth:`is_converged` so it also works
    as a generic predicate.
    """
    return process.is_converged()


def min_degree_reached(threshold: int) -> Predicate:
    """Factory: stop once the minimum degree reaches ``threshold``.

    This is the quantity the paper's proof engine tracks (the minimum
    degree grows by a constant factor every O(n log n) rounds); experiment
    E8 uses it to measure growth phases.  Reads the process's incremental
    degree cache — no per-round degree-vector copy.
    """

    def predicate(process: DiscoveryProcess) -> bool:
        cached = getattr(process, "cached_min_degree", None)
        if cached is not None:
            return cached() >= threshold
        graph = process.graph
        if not graph.directed:
            return graph.min_degree() >= threshold
        return int(graph.out_degrees().min()) >= threshold

    return predicate


def edge_count_reached(threshold: int) -> Predicate:
    """Factory: stop once the graph has at least ``threshold`` edges."""

    def predicate(process: DiscoveryProcess) -> bool:
        return process.graph.number_of_edges() >= threshold

    return predicate


def rounds_elapsed(threshold: int) -> Predicate:
    """Factory: stop once the process has executed ``threshold`` rounds in total."""

    def predicate(process: DiscoveryProcess) -> bool:
        return process.round_index >= threshold

    return predicate


def any_of(*predicates: Predicate) -> Predicate:
    """Combine predicates with logical OR."""

    def predicate(process: DiscoveryProcess) -> bool:
        return any(p(process) for p in predicates)

    return predicate


def all_of(*predicates: Predicate) -> Predicate:
    """Combine predicates with logical AND."""

    def predicate(process: DiscoveryProcess) -> bool:
        return all(p(process) for p in predicates)

    return predicate
