"""The Random Pointer Jump algorithm (referenced in the paper's §5).

"Each node gets to know all the neighbors of a random neighbor in each
step": node ``u`` picks a uniformly random (out-)neighbour ``v`` and copies
``v``'s entire (out-)neighbour list into its own.  Like Name Dropper the
messages are Θ(n) IDs in the worst case, and on directed graphs the
Harchol-Balter et al. example gives it an Ω(n) round lower bound.

We provide both the directed form (the one discussed in the paper, used
as a baseline for the directed two-hop walk experiments) and an undirected
form for the undirected comparison sweep.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.base import DiscoveryProcess, RoundResult, UpdateSemantics
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.closure import transitive_closure_edges

__all__ = ["RandomPointerJump"]


class RandomPointerJump(DiscoveryProcess):
    """Random Pointer Jump on an undirected or directed graph.

    * Undirected graph: ``u`` learns (connects to) every current neighbour
      of a random neighbour ``v``; converges to the complete graph.
    * Directed graph: ``u`` adds out-edges to all out-neighbours of a random
      out-neighbour ``v``; converges to the transitive closure of ``G_0``.
    """

    MESSAGES_PER_NODE = 1

    def __init__(
        self,
        graph: Union[DynamicGraph, DynamicDiGraph],
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    ) -> None:
        super().__init__(graph, rng, semantics)
        # Flag-based so the array-backend graphs classify correctly too.
        self._directed = bool(getattr(graph, "directed", False))
        if self._directed:
            closure = transitive_closure_edges(graph)
            self._missing = {e for e in closure if not graph.has_edge(*e)}
        else:
            self._missing = None

    def propose(self, node: int) -> Optional[Tuple[int, int]]:  # pragma: no cover - unused
        raise NotImplementedError("RandomPointerJump overrides step() and never calls propose()")

    def _neighbors(self, u: int) -> List[int]:
        if self._directed:
            return list(self.graph.out_neighbors(u))
        return list(self.graph.neighbors(u))

    def step(self) -> RoundResult:
        """One synchronous Random Pointer Jump round."""
        result = RoundResult(round_index=self.round_index)
        actions: List[Tuple[int, int, List[int]]] = []
        for u in self.graph.nodes():
            nbrs = self._neighbors(u)
            if not nbrs:
                continue
            v = nbrs[int(self.rng.integers(len(nbrs)))]
            payload = self._neighbors(v)
            actions.append((u, v, payload))
        for u, v, payload in actions:
            result.messages_sent += 2  # request + bulk reply
            result.bits_sent += (1 + len(payload)) * self._id_bits
            for w in payload:
                if w == u:
                    continue
                result.proposed_edges.append((u, w))
                added = self.graph.add_edge(u, w)
                if added:
                    result.added_edges.append((u, w))
                    if self._missing is not None:
                        self._missing.discard((u, w))
        self.round_index += 1
        self.total_edges_added += result.num_added
        self.total_messages += result.messages_sent
        self.total_bits += result.bits_sent
        return result

    def is_converged(self) -> bool:
        """Complete graph (undirected) or transitive closure (directed)."""
        if self._directed:
            return not self._missing
        return self.graph.is_complete()

    def default_round_cap(self) -> int:
        """Pointer jump is Ω(n) on bad directed instances; cap at a large multiple of n log n."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(40 * n * log_n) + 100
