"""The Random Pointer Jump algorithm (referenced in the paper's §5).

"Each node gets to know all the neighbors of a random neighbor in each
step": node ``u`` picks a uniformly random (out-)neighbour ``v`` and copies
``v``'s entire (out-)neighbour list into its own.  Like Name Dropper the
messages are Θ(n) IDs in the worst case, and on directed graphs the
Harchol-Balter et al. example gives it an Ω(n) round lower bound.

We provide both the directed form (the one discussed in the paper, used
as a baseline for the directed two-hop walk experiments) and an undirected
form for the undirected comparison sweep.  Both forms are
backend-agnostic: the list backend runs the per-node reference loop, the
array backend expands every pulled payload — the chosen neighbour's whole
row — from the padded (out-)neighbour block in one gather and applies the
round through the graph's batched row-union insert, with degree sums
feeding the ``messages_sent``/``bits_sent`` accounting.

Trace contract: synchronous rounds draw one bulk ``rng.random(n)`` per
round (the shared backend draw convention), sequential rounds one
``rng.integers`` per active node; payloads are snapshotted against the
round-start graph, so seeded traces are identical across backends.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.baselines._packed import active_nodes_array, concat_rows, packed_rows
from repro.core.base import BatchProposals, DiscoveryProcess, RoundResult, UpdateSemantics
from repro.graphs.array_adjacency import as_backend
from repro.graphs.closure import transitive_closure_edges

__all__ = ["RandomPointerJump"]


class RandomPointerJump(DiscoveryProcess):
    """Random Pointer Jump on an undirected or directed graph.

    * Undirected graph: ``u`` learns (connects to) every current neighbour
      of a random neighbour ``v``; converges to the complete graph.
    * Directed graph: ``u`` adds out-edges to all out-neighbours of a random
      out-neighbour ``v``; converges to the transitive closure of ``G_0``.
    """

    MESSAGES_PER_NODE = 1

    def __init__(
        self,
        graph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        backend: Optional[str] = None,
    ) -> None:
        if backend is not None:
            graph = as_backend(graph, backend)
        super().__init__(graph, rng, semantics)
        # Flag-based so the array-backend graphs classify correctly too.
        self._directed = bool(getattr(graph, "directed", False))
        if self._directed:
            closure = transitive_closure_edges(graph)
            self._missing = {e for e in closure if not graph.has_edge(*e)}
        else:
            self._missing = None

    def propose(self, node: int) -> Optional[Tuple[int, int]]:  # pragma: no cover - unused
        raise NotImplementedError("RandomPointerJump overrides step() and never calls propose()")

    def _neighbors(self, u: int) -> List[int]:
        if self._directed:
            return list(self.graph.out_neighbors(u))
        return list(self.graph.neighbors(u))

    def _bulk_targets(self, nodes: np.ndarray) -> np.ndarray:
        """One bulk uniform (out-)neighbour draw for the whole round."""
        if self._directed:
            return self.graph.random_out_neighbors(nodes, self.rng)
        return self.graph.random_neighbors(nodes, self.rng)

    def step(self) -> RoundResult:
        """One Random Pointer Jump round under the configured update semantics."""
        result = RoundResult(round_index=self.round_index)
        active = active_nodes_array(self)
        if self.semantics is UpdateSemantics.SEQUENTIAL:
            self._sequential_round(result, active)
        else:
            packed = packed_rows(self.graph)
            if packed is not None:
                self._packed_round(result, active, *packed)
            else:
                self._reference_round(result, active)
        self.round_index += 1
        self.total_edges_added += result.num_added
        self.total_messages += result.messages_sent
        self.total_bits += result.bits_sent
        return result

    def _scalar_target(self, u: int) -> Optional[int]:
        """One ``rng.integers`` draw for the sequential per-node path."""
        nbrs = self._neighbors(u)
        if not nbrs:
            return None
        return nbrs[int(self.rng.integers(len(nbrs)))]

    def _sequential_round(self, result: RoundResult, active: np.ndarray) -> None:
        """Sequential ablation: participating nodes act in order on the evolving graph."""
        for u in active.tolist():
            v = self._scalar_target(u)
            if v is None:
                continue
            self._apply_action(u, self._neighbors(v), result)
        self._note_added_edges(result.added_edges)

    def _reference_round(self, result: RoundResult, active: np.ndarray) -> None:
        """Synchronous reference round: snapshot payloads, then apply in node order.

        One uniform per *participating* node, matching the packed round's
        draw stream for any activation schedule.
        """
        graph = self.graph
        targets = self._bulk_targets(active)
        actions: List[Tuple[int, List[int]]] = []
        for k, u in enumerate(active.tolist()):
            v = int(targets[k])
            if v < 0:
                continue
            actions.append((u, self._neighbors(v)))
        for u, payload in actions:
            self._apply_action(u, payload, result)
        self._note_added_edges(result.added_edges)

    def _packed_round(
        self,
        result: RoundResult,
        active: np.ndarray,
        rows: np.ndarray,
        deg: np.ndarray,
        bits: np.ndarray,
    ) -> None:
        """Synchronous packed round: gather every pulled row in one expansion.

        The pulled payloads are the chosen neighbours' padded rows,
        flattened in participating-node order, so the batched insert
        reproduces the reference path's first-occurrence edge order exactly
        and neighbour rows stay aligned across backends.
        """
        graph = self.graph
        targets = self._bulk_targets(active)
        valid = targets >= 0
        pullers = active[valid]
        result.messages_sent = 2 * int(pullers.size)  # request + bulk reply each
        chosen = targets[valid]
        counts = deg[chosen]
        result.bits_sent = int((1 + counts).sum()) * self._id_bits
        if pullers.size == 0:
            return
        payload = concat_rows(rows, deg, chosen)
        learners = np.repeat(pullers, counts)
        keep = learners != payload
        learners, payload = learners[keep], payload[keep]
        result.attach_batch(
            BatchProposals(
                int(pullers.size),
                learners,
                payload,
                np.repeat(np.arange(pullers.size, dtype=np.int64), counts)[keep],
            )
        )
        added = graph.add_edges_batch_arrays(learners, payload)
        result.added_edges = added
        self._absorb_added(added)
        self._note_added_edges(added)

    def _absorb_added(self, added: List[Tuple[int, int]]) -> None:
        """Keep the directed closure-deficit set current for a batch of new edges.

        Shared by the packed round and the sharded merge (which applies the
        round's edges itself and then hands the new ones here).
        """
        if self._missing is not None and added:
            self._missing.difference_update(added)

    def _apply_action(self, u: int, payload: List[int], result: RoundResult) -> None:
        result.messages_sent += 2  # request + bulk reply
        result.bits_sent += (1 + len(payload)) * self._id_bits
        for w in payload:
            if w == u:
                continue
            result.proposed_edges.append((u, w))
            added = self.graph.add_edge(u, w)
            if added:
                result.added_edges.append((u, w))
                if self._missing is not None:
                    self._missing.discard((u, w))

    def is_converged(self) -> bool:
        """Complete graph (undirected) or transitive closure (directed)."""
        if self._directed:
            return not self._missing
        return self.graph.is_complete()

    def default_round_cap(self) -> int:
        """Pointer jump is Ω(n) on bad directed instances; cap at a large multiple of n log n."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(40 * n * log_n) + 100
