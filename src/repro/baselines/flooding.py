"""Deterministic neighbourhood flooding — the round-optimal, bandwidth-hungry extreme.

Each round every node sends its *entire* known set to *all* of its current
neighbours, and everybody merges everything they receive.  Knowledge
squares the reachable radius every round, so the process completes in
⌈log₂ diameter⌉ + O(1) rounds — the fewest rounds any local algorithm can
hope for — but the per-round traffic is Θ(n · m) IDs.  It anchors the
"rounds vs bits" trade-off plot of experiment E10.

Backend-agnostic: the list backend runs the per-node reference loop
(snapshot every knowledge set, deliver payload by payload), while the
array backend runs the whole round as **one pass of row unions** on the
word-packed membership rows: node ``v``'s new row is the OR of its
neighbours' round-start rows (:func:`repro.graphs.bitset.rows_or_into`),
the genuinely new edges fall out of the popcount delta
(:func:`repro.graphs.bitset.delta_edges`), and degree sums feed
``messages_sent``/``bits_sent``.  Flooding draws no randomness, so both
paths add the identical per-round edge sets; the packed round discovers
them in canonical rather than scan order and does not materialise the
Θ(n · m) ``proposed_edges`` list (its ``added_edges`` and accounting are
exact).

Flooding is deterministic and purely synchronous: the round is computed
against the round-start snapshot regardless of the ``semantics`` setting
(matching the historical behaviour of this module).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.baselines._packed import (
    active_nodes_array,
    concat_rows,
    packed_rows,
    require_undirected,
)
from repro.core.base import DiscoveryProcess, RoundResult, UpdateSemantics
from repro.graphs import bitset
from repro.graphs.array_adjacency import as_backend

__all__ = ["NeighborhoodFlooding"]


class NeighborhoodFlooding(DiscoveryProcess):
    """Full-neighbourhood flooding on an undirected graph."""

    MESSAGES_PER_NODE = 1  # nominal; real accounting happens in step()

    def __init__(
        self,
        graph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        backend: Optional[str] = None,
    ) -> None:
        if backend is not None:
            graph = as_backend(graph, backend)
        require_undirected(graph, "NeighborhoodFlooding")
        super().__init__(graph, rng, semantics)

    def propose(self, node: int) -> Optional[Tuple[int, int]]:  # pragma: no cover - unused
        raise NotImplementedError("NeighborhoodFlooding overrides step() and never calls propose()")

    def step(self) -> RoundResult:
        """One synchronous flooding round restricted to the participating nodes."""
        result = RoundResult(round_index=self.round_index)
        active = active_nodes_array(self)
        packed = packed_rows(self.graph)
        if packed is not None:
            self._packed_round(result, active, *packed)
        else:
            self._reference_round(result, active)
        self.round_index += 1
        self.total_edges_added += result.num_added
        self.total_messages += result.messages_sent
        self.total_bits += result.bits_sent
        return result

    def _reference_round(self, result: RoundResult, active: np.ndarray) -> None:
        """Per-node reference round: snapshot all knowledge, deliver payload by payload.

        Only the participating nodes *send* this round; everybody can still
        receive (passive nodes are listeners, as in the scheduler model).
        """
        graph = self.graph
        senders = [int(u) for u in active]
        knowledge: List[List[int]] = [list(graph.neighbors(u)) + [u] for u in senders]
        recipients: List[List[int]] = [list(graph.neighbors(u)) for u in senders]
        for payload, targets in zip(knowledge, recipients):
            for v in targets:
                result.messages_sent += 1
                result.bits_sent += len(payload) * self._id_bits
                for w in payload:
                    if w == v:
                        continue
                    result.proposed_edges.append((v, w))
                    if graph.add_edge(v, w):
                        result.added_edges.append((v, w))
        self._note_added_edges(result.added_edges)

    def _packed_round(
        self,
        result: RoundResult,
        active: np.ndarray,
        rows: np.ndarray,
        deg: np.ndarray,
        bits: np.ndarray,
    ) -> None:
        """One pass of row unions on the packed membership rows.

        Each participating sender ``u`` delivers its round-start row to
        every neighbour ``v``; a sender's own ID bit is already present in
        the recipient's row, so the neighbour-row union *is* the whole
        merge.  The scatter runs over the flattened neighbour block of the
        active senders (one row-OR per delivered message) and the new edges
        are the popcount delta between the old and unioned rows.  New bits
        always arrive in symmetric pairs (both endpoints of a new edge are
        recipients of the same sender), so the undirected delta extraction
        is exact.
        """
        graph = self.graph
        n = graph.n
        senders = active[deg[active] > 0]
        counts = deg[senders]
        # Each active node sends its (deg+1)-ID knowledge set to every neighbour.
        result.messages_sent = int(counts.sum())
        result.bits_sent = int((counts * (counts + 1)).sum()) * self._id_bits
        if senders.size == 0:
            return
        recipients = concat_rows(rows, deg, senders)
        merged = bits.copy()
        bitset.rows_or_into(merged, recipients, bits, np.repeat(senders, counts))
        nodes = np.arange(n, dtype=np.int64)
        bitset.clear_bits(merged, nodes, nodes)  # no self-knowledge edges
        us, vs = bitset.delta_edges(bits, merged, n)
        result.added_edges = graph.add_edges_batch_arrays(us, vs)
        self._note_added_edges(result.added_edges)

    def is_converged(self) -> bool:
        """Flooding also converges to the complete graph."""
        return self.graph.is_complete()

    def default_round_cap(self) -> int:
        """Flooding needs only O(log n) rounds; cap generously above that."""
        n = max(self.graph.n, 2)
        return int(20 * (np.log2(n) + 1)) + 20
