"""Deterministic neighbourhood flooding — the round-optimal, bandwidth-hungry extreme.

Each round every node sends its *entire* known set to *all* of its current
neighbours, and everybody merges everything they receive.  Knowledge
squares the reachable radius every round, so the process completes in
⌈log₂ diameter⌉ + O(1) rounds — the fewest rounds any local algorithm can
hope for — but the per-round traffic is Θ(n · m) IDs.  It anchors the
"rounds vs bits" trade-off plot of experiment E10.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.base import DiscoveryProcess, RoundResult, UpdateSemantics
from repro.graphs.adjacency import DynamicGraph

__all__ = ["NeighborhoodFlooding"]


class NeighborhoodFlooding(DiscoveryProcess):
    """Full-neighbourhood flooding on an undirected graph."""

    MESSAGES_PER_NODE = 1  # nominal; real accounting happens in step()

    def __init__(
        self,
        graph: DynamicGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    ) -> None:
        if not isinstance(graph, DynamicGraph):
            raise TypeError("NeighborhoodFlooding requires an undirected DynamicGraph")
        super().__init__(graph, rng, semantics)

    def propose(self, node: int) -> Optional[Tuple[int, int]]:  # pragma: no cover - unused
        raise NotImplementedError("NeighborhoodFlooding overrides step() and never calls propose()")

    def step(self) -> RoundResult:
        """One synchronous flooding round."""
        result = RoundResult(round_index=self.round_index)
        # Snapshot every node's knowledge (its neighbour set plus itself) first.
        knowledge: List[List[int]] = [list(self.graph.neighbors(u)) + [u] for u in self.graph.nodes()]
        recipients: List[List[int]] = [list(self.graph.neighbors(u)) for u in self.graph.nodes()]
        for u in self.graph.nodes():
            payload = knowledge[u]
            for v in recipients[u]:
                result.messages_sent += 1
                result.bits_sent += len(payload) * self._id_bits
                for w in payload:
                    if w == v:
                        continue
                    result.proposed_edges.append((v, w))
                    if self.graph.add_edge(v, w):
                        result.added_edges.append((v, w))
        self.round_index += 1
        self.total_edges_added += result.num_added
        self.total_messages += result.messages_sent
        self.total_bits += result.bits_sent
        return result

    def is_converged(self) -> bool:
        """Flooding also converges to the complete graph."""
        return self.graph.is_complete()

    def default_round_cap(self) -> int:
        """Flooding needs only O(log n) rounds; cap generously above that."""
        n = max(self.graph.n, 2)
        return int(20 * (np.log2(n) + 1)) + 20
