"""Baseline resource-discovery algorithms the paper compares against.

These are the prior-work algorithms referenced in §1: they complete in a
polylogarithmic number of rounds but send Θ(n)-size messages, whereas the
paper's gossip processes use O(log n)-bit messages and pay with more
rounds.  Experiment E10 measures both axes (rounds and total bits).
"""

from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.baselines.flooding import NeighborhoodFlooding

__all__ = ["NameDropper", "RandomPointerJump", "NeighborhoodFlooding"]
