"""Shared backend plumbing for the baseline processes.

The baselines (Name Dropper, Random Pointer Jump, neighbourhood flooding)
ship whole neighbour sets per message, so their rounds are set-union work
rather than the single-edge proposals of the gossip processes.  This
module holds what all three share:

* :func:`require_undirected` — the capability check that replaced the old
  ``isinstance(graph, DynamicGraph)`` guards, so any graph speaking the
  undirected neighbour/membership protocol (list- or array-backed) is
  accepted;
* :func:`packed_rows` — the fast-path gate: graphs exposing padded
  neighbour rows plus word-packed membership rows (``ArrayGraph`` /
  ``ArrayDiGraph``) get the vectorized round kernels;
* :func:`concat_rows` / :func:`rows_with_self` — vectorized payload
  expansion: flatten the per-node neighbour rows of a selection of nodes
  into one index array, preserving per-row insertion order exactly, which
  is what keeps packed rounds trace-identical to the per-node reference
  loops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "require_undirected",
    "supports_undirected",
    "packed_rows",
    "concat_rows",
    "rows_with_self",
    "active_nodes_array",
]

#: the methods every undirected baseline substrate must provide.
UNDIRECTED_PROTOCOL = ("neighbors", "random_neighbors", "add_edge", "has_edge", "is_complete")


def supports_undirected(graph) -> bool:
    """True when ``graph`` speaks the undirected neighbour/membership protocol.

    Capability-based: both :class:`~repro.graphs.adjacency.DynamicGraph`
    and :class:`~repro.graphs.array_adjacency.ArrayGraph` qualify; directed
    graphs and arbitrary objects do not.  This predicate (not an
    ``isinstance`` check against one backend class) is what recorders and
    simulators must gate on — a stale ``isinstance(graph, DynamicGraph)``
    guard silently no-ops on the array backend.
    """
    if getattr(graph, "directed", True):
        return False
    return all(callable(getattr(graph, name, None)) for name in UNDIRECTED_PROTOCOL)


def require_undirected(graph, who: str) -> None:
    """Raise ``TypeError`` unless ``graph`` is an undirected neighbour-protocol graph.

    The raising form of :func:`supports_undirected`, with a message naming
    the missing capabilities.
    """
    if getattr(graph, "directed", True):
        raise TypeError(f"{who} requires an undirected graph, got {type(graph).__name__}")
    missing = [name for name in UNDIRECTED_PROTOCOL if not callable(getattr(graph, name, None))]
    if missing:
        raise TypeError(
            f"{who} requires the undirected neighbour/membership protocol; "
            f"{type(graph).__name__} is missing {missing}"
        )


def packed_rows(graph) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Return ``(rows, degrees, bits)`` live views when ``graph`` supports them.

    ``None`` means the graph has no packed substrate and the caller should
    take its per-node reference path.  Works for both graph kinds: the
    undirected neighbour block or the directed out-neighbour block.
    """
    rows_fn = getattr(graph, "neighbor_rows", None) or getattr(graph, "out_neighbor_rows", None)
    bits_fn = getattr(graph, "adjacency_bits", None)
    if rows_fn is None or bits_fn is None:
        return None
    rows, deg = rows_fn()
    return rows, deg, bits_fn()


def active_nodes_array(process) -> np.ndarray:
    """The round's participating nodes as an ``int64`` array, order preserved.

    The baselines override ``step()`` wholesale, so they must consult
    ``participating_nodes()`` themselves — this is what makes activation
    schedules (:mod:`repro.core.scheduler`) restrict baseline work instead
    of being a silent no-op.  Under the default full activation the result
    is ``arange(n)`` and every bulk draw below is unchanged, which keeps
    the golden traces byte-identical.
    """
    active = process.participating_nodes()
    if isinstance(active, range):
        return np.arange(active.start, active.stop, active.step or 1, dtype=np.int64)
    if isinstance(active, np.ndarray):
        return active.astype(np.int64, copy=False)
    return np.asarray(list(active), dtype=np.int64).reshape(-1)


def concat_rows(rows: np.ndarray, deg: np.ndarray, sel: np.ndarray) -> np.ndarray:
    """Concatenate ``rows[s, :deg[s]]`` over ``s`` in ``sel``, in order.

    Vectorized equivalent of
    ``[w for s in sel for w in rows[s, :deg[s]]]`` — per-row insertion
    order is preserved, which the trace contract depends on.
    """
    sel = np.asarray(sel, dtype=np.int64)
    if sel.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = deg[sel]
    width = int(counts.max())
    if width == 0:
        return np.empty(0, dtype=np.int64)
    cols = np.arange(width, dtype=np.int64)
    block = rows[sel[:, None], cols[None, :]]
    return block[cols[None, :] < counts[:, None]]


def rows_with_self(rows: np.ndarray, deg: np.ndarray, sel: np.ndarray) -> np.ndarray:
    """Concatenate ``rows[s, :deg[s]] + [s]`` over ``s`` in ``sel``, in order.

    The Name Dropper payload shape ("every ID I know, then my own"): the
    flattened result lists each selected node's neighbours in insertion
    order followed by the node itself.
    """
    sel = np.asarray(sel, dtype=np.int64)
    if sel.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = deg[sel]
    width = int(counts.max())
    block = np.empty((sel.size, width + 1), dtype=np.int64)
    if width:
        cols = np.arange(width, dtype=np.int64)
        block[:, :width] = rows[sel[:, None], cols[None, :]]
    block[np.arange(sel.size), counts] = sel
    mask = np.arange(width + 1, dtype=np.int64)[None, :] <= counts[:, None]
    return block[mask]
