"""The Name Dropper algorithm of Harchol-Balter, Leighton and Lewin (PODC 1999).

As described in the paper's introduction: "in each round, each node chooses
a random neighbor and sends all the IP addresses it knows".  The receiver
merges the sender's whole neighbour set into its own.  Name Dropper
converges in O(log² n) rounds but each message carries up to Θ(n) node IDs
— exactly the bandwidth cost the gossip processes avoid.

We implement it on the same :class:`DynamicGraph` substrate and with the
same round/metric interface as the gossip processes so the baselines plug
into the identical experiment harness.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.base import DiscoveryProcess, RoundResult, UpdateSemantics
from repro.graphs.adjacency import DynamicGraph

__all__ = ["NameDropper"]


class NameDropper(DiscoveryProcess):
    """Name Dropper: push your entire known set to one random neighbour per round.

    Knowledge is represented directly by the evolving graph: node ``u``
    "knows" exactly its current neighbours (plus itself).  When ``u``
    name-drops to ``v``, edges ``(v, w)`` are added for every ``w`` known to
    ``u`` (including ``(v, u)`` itself, which is already present).
    """

    MESSAGES_PER_NODE = 1

    def __init__(
        self,
        graph: DynamicGraph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    ) -> None:
        if not isinstance(graph, DynamicGraph):
            raise TypeError("NameDropper requires an undirected DynamicGraph")
        super().__init__(graph, rng, semantics)

    # The base-class single-edge propose/step machinery is replaced because a
    # Name Dropper round transfers a whole set; we override step() directly.
    def propose(self, node: int) -> Optional[Tuple[int, int]]:  # pragma: no cover - unused
        raise NotImplementedError("NameDropper overrides step() and never calls propose()")

    def step(self) -> RoundResult:
        """One synchronous Name Dropper round."""
        result = RoundResult(round_index=self.round_index)
        # Sample all targets and payloads against the round-start graph.
        actions: List[Tuple[int, int, List[int]]] = []
        for u in self.graph.nodes():
            nbrs = self.graph.neighbors(u)
            if not nbrs:
                continue
            v = self.graph.random_neighbor(u, self.rng)
            payload = list(nbrs) + [u]
            actions.append((u, v, payload))
        if self.semantics is UpdateSemantics.SEQUENTIAL:
            # Sequential mode re-samples payloads as the graph evolves inside the round.
            actions_iter = []
            for u in self.graph.nodes():
                nbrs = self.graph.neighbors(u)
                if not nbrs:
                    continue
                v = self.graph.random_neighbor(u, self.rng)
                payload = list(nbrs) + [u]
                actions_iter.append((u, v, payload))
                self._apply_action(u, v, payload, result)
        else:
            for u, v, payload in actions:
                self._apply_action(u, v, payload, result)
        self.round_index += 1
        self.total_edges_added += result.num_added
        self.total_messages += result.messages_sent
        self.total_bits += result.bits_sent
        return result

    def _apply_action(self, u: int, v: int, payload: List[int], result: RoundResult) -> None:
        result.messages_sent += 1
        result.bits_sent += len(payload) * self._id_bits
        for w in payload:
            if w == v:
                continue
            result.proposed_edges.append((v, w))
            if self.graph.add_edge(v, w):
                result.added_edges.append((v, w))

    def is_converged(self) -> bool:
        """Name Dropper also converges to the complete graph."""
        return self.graph.is_complete()

    def default_round_cap(self) -> int:
        """Name Dropper needs only O(log² n) rounds; cap generously above that."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(100 * log_n * log_n) + 50
