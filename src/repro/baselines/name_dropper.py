"""The Name Dropper algorithm of Harchol-Balter, Leighton and Lewin (PODC 1999).

As described in the paper's introduction: "in each round, each node chooses
a random neighbor and sends all the IP addresses it knows".  The receiver
merges the sender's whole neighbour set into its own.  Name Dropper
converges in O(log² n) rounds but each message carries up to Θ(n) node IDs
— exactly the bandwidth cost the gossip processes avoid.

The implementation is backend-agnostic with the same round/metric
interface as the gossip processes, so the baselines plug into the
identical experiment harness (``make_process``/``ExperimentSpec``/CLI
``--backend``):

* **list backend** — the per-node reference loop: one payload list per
  sender, one ``add_edge`` per delivered ID;
* **array backend** — the packed round: targets come from one bulk draw,
  all payloads are expanded from the padded neighbour-row block in one
  gather, and the whole round's deliveries go through the graph's batched
  edge insert.  A delivery merges the sender's bitset membership row into
  the recipient's, and popcount/degree deltas feed the
  ``messages_sent``/``bits_sent`` accounting.

Trace contract: synchronous rounds draw one bulk ``rng.random(n)`` per
round (the shared backend draw convention of
:mod:`repro.graphs.sampling`), and sequential rounds draw exactly one
``rng.integers`` per active node; both backends therefore produce
identical seeded traces (``tests/test_backend_equivalence.py``, goldens
under ``tests/data/``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.baselines._packed import (
    active_nodes_array,
    packed_rows,
    require_undirected,
    rows_with_self,
)
from repro.core.base import BatchProposals, DiscoveryProcess, RoundResult, UpdateSemantics
from repro.graphs.array_adjacency import as_backend

__all__ = ["NameDropper"]


class NameDropper(DiscoveryProcess):
    """Name Dropper: push your entire known set to one random neighbour per round.

    Knowledge is represented directly by the evolving graph: node ``u``
    "knows" exactly its current neighbours (plus itself).  When ``u``
    name-drops to ``v``, edges ``(v, w)`` are added for every ``w`` known to
    ``u`` (including ``(v, u)`` itself, which is already present).
    """

    MESSAGES_PER_NODE = 1

    def __init__(
        self,
        graph,
        rng: Union[np.random.Generator, int, None] = None,
        semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
        backend: Optional[str] = None,
    ) -> None:
        if backend is not None:
            graph = as_backend(graph, backend)
        require_undirected(graph, "NameDropper")
        super().__init__(graph, rng, semantics)

    # The base-class single-edge propose/step machinery is replaced because a
    # Name Dropper round transfers a whole set; we override step() directly.
    def propose(self, node: int) -> Optional[Tuple[int, int]]:  # pragma: no cover - unused
        raise NotImplementedError("NameDropper overrides step() and never calls propose()")

    def step(self) -> RoundResult:
        """One Name Dropper round under the configured update semantics."""
        result = RoundResult(round_index=self.round_index)
        active = active_nodes_array(self)
        if self.semantics is UpdateSemantics.SEQUENTIAL:
            self._sequential_round(result, active)
        else:
            packed = packed_rows(self.graph)
            if packed is not None:
                self._packed_round(result, active, *packed)
            else:
                self._reference_round(result, active)
        self.round_index += 1
        self.total_edges_added += result.num_added
        self.total_messages += result.messages_sent
        self.total_bits += result.bits_sent
        return result

    def _sequential_round(self, result: RoundResult, active: np.ndarray) -> None:
        """Sequential ablation: participating nodes act in order on the evolving graph.

        Each active node draws exactly one ``rng.integers`` for its target
        — the stream the trace contract pins.  (An earlier version
        pre-sampled a discarded synchronous pass first, consuming two draws
        per node; fixing that legitimately changed the sequential stream
        and the goldens were regenerated.)
        """
        for u in active.tolist():
            nbrs = self.graph.neighbors(u)
            if len(nbrs) == 0:
                continue
            v = self.graph.random_neighbor(u, self.rng)
            payload = list(nbrs) + [u]
            self._apply_action(u, v, payload, result)
        self._note_added_edges(result.added_edges)

    def _reference_round(self, result: RoundResult, active: np.ndarray) -> None:
        """Synchronous reference round: per-node payload loop, bulk target draw.

        One uniform per *participating* node — the packed round consumes the
        identical stream, so subset schedules stay trace-equivalent across
        backends.
        """
        graph = self.graph
        targets = graph.random_neighbors(active, self.rng)
        # Snapshot every payload against the round-start graph first.
        actions: List[Tuple[int, int, List[int]]] = []
        for k, u in enumerate(active.tolist()):
            v = int(targets[k])
            if v < 0:
                continue
            actions.append((u, v, list(graph.neighbors(u)) + [u]))
        for u, v, payload in actions:
            self._apply_action(u, v, payload, result)
        self._note_added_edges(result.added_edges)

    def _packed_round(
        self,
        result: RoundResult,
        active: np.ndarray,
        rows: np.ndarray,
        deg: np.ndarray,
        bits: np.ndarray,
    ) -> None:
        """Synchronous packed round on the array backend.

        Same bulk target draw as the reference round, then the whole
        round's payloads — each active sender's neighbour row plus itself —
        are expanded in one gather and delivered through the graph's batched
        row-union insert, preserving the reference path's first-occurrence
        edge order exactly (so neighbour rows, and hence future draws,
        stay aligned across backends).
        """
        graph = self.graph
        targets = graph.random_neighbors(active, self.rng)
        valid = targets >= 0
        senders = active[valid]
        result.messages_sent = int(senders.size)
        counts = deg[senders]
        result.bits_sent = int((counts + 1).sum()) * self._id_bits
        if senders.size == 0:
            return
        payload = rows_with_self(rows, deg, senders)
        recipients = np.repeat(targets[valid], counts + 1)
        keep = recipients != payload
        recipients, payload = recipients[keep], payload[keep]
        result.attach_batch(
            BatchProposals(
                int(senders.size),
                recipients,
                payload,
                np.repeat(np.arange(senders.size, dtype=np.int64), counts + 1)[keep],
            )
        )
        result.added_edges = graph.add_edges_batch_arrays(recipients, payload)
        self._note_added_edges(result.added_edges)

    def _apply_action(self, u: int, v: int, payload: List[int], result: RoundResult) -> None:
        result.messages_sent += 1
        result.bits_sent += len(payload) * self._id_bits
        for w in payload:
            if w == v:
                continue
            result.proposed_edges.append((v, w))
            if self.graph.add_edge(v, w):
                result.added_edges.append((v, w))

    def is_converged(self) -> bool:
        """Name Dropper also converges to the complete graph."""
        return self.graph.is_complete()

    def default_round_cap(self) -> int:
        """Name Dropper needs only O(log² n) rounds; cap generously above that."""
        n = max(self.graph.n, 2)
        log_n = float(np.log2(n)) + 1.0
        return int(100 * log_n * log_n) + 50
