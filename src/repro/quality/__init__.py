"""repro-lint: determinism & resource-safety static analysis.

Run it as ``python -m repro.quality [paths...]`` or via the CLI
subcommand ``repro-gossip lint``.  Library entry point:
:func:`run_lint`.  See ``docs/linting.md`` for the rule catalogue,
pragma syntax and the recipe for adding a checker.
"""

from repro.quality.framework import (
    CHECKER_REGISTRY,
    Checker,
    FileContext,
    Finding,
    lint_text,
    main,
    register_checker,
    run_lint,
)

__all__ = [
    "CHECKER_REGISTRY",
    "Checker",
    "FileContext",
    "Finding",
    "lint_text",
    "main",
    "register_checker",
    "run_lint",
]
