"""Built-in file-scope checkers for repro-lint.

Each checker closes one bug class that the reproduction's contracts
depend on (see ``docs/linting.md`` for the rule-by-rule rationale):

* ``determinism`` — every random draw must flow from an explicit seed.
* ``capability-guard`` — backend dispatch by capability, never by
  ``isinstance`` against a concrete graph class.
* ``exception-hygiene`` — no broad handler may swallow silently.
* ``atomic-write`` — result files go through ``io.atomic_write_*``.

The project-scope ``registry-consistency`` checker lives in
:mod:`repro.quality.registry_check`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, Optional, Set

from repro.quality.framework import (
    Checker,
    FileContext,
    Finding,
    _canonical_name,
    _import_aliases,
    register_checker,
)

__all__ = [
    "DeterminismChecker",
    "CapabilityGuardChecker",
    "ExceptionHygieneChecker",
    "AtomicWriteChecker",
]


# --------------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------------- #
#: stdlib ``random`` module functions that draw from (or reseed) the hidden
#: global Mersenne Twister state — any of these voids replayability.
_STDLIB_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "gammavariate",
        "betavariate",
        "paretovariate",
        "weibullvariate",
        "binomialvariate",
        "seed",
        "getrandbits",
        "randbytes",
    }
)

#: wall-clock reads: seeds or decisions derived from these differ run to run.
_WALL_CLOCK_FNS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_checker
class DeterminismChecker(Checker):
    """Ban entropy sources that bypass the explicit-seed discipline.

    Flags: unseeded ``np.random.default_rng()``, draws from numpy's global
    state (``np.random.<fn>(...)``), stdlib ``random.<fn>(...)`` draws, and
    wall-clock reads (``time.time``, ``datetime.now`` and friends).  All
    randomness must flow from a caller-provided seed or
    ``np.random.Generator`` so that traces replay draw for draw.
    """

    rule_id = "determinism"
    description = (
        "ban unseeded default_rng(), global np.random/random draws and "
        "wall-clock entropy sources"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _canonical_name(node.func, aliases)
            if name is None:
                continue
            if name == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "unseeded np.random.default_rng() — thread an explicit "
                        "seed/Generator through the caller (determinism contract)",
                    )
            elif name.startswith("numpy.random."):
                # Draw functions are lowercase (`random`, `shuffle`, `seed`);
                # the capitalized names (`Generator`, `SeedSequence`, bit
                # generators) are constructors over explicit seed material.
                tail = name[len("numpy.random.") :]
                if "." not in tail and tail != "default_rng" and tail.islower():
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"np.random.{tail}() draws from numpy's hidden global "
                        "state — use an explicit np.random.Generator",
                    )
            elif name.startswith("random."):
                tail = name[len("random.") :]
                if tail in _STDLIB_RANDOM_FNS:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"random.{tail}() uses the stdlib global RNG — use an "
                        "explicit np.random.Generator",
                    )
            elif name in _WALL_CLOCK_FNS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"{name}() is a wall-clock entropy source — seeds and "
                    "decisions must not depend on the clock",
                )


# --------------------------------------------------------------------------- #
# capability-guard
# --------------------------------------------------------------------------- #
@register_checker
class CapabilityGuardChecker(Checker):
    """Ban ``isinstance(..., DynamicGraph | DynamicDiGraph)`` dispatch.

    Such guards silently no-op on the array backend (the PR 5 recorder
    bug).  Code must branch on capabilities (``hasattr``/protocol methods)
    instead.  ``repro/graphs/`` itself — the layer that *implements* the
    backends — is exempt.
    """

    rule_id = "capability-guard"
    description = (
        "ban isinstance checks against concrete graph backends outside "
        "repro/graphs/ (use capability checks)"
    )

    GUARD_NAMES = frozenset({"DynamicGraph", "DynamicDiGraph"})

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        return not ("repro" in parts and "graphs" in parts)

    def _names_in(self, node: ast.AST) -> Set[str]:
        found: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                found.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                found.add(sub.attr)
        return found

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                guarded = self._names_in(node.args[1]) & self.GUARD_NAMES
                if guarded:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"isinstance against {sorted(guarded)} silently no-ops on "
                        "other backends — dispatch on capabilities instead",
                    )


# --------------------------------------------------------------------------- #
# exception-hygiene
# --------------------------------------------------------------------------- #
#: method names whose call counts as "the handler reported the failure"
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_BROAD_TYPES = frozenset({"Exception", "BaseException"})


@register_checker
class ExceptionHygieneChecker(Checker):
    """Flag bare/broad ``except`` handlers that swallow silently.

    A broad handler (bare, ``Exception`` or ``BaseException``) is fine when
    it re-raises, logs, or *uses* the bound exception (e.g. records it into
    a ``TrialResult``).  What it may not do is discard the failure with
    nothing observable — that is how lost shared-memory segments and
    silently-wrong sweeps happen.
    """

    rule_id = "exception-hygiene"
    description = (
        "flag bare/broad except handlers that neither re-raise, log, nor "
        "use the caught exception"
    )

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        for t in types:
            if isinstance(t, ast.Name) and t.id in _BROAD_TYPES:
                return True
            if isinstance(t, ast.Attribute) and t.attr in _BROAD_TYPES:
                return True
        return False

    def _handler_reports(self, handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if bound and isinstance(node, ast.Name) and node.id == bound:
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
                    return True
                if isinstance(func, ast.Attribute) and func.attr in {
                    "warn",
                    "print_exc",
                }:
                    return True  # warnings.warn / traceback.print_exc
        return False

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node) and not self._handler_reports(node):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"{caught} swallows the failure — re-raise, log, or handle "
                    "the bound exception explicitly",
                )


# --------------------------------------------------------------------------- #
# atomic-write
# --------------------------------------------------------------------------- #
_WRITE_MODE_CHARS = set("wax+")


def _is_write_mode(mode: str) -> bool:
    return bool(set(mode) & _WRITE_MODE_CHARS)


@register_checker
class AtomicWriteChecker(Checker):
    """Ban direct writable ``open()`` outside ``simulation/io.py``.

    A crash mid-``write`` leaves a torn result file that a resumed sweep
    will happily read.  All result persistence must go through
    ``repro.simulation.io.atomic_write_bytes/text`` (tempfile +
    ``os.replace``), so the writable-open primitives are confined to that
    module.
    """

    rule_id = "atomic-write"
    description = (
        "ban writable open()/write_text/write_bytes outside simulation/io.py "
        "(use io.atomic_write_*)"
    )

    def applies_to(self, path: Path) -> bool:
        return not (path.name == "io.py" and "simulation" in path.parts)

    def _mode_of(self, node: ast.Call) -> Optional[str]:
        candidates = list(node.args[1:2])
        for kw in node.keywords:
            if kw.arg == "mode":
                candidates.append(kw.value)
        for cand in candidates:
            if isinstance(cand, ast.Constant) and isinstance(cand.value, str):
                return cand.value
        return None

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            opener = None
            if isinstance(func, ast.Name) and func.id == "open":
                opener = "open"
            elif isinstance(func, ast.Attribute) and func.attr == "open":
                opener = ".open"  # Path.open / os.open-style wrappers
            elif isinstance(func, ast.Attribute) and func.attr == "fdopen":
                opener = "os.fdopen"
            if opener is not None:
                mode = self._mode_of(node)
                if mode is not None and _is_write_mode(mode):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"writable {opener}(..., {mode!r}) outside simulation/io.py "
                        "— use io.atomic_write_bytes/atomic_write_text",
                    )
                continue
            if isinstance(func, ast.Attribute) and func.attr in {
                "write_text",
                "write_bytes",
            }:
                yield self.finding(
                    ctx,
                    node.lineno,
                    f".{func.attr}() is a non-atomic write — use "
                    "io.atomic_write_bytes/atomic_write_text",
                )


# Importing this module is the "load the built-in rules" hook (framework
# does it lazily); pull in the project-scope checker, the flow-sensitive
# CFG/dataflow rules and the packed-kernel contract rule as part of that.
from repro.quality import flow_checkers as _flow_checkers  # noqa: E402,F401
from repro.quality import kernel_contracts as _kernel_contracts  # noqa: E402,F401
from repro.quality import registry_check as _registry_check  # noqa: E402,F401
