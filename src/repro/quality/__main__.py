"""``python -m repro.quality`` — run repro-lint from the shell."""

import sys

from repro.quality.framework import main

if __name__ == "__main__":
    sys.exit(main())
