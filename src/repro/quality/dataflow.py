"""Worklist fixed-point dataflow over :mod:`repro.quality.cfg` graphs.

Two layers:

* :class:`Analysis` — the pluggable abstract-state lattice.  A concrete
  analysis supplies the lattice operations (``bottom``/``join``) and an
  edge-kind-aware transfer function (``flow``); :func:`solve_forward`
  iterates transfers to the least fixed point with a worklist.  States
  must be plain comparable values (frozensets, tuples, dicts of
  frozensets) — the solver detects convergence with ``==``.
* :class:`ReachingDefinitions` — the one analysis every flow checker
  needs: which assignments of a name can reach a program point.  Built
  on the same engine, exposed with name-indexed convenience queries.

Edge-kind awareness is what makes the exceptional paths honest: a
statement's effect (an assignment's definition, a ``close()`` call's
release) applies on its **normal** out-edges only.  Along an
``exception`` edge the statement did *not* complete, so the state passes
through unchanged — which is exactly why ``f = open(...); f.write(...);
f.close()`` still leaks on the path where ``write`` raises.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Generic, List, Optional, Tuple, TypeVar

from repro.quality.cfg import CFG, CFGNode, EXCEPTION, NORMAL

__all__ = [
    "Analysis",
    "solve_forward",
    "assigned_names",
    "ReachingDefinitions",
]

StateT = TypeVar("StateT")


class Analysis(Generic[StateT]):
    """One dataflow problem: a lattice plus an edge-aware transfer function.

    Subclasses implement:

    * :meth:`bottom` — the lattice's least element (state of unreached
      nodes, and the identity of :meth:`join`);
    * :meth:`initial` — the state at the scope's entry node;
    * :meth:`join` — least upper bound of two states (set union for the
      may-analyses the flow checkers use);
    * :meth:`flow` — the state after executing ``node``, given the state
      before it and the kind of out-edge taken.  The default ships the
      in-state through unchanged on :data:`~repro.quality.cfg.EXCEPTION`
      edges and delegates normal edges to :meth:`transfer`.
    """

    def bottom(self) -> StateT:
        raise NotImplementedError

    def initial(self, cfg: CFG) -> StateT:
        return self.bottom()

    def join(self, a: StateT, b: StateT) -> StateT:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: StateT) -> StateT:
        """State after ``node`` completes normally (default: unchanged)."""
        return state

    def flow(self, node: CFGNode, state: StateT, edge_kind: str) -> StateT:
        """State propagated along one out-edge of ``node``.

        On an exceptional edge the node's effect did not (fully) happen:
        an assignment's target was not bound, a release call did not
        release.  Passing the in-state through unchanged is therefore
        the sound default for both gen and kill effects.
        """
        if edge_kind == EXCEPTION:
            return state
        return self.transfer(node, state)


def solve_forward(cfg: CFG, analysis: Analysis[StateT]) -> Dict[int, StateT]:
    """Iterate ``analysis`` over ``cfg`` to its least fixed point.

    Returns the IN-state of every node (the join over all in-edges of
    the flows along them).  The worklist is seeded in node-creation
    order, which approximates reverse post-order closely enough for the
    small scopes a lint run sees.
    """
    in_states: Dict[int, StateT] = {
        node.index: analysis.bottom() for node in cfg.nodes
    }
    in_states[cfg.entry] = analysis.initial(cfg)
    worklist: List[int] = [node.index for node in cfg.nodes]
    pending = set(worklist)
    while worklist:
        index = worklist.pop(0)
        pending.discard(index)
        node = cfg.node(index)
        for succ, kind in cfg.successors(index):
            out = analysis.flow(node, in_states[index], kind)
            joined = analysis.join(in_states[succ], out)
            if joined != in_states[succ]:
                in_states[succ] = joined
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return in_states


# --------------------------------------------------------------------------- #
# reaching definitions
# --------------------------------------------------------------------------- #
def _target_names(target: ast.expr) -> List[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []  # attribute / subscript stores bind no local name


def assigned_names(node: CFGNode) -> Tuple[str, ...]:
    """The local names ``node`` (re)binds when it completes normally."""
    stmt = node.stmt
    if stmt is None:
        return ()
    names: List[str] = []
    if node.kind == "stmt":
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.extend(_target_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names.extend(_target_names(stmt.target))
        elif isinstance(stmt, ast.NamedExpr):  # pragma: no cover - stmt-level walrus
            names.extend(_target_names(stmt.target))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.append(stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name != "*":
                    names.append(alias.asname or alias.name.split(".")[0])
    elif node.kind == "loop" and isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.extend(_target_names(stmt.target))
    elif node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif node.kind == "handler" and isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.append(stmt.name)
    # Walrus targets nested anywhere in the evaluated fragments also bind.
    for part in node.evaluated():
        for sub in ast.walk(part):
            if isinstance(sub, ast.NamedExpr):
                names.extend(_target_names(sub.target))
    return tuple(dict.fromkeys(names))


#: a reaching-defs state: name -> the node indices that may have defined it
_DefsState = Tuple[Tuple[str, FrozenSet[int]], ...]

#: sentinel definition site for names bound at scope entry (parameters)
ENTRY_DEF = -1


class _ReachingDefsAnalysis(Analysis[_DefsState]):
    """Union-join reaching definitions over canonicalised tuple states."""

    def __init__(self, params: Tuple[str, ...]) -> None:
        self._params = params

    def bottom(self) -> _DefsState:
        return ()

    def initial(self, cfg: CFG) -> _DefsState:
        return tuple(
            (name, frozenset({ENTRY_DEF})) for name in sorted(self._params)
        )

    def join(self, a: _DefsState, b: _DefsState) -> _DefsState:
        if not a:
            return b
        if not b:
            return a
        merged: Dict[str, FrozenSet[int]] = dict(a)
        for name, defs in b:
            merged[name] = merged.get(name, frozenset()) | defs
        return tuple(sorted(merged.items()))

    def transfer(self, node: CFGNode, state: _DefsState) -> _DefsState:
        names = assigned_names(node)
        if not names:
            return state
        merged: Dict[str, FrozenSet[int]] = dict(state)
        for name in names:
            merged[name] = frozenset({node.index})
        return tuple(sorted(merged.items()))


class ReachingDefinitions:
    """Which definitions of a name can reach each node of a CFG.

    ``defs_of(name, node_index)`` returns the CFG node indices whose
    assignment to ``name`` may be the live one on entry to that node;
    :data:`ENTRY_DEF` (``-1``) marks "bound before the scope ran" (a
    parameter).  An empty set means the name cannot be bound there.
    """

    def __init__(self, cfg: CFG, scope: Optional[ast.AST] = None) -> None:
        self.cfg = cfg
        params: Tuple[str, ...] = ()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            if args.vararg is not None:
                all_args.append(args.vararg)
            if args.kwarg is not None:
                all_args.append(args.kwarg)
            params = tuple(a.arg for a in all_args)
        self._in_states = solve_forward(cfg, _ReachingDefsAnalysis(params))

    def defs_of(self, name: str, node_index: int) -> FrozenSet[int]:
        """Definition sites of ``name`` that may reach ``node_index``'s entry."""
        for state_name, defs in self._in_states[node_index]:
            if state_name == name:
                return defs
        return frozenset()

    def def_nodes(self, name: str, node_index: int) -> List[CFGNode]:
        """The actual :class:`CFGNode` defs (entry-bound sites omitted)."""
        return [
            self.cfg.node(i)
            for i in sorted(self.defs_of(name, node_index))
            if i >= 0
        ]
