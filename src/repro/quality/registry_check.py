"""The ``registry-consistency`` project-scope checker.

A process registered "half-way" — present in ``PROCESS_REGISTRY`` but
missing from ``SHARDABLE_PROCESSES``, or registered with a name the CLI
does not offer — produces runtime ``KeyError``/``ValueError`` only on the
path a user happens to exercise.  This checker imports the live
registries, freezes them into a JSON-able :class:`RegistrySnapshot`, and
runs :func:`cross_check` — a pure function over that snapshot, so tests
can feed it broken fixture snapshots without monkeypatching modules.

Invariants enforced:

1. ``ARRAY_BACKEND_PROCESSES`` covers exactly the process registry.
2. Every registered process class is shardable unless listed in the
   documented ``UNSHARDABLE_PROCESSES`` exemption set.
3. ``UNSHARDABLE_PROCESSES`` names only registered processes (no stale
   exemptions).
4. Every shard kernel kind is declared in ``SHARD_KINDS``.
5. The checkpoint reverse lookup ``(ctor, needs_directed) -> name`` is
   unambiguous for every registry entry.
6. The CLI ``choices=``/defaults for ``--process``, ``--family``,
   ``--protocol`` and ``--backend`` agree with the registries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.quality.framework import Checker, Finding, register_checker

__all__ = [
    "RegistrySnapshot",
    "collect_snapshot",
    "cross_check",
    "RegistryConsistencyChecker",
]


@dataclass(frozen=True)
class RegistrySnapshot:
    """JSON-able freeze of every registry the system dispatches through."""

    #: process name -> (constructor qualname, needs_directed)
    process_registry: Mapping[str, Tuple[str, bool]]
    #: names accepted by the array backend
    array_backend: Tuple[str, ...]
    #: shardable constructor qualname -> shard kernel kind
    shardable: Mapping[str, str]
    #: registry names exempt from the sharding requirement (documented)
    unshardable: Tuple[str, ...]
    #: kernel kinds ``_run_kernel`` implements
    shard_kinds: Tuple[str, ...]
    #: undirected / directed graph family names
    families: Tuple[str, ...]
    directed_families: Tuple[str, ...]
    #: network protocol names
    protocols: Tuple[str, ...]
    #: CLI: subcommand -> option dest -> (choices or None, default)
    cli: Mapping[str, Mapping[str, Tuple[Optional[Tuple[str, ...]], object]]] = field(
        default_factory=dict
    )

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "RegistrySnapshot":
        """Rebuild a snapshot from its JSON form (fixture-corpus tests)."""
        raw_registry = payload["process_registry"]
        assert isinstance(raw_registry, Mapping)
        raw_shardable = payload["shardable"]
        assert isinstance(raw_shardable, Mapping)
        raw_cli = payload.get("cli", {})
        assert isinstance(raw_cli, Mapping)
        cli: Dict[str, Dict[str, Tuple[Optional[Tuple[str, ...]], object]]] = {}
        for sub, opts in raw_cli.items():
            assert isinstance(opts, Mapping)
            cli[str(sub)] = {
                str(dest): (
                    tuple(str(c) for c in spec[0]) if spec[0] is not None else None,
                    spec[1],
                )
                for dest, spec in opts.items()
            }
        return cls(
            process_registry={
                str(k): (str(v[0]), bool(v[1])) for k, v in raw_registry.items()
            },
            array_backend=tuple(str(x) for x in _seq(payload["array_backend"])),
            shardable={str(k): str(v) for k, v in raw_shardable.items()},
            unshardable=tuple(str(x) for x in _seq(payload["unshardable"])),
            shard_kinds=tuple(str(x) for x in _seq(payload["shard_kinds"])),
            families=tuple(str(x) for x in _seq(payload["families"])),
            directed_families=tuple(str(x) for x in _seq(payload["directed_families"])),
            protocols=tuple(str(x) for x in _seq(payload["protocols"])),
            cli=cli,
        )


def _seq(value: object) -> Sequence[object]:
    assert isinstance(value, Sequence) and not isinstance(value, (str, bytes))
    return value


def collect_snapshot() -> RegistrySnapshot:
    """Freeze the live registries (imports the simulation/CLI layers)."""
    from repro import cli as repro_cli
    from repro.graphs.directed_generators import DIRECTED_FAMILY_REGISTRY
    from repro.graphs.generators import FAMILY_REGISTRY
    from repro.network.protocols import protocol_names
    from repro.simulation.engine import ARRAY_BACKEND_PROCESSES, PROCESS_REGISTRY
    from repro.simulation.sharding import (
        SHARD_KINDS,
        SHARDABLE_PROCESSES,
        UNSHARDABLE_PROCESSES,
    )

    cli: Dict[str, Dict[str, Tuple[Optional[Tuple[str, ...]], object]]] = {}
    parser = repro_cli.build_parser()
    for action in getattr(parser, "_actions"):
        subparsers = getattr(action, "choices", None)
        if not isinstance(subparsers, dict):
            continue
        for sub_name, sub_parser in subparsers.items():
            opts: Dict[str, Tuple[Optional[Tuple[str, ...]], object]] = {}
            for sub_action in getattr(sub_parser, "_actions"):
                dest = getattr(sub_action, "dest", None)
                if not dest or dest == "help":
                    continue
                choices = getattr(sub_action, "choices", None)
                opts[str(dest)] = (
                    tuple(str(c) for c in choices) if choices is not None else None,
                    getattr(sub_action, "default", None),
                )
            cli[str(sub_name)] = opts

    return RegistrySnapshot(
        process_registry={
            name: (ctor.__qualname__, bool(needs_directed))
            for name, (ctor, needs_directed) in PROCESS_REGISTRY.items()
        },
        array_backend=tuple(sorted(ARRAY_BACKEND_PROCESSES)),
        shardable={
            ctor.__qualname__: kind for ctor, kind in SHARDABLE_PROCESSES.items()
        },
        unshardable=tuple(sorted(UNSHARDABLE_PROCESSES)),
        shard_kinds=tuple(sorted(SHARD_KINDS)),
        families=tuple(sorted(FAMILY_REGISTRY)),
        directed_families=tuple(sorted(DIRECTED_FAMILY_REGISTRY)),
        protocols=tuple(protocol_names()),
        cli=cli,
    )


#: which CLI option on which subcommand must agree with which registry;
#: "registry" keys map into the check below.
_CLI_EXPECTATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("run", "process", "processes"),
    ("scaling", "process", "processes"),
    ("nonmonotone", "process", "processes"),
    ("group", "process", "processes"),
    ("run", "family", "all_families"),
    ("scaling", "family", "all_families"),
    ("group", "host_family", "families"),
    ("async", "family", "families"),
    ("directed", "family", "directed_families"),
    ("async", "protocol", "protocols"),
)


def cross_check(snapshot: RegistrySnapshot) -> List[Tuple[str, str]]:
    """Pure consistency check.  Returns ``(anchor, message)`` pairs.

    ``anchor`` names the registry whose definition site the finding should
    point at: ``process_registry``, ``array_backend``, ``shardable``,
    ``unshardable``, ``shard_kinds``, ``checkpoint`` or ``cli``.
    """
    problems: List[Tuple[str, str]] = []
    registry_names = set(snapshot.process_registry)

    # 1. array backend covers the registry exactly
    array = set(snapshot.array_backend)
    if array != registry_names:
        missing = sorted(registry_names - array)
        extra = sorted(array - registry_names)
        problems.append(
            (
                "array_backend",
                "ARRAY_BACKEND_PROCESSES out of sync with PROCESS_REGISTRY "
                f"(missing={missing}, stale={extra})",
            )
        )

    # 2. every registered process is shardable or a documented exemption
    unshardable = set(snapshot.unshardable)
    shardable_ctors = set(snapshot.shardable)
    for name, (ctor, _directed) in sorted(snapshot.process_registry.items()):
        if name in unshardable:
            continue
        if ctor not in shardable_ctors:
            problems.append(
                (
                    "shardable",
                    f"process {name!r} ({ctor}) is registered but has no shard "
                    "kernel in SHARDABLE_PROCESSES and is not listed in "
                    "UNSHARDABLE_PROCESSES",
                )
            )

    # 3. no stale exemptions
    for name in sorted(unshardable - registry_names):
        problems.append(
            (
                "unshardable",
                f"UNSHARDABLE_PROCESSES names unknown process {name!r}",
            )
        )

    # 4. every shard kernel kind is declared
    declared_kinds = set(snapshot.shard_kinds)
    for ctor, kind in sorted(snapshot.shardable.items()):
        if kind not in declared_kinds:
            problems.append(
                (
                    "shard_kinds",
                    f"shard kind {kind!r} (for {ctor}) is not declared in SHARD_KINDS",
                )
            )

    # 5. checkpoint reverse lookup must be unambiguous
    by_key: Dict[Tuple[str, bool], List[str]] = {}
    for name, key in snapshot.process_registry.items():
        by_key.setdefault(key, []).append(name)
    for key, names in sorted(by_key.items()):
        if len(names) > 1:
            problems.append(
                (
                    "checkpoint",
                    f"registry entries {sorted(names)} share (ctor, directed)="
                    f"{key}; the checkpoint reverse lookup cannot distinguish "
                    "them",
                )
            )

    # 6. CLI choices and defaults agree with the registries
    expected_sets: Dict[str, set] = {
        "processes": registry_names,
        "families": set(snapshot.families),
        "directed_families": set(snapshot.directed_families),
        "all_families": set(snapshot.families) | set(snapshot.directed_families),
        "protocols": set(snapshot.protocols),
    }
    for sub, dest, registry_key in _CLI_EXPECTATIONS:
        opts = snapshot.cli.get(sub)
        if opts is None:
            problems.append(("cli", f"CLI subcommand {sub!r} is missing"))
            continue
        if dest not in opts:
            problems.append(("cli", f"CLI {sub!r} has no --{dest} option"))
            continue
        choices, default = opts[dest]
        expected = expected_sets[registry_key]
        if choices is None:
            problems.append(
                (
                    "cli",
                    f"CLI {sub!r} --{dest} has no choices= — new registry "
                    "entries would be accepted or rejected only at runtime",
                )
            )
        elif not (set(choices) <= expected):
            problems.append(
                (
                    "cli",
                    f"CLI {sub!r} --{dest} offers {sorted(set(choices) - expected)} "
                    f"which the {registry_key} registry does not define",
                )
            )
        if default is not None and default not in expected:
            problems.append(
                (
                    "cli",
                    f"CLI {sub!r} --{dest} default {default!r} is not in the "
                    f"{registry_key} registry",
                )
            )
    # --backend must offer exactly the two graph substrates
    for sub in ("run", "scaling", "group", "directed"):
        opts = snapshot.cli.get(sub)
        if opts is None or "backend" not in opts:
            continue
        choices, _default = opts["backend"]
        if choices is not None and set(choices) != {"list", "array"}:
            problems.append(
                (
                    "cli",
                    f"CLI {sub!r} --backend choices {sorted(choices)} != "
                    "['array', 'list']",
                )
            )
    return problems


#: anchor key -> (module import path, symbol whose definition line we point at)
_ANCHORS: Dict[str, Tuple[str, str]] = {
    "process_registry": ("repro.simulation.engine", "PROCESS_REGISTRY"),
    "array_backend": ("repro.simulation.engine", "ARRAY_BACKEND_PROCESSES"),
    "shardable": ("repro.simulation.sharding", "SHARDABLE_PROCESSES"),
    "unshardable": ("repro.simulation.sharding", "UNSHARDABLE_PROCESSES"),
    "shard_kinds": ("repro.simulation.sharding", "SHARD_KINDS"),
    "checkpoint": ("repro.simulation.engine", "PROCESS_REGISTRY"),
    "cli": ("repro.cli", "def build_parser"),
}


def _anchor_site(anchor: str) -> Tuple[str, int]:
    """Resolve an anchor key to ``(file, line)`` of the symbol definition."""
    import importlib

    module_name, symbol = _ANCHORS[anchor]
    module = importlib.import_module(module_name)
    module_file = getattr(module, "__file__", None)
    if module_file is None:  # pragma: no cover - frozen/namespace edge
        return module_name, 1
    path = Path(module_file)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:  # pragma: no cover - source not on disk
        return str(path), 1
    for idx, line in enumerate(lines, start=1):
        if line.startswith(symbol):
            return str(path), idx
    return str(path), 1


@register_checker
class RegistryConsistencyChecker(Checker):
    """Project-scope wrapper: live snapshot -> :func:`cross_check` -> findings."""

    rule_id = "registry-consistency"
    description = (
        "cross-check PROCESS_REGISTRY, sharding support, checkpoint lookup, "
        "family registries and CLI choices"
    )
    scope = "project"

    def check_project(self, root: Optional[Path]) -> Iterator[Finding]:
        problems = cross_check(collect_snapshot())
        for anchor, message in problems:
            path, line = _anchor_site(anchor)
            yield Finding(path=path, line=line, rule=self.rule_id, message=message)
