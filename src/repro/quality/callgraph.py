"""Project-wide call graph for the interprocedural lint rules.

The flow-sensitive rules in :mod:`repro.quality.flow_checkers` reason
about one function body at a time; every call used to be an analysis
hole they papered over conservatively ("passing a handle to *any* call
transfers ownership").  This module supplies the structure the
:mod:`repro.quality.summaries` engine needs to do better: an index of
every module, class and function in the linted file set, a resolver
that turns a call expression into the :class:`FunctionInfo` it invokes,
and the strongly-connected components of the resulting graph so
summaries can be iterated bottom-up with recursion handled by a fixed
point instead of unbounded inlining.

Resolution handles the forms the codebase actually uses:

* plain names (``helper(...)``), including functions nested in the
  calling function's scope chain;
* import aliases, both module- and object-level (``import x as y;
  y.f(...)``, ``from pkg.mod import f as g; g(...)``) — resolved through
  the same alias map the syntax checkers use;
* ``self.method(...)`` / ``cls.method(...)`` inside a class body, and
  unbound ``ClassName.method(...)`` access, with ``staticmethod`` /
  ``classmethod`` argument offsets accounted for;
* fully-dotted paths (``repro.graphs.bitset.or_rows(...)``) against the
  indexed module set.

Decorated functions resolve to themselves when every decorator is
*identity-preserving*: the known ``functools`` wrappers, ``staticmethod``
/ ``classmethod`` / ``property``, or a project-defined decorator whose
body is the ``functools.wraps`` pattern (an inner ``def`` decorated with
``wraps(func)`` and returned).  Any other decorator marks the function
*opaque* — it still resolves (the call edge exists for SCC purposes) but
the summary engine refuses to trust its body, because the wrapper may do
anything.

Everything here is deliberately syntactic: no imports are executed, so
linting a file set can never run project code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.quality.framework import _canonical_name, _import_aliases

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "CallGraph",
    "CallResolution",
    "build_call_graph",
    "module_name_for",
]

#: decorators that provably preserve the decorated function's identity
#: and body semantics for summary purposes.
_TRANSPARENT_DECORATORS = frozenset(
    {
        "staticmethod",
        "classmethod",
        "property",
        "functools.wraps",
        "functools.lru_cache",
        "functools.cache",
        "functools.cached_property",
    }
)


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` parents.

    ``src/repro/graphs/bitset.py`` → ``repro.graphs.bitset``; a file whose
    directory is not a package (a benchmark script, a lint fixture) is its
    bare stem.  Purely filesystem-based — nothing is imported.
    """
    parts: List[str] = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if path.name == "__init__.py":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One indexed function or method.

    ``key`` is globally unique (``module:qualname``); ``qualname`` is the
    module-relative dotted path (``Class.method``, ``outer.inner``).
    ``params`` is the *full* positional parameter tuple — for methods it
    includes ``self``/``cls``; call-site argument mapping applies the
    binding offset from :class:`CallResolution`.
    """

    key: str
    module: str
    path: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: Tuple[str, ...]
    has_star: bool
    class_qual: Optional[str]
    kind: str  # "function" | "method" | "staticmethod" | "classmethod"
    transparent: bool
    is_generator: bool

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def param_index(self, keyword: str) -> Optional[int]:
        """Index of a keyword argument in the full parameter tuple."""
        try:
            return self.params.index(keyword)
        except ValueError:
            return None


@dataclass
class ModuleInfo:
    """One indexed source file: aliases plus its function/class namespaces."""

    name: str
    path: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    #: module-relative qualname -> function key (every function, any depth)
    functions: Dict[str, str] = field(default_factory=dict)
    #: class qualname -> {method name -> function key}
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)


@dataclass(frozen=True)
class CallResolution:
    """A resolved call site: the callee plus the argument-binding offset.

    ``arg_offset`` is how many leading parameters are bound implicitly by
    the call form (1 for ``self.m(...)`` on an instance method or
    ``cls``/``self`` access to a classmethod, 0 otherwise), so positional
    argument ``i`` at the call site binds ``info.params[i + arg_offset]``.
    """

    info: FunctionInfo
    arg_offset: int

    def param_for_positional(self, position: int) -> Optional[int]:
        """Full-tuple parameter index bound by positional arg ``position``."""
        index = position + self.arg_offset
        if index < len(self.info.params):
            return index
        return None  # lands in *args (or is an arity error) — unknown

    def param_for_keyword(self, keyword: str) -> Optional[int]:
        """Full-tuple parameter index bound by keyword arg ``keyword``."""
        return self.info.param_index(keyword)


def _params_of(node: ast.AST) -> Tuple[Tuple[str, ...], bool]:
    args = node.args  # type: ignore[attr-defined]
    ordered = list(args.posonlyargs) + list(args.args)
    has_star = bool(args.vararg or args.kwarg or args.kwonlyargs)
    return tuple(a.arg for a in ordered), has_star


def _contains_yield(node: ast.AST) -> bool:
    """Whether the function body yields (its body does not run at call time)."""
    for sub in _walk_own(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        yield sub
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(sub))


class CallGraph:
    """The project index plus resolved call edges and their SCC order."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: caller key -> resolved callee keys (deduplicated)
        self.edges: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def add_module(self, path: Path, tree: ast.Module, display: str) -> ModuleInfo:
        name = module_name_for(path)
        module = ModuleInfo(
            name=name, path=display, tree=tree, aliases=_import_aliases(tree)
        )
        self._index_body(module, tree.body, prefix="", class_qual=None)
        self.modules[name] = module
        self.modules_by_path[display] = module
        return module

    def _index_body(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        prefix: str,
        class_qual: Optional[str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                kind = "function"
                if class_qual is not None:
                    kind = "method"
                    for deco in stmt.decorator_list:
                        deco_name = _canonical_name(deco, module.aliases)
                        if deco_name == "staticmethod":
                            kind = "staticmethod"
                        elif deco_name == "classmethod":
                            kind = "classmethod"
                params, has_star = _params_of(stmt)
                key = f"{module.name}:{qual}"
                info = FunctionInfo(
                    key=key,
                    module=module.name,
                    path=module.path,
                    qualname=qual,
                    node=stmt,
                    params=params,
                    has_star=has_star,
                    class_qual=class_qual,
                    kind=kind,
                    transparent=self._is_transparent(stmt, module),
                    is_generator=_contains_yield(stmt),
                )
                self.functions[key] = info
                module.functions[qual] = key
                if class_qual is not None:
                    module.classes.setdefault(class_qual, {})[stmt.name] = key
                # Nested defs: indexed for scope-chain resolution.
                self._index_body(module, stmt.body, qual + ".", None)
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{prefix}{stmt.name}"
                module.classes.setdefault(cls_qual, {})
                self._index_body(module, stmt.body, cls_qual + ".", cls_qual)
            else:
                # Compound statements can hide defs (e.g. under TYPE_CHECKING
                # or try/except import fallbacks).
                for inner in self._nested_bodies(stmt):
                    self._index_body(module, inner, prefix, class_qual)

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for fname in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, fname, None)
            if nested and all(isinstance(s, ast.stmt) for s in nested):
                yield nested
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body
        for case in getattr(stmt, "cases", []) or []:
            yield case.body

    # ------------------------------------------------------------------ #
    # decorator transparency
    # ------------------------------------------------------------------ #
    def _is_transparent(self, node: ast.AST, module: ModuleInfo) -> bool:
        decorators = list(getattr(node, "decorator_list", []))
        for deco in decorators:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _canonical_name(target, module.aliases)
            if name in _TRANSPARENT_DECORATORS:
                continue
            if name is not None and self._is_wraps_decorator(name, module):
                continue
            return False
        return True

    def _is_wraps_decorator(self, name: str, module: ModuleInfo) -> bool:
        """Whether ``name`` is a project decorator built on ``functools.wraps``.

        Matches the canonical shape: ``def deco(func): @wraps(func) def
        wrapper(...): ...; return wrapper``.  Looked up first in the
        defining module, then across the indexed project.
        """
        info = self._lookup_local(module, name) or self._lookup_dotted(name)
        if info is None or not isinstance(
            info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return False
        if not info.params:
            return False
        wrapped_param = info.params[0]
        deco_module = self.modules.get(info.module)
        aliases = deco_module.aliases if deco_module else {}
        wraps_inner: Set[str] = set()
        for stmt in info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner_deco in stmt.decorator_list:
                    if (
                        isinstance(inner_deco, ast.Call)
                        and _canonical_name(inner_deco.func, aliases)
                        == "functools.wraps"
                        and inner_deco.args
                        and isinstance(inner_deco.args[0], ast.Name)
                        and inner_deco.args[0].id == wrapped_param
                    ):
                        wraps_inner.add(stmt.name)
        if not wraps_inner:
            return False
        for stmt in ast.walk(info.node):
            if (
                isinstance(stmt, ast.Return)
                and isinstance(stmt.value, ast.Name)
                and stmt.value.id in wraps_inner
            ):
                return True
        return False

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def _lookup_local(self, module: ModuleInfo, dotted: str) -> Optional[FunctionInfo]:
        key = module.functions.get(dotted)
        return self.functions.get(key) if key is not None else None

    def _lookup_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """Resolve a canonical dotted path against the indexed modules.

        Tries every split of ``dotted`` into ``module + qualname``, longest
        module prefix first, so ``repro.graphs.bitset.or_rows`` finds the
        ``or_rows`` of module ``repro.graphs.bitset``.
        """
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            qual = ".".join(parts[cut:])
            key = module.functions.get(qual)
            if key is not None:
                return self.functions[key]
        return None

    def resolve(
        self, call: ast.Call, module: ModuleInfo, scope_qualname: str
    ) -> Optional[CallResolution]:
        """Resolve one call expression made from ``scope_qualname``.

        ``scope_qualname`` is the module-relative qualname of the calling
        scope (``"<module>"`` for module level).  Returns ``None`` when the
        callee is not an indexed project function — the caller must treat
        the call conservatively.
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, module, scope_qualname)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, module, scope_qualname)
        return None

    def _resolve_name(
        self, name: str, module: ModuleInfo, scope_qualname: str
    ) -> Optional[CallResolution]:
        # 1. the caller's lexical scope chain, innermost first (nested defs).
        if scope_qualname != "<module>":
            prefix_parts = scope_qualname.split(".")
            for depth in range(len(prefix_parts), 0, -1):
                candidate = ".".join(prefix_parts[:depth]) + "." + name
                info = self._lookup_local(module, candidate)
                if info is not None and info.class_qual is None:
                    return CallResolution(info, 0)
        # 2. module top level.
        info = self._lookup_local(module, name)
        if info is not None and info.class_qual is None:
            return CallResolution(info, 0)
        # 3. an object-level import alias (``from m import f as g``).
        dotted = module.aliases.get(name)
        if dotted is not None:
            target = self._lookup_dotted(dotted)
            if target is not None and target.class_qual is None:
                return CallResolution(target, 0)
        return None

    def _resolve_attribute(
        self, func: ast.Attribute, module: ModuleInfo, scope_qualname: str
    ) -> Optional[CallResolution]:
        attr = func.attr
        value = func.value
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            cls_qual = self._enclosing_class(module, scope_qualname)
            if cls_qual is not None:
                key = module.classes.get(cls_qual, {}).get(attr)
                if key is not None:
                    info = self.functions[key]
                    offset = 0 if info.kind == "staticmethod" else 1
                    return CallResolution(info, offset)
            return None
        dotted = _canonical_name(func, module.aliases)
        if dotted is None:
            return None
        # ``ClassName.method(...)`` in the same module: unbound access —
        # no implicit receiver for instance methods, one for classmethods.
        head, _, tail = dotted.rpartition(".")
        if head in module.classes and tail in module.classes[head]:
            info = self.functions[module.classes[head][tail]]
            offset = 1 if info.kind == "classmethod" else 0
            return CallResolution(info, offset)
        target = self._lookup_dotted(dotted)
        if target is not None:
            if target.class_qual is not None:
                offset = 1 if target.kind == "classmethod" else 0
                return CallResolution(target, offset)
            return CallResolution(target, 0)
        return None

    @staticmethod
    def _enclosing_class(module: ModuleInfo, scope_qualname: str) -> Optional[str]:
        """The registered class qualname enclosing ``scope_qualname``."""
        parts = scope_qualname.split(".")
        for depth in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:depth])
            if candidate in module.classes:
                return candidate
        return None

    # ------------------------------------------------------------------ #
    # edges and SCC order
    # ------------------------------------------------------------------ #
    def build_edges(self) -> None:
        """Populate :attr:`edges` by resolving every call in every function."""
        for info in self.functions.values():
            module = self.modules.get(info.module)
            callees: Set[str] = set()
            if module is not None:
                for sub in _walk_own(info.node):
                    if isinstance(sub, ast.Call):
                        resolved = self.resolve(sub, module, info.qualname)
                        if resolved is not None:
                            callees.add(resolved.info.key)
            self.edges[info.key] = callees

    def sccs_bottom_up(self) -> List[List[str]]:
        """Strongly-connected components in reverse topological order.

        Callees come before callers, so a bottom-up summary pass can
        process the returned list front to back; mutual recursion lands in
        one component to be iterated to a fixed point.  Iterative Tarjan —
        no recursion, so pathological call chains cannot blow the stack.
        """
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = 0

        for root in sorted(self.functions):
            if root in index_of:
                continue
            work: List[Tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self.edges.get(root, ()))))
            ]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in self.functions:
                        continue
                    if child not in index_of:
                        index_of[child] = lowlink[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(self.edges.get(child, ())))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(sorted(component))
        return sccs


def build_call_graph(
    files: Sequence[Tuple[Path, ast.Module, str]],
) -> CallGraph:
    """Index ``(path, parsed tree, display name)`` triples into a call graph."""
    graph = CallGraph()
    for path, tree, display in files:
        graph.add_module(path, tree, display)
    graph.build_edges()
    return graph
