"""Intra-procedural control-flow graphs over Python ASTs.

The syntax-level checkers in :mod:`repro.quality.checkers` see one
statement at a time; the flow-sensitive rules in
:mod:`repro.quality.flow_checkers` need to reason about *paths* — "does
this shared-memory handle reach ``unlink()`` on every way out of the
function, including the ways an exception takes?".  This module builds
the graph those questions are asked over.

Scope and shape
---------------
One :class:`CFG` per scope (a function body, or a module's top-level
statements), built by :func:`build_cfg`.  Nodes are *statement-grained*:
every simple statement is one node, and compound statements contribute
the fragment that actually executes at that point (an ``if``/``while``
test, a ``for`` iterable, a ``with`` context expression) — never their
nested bodies, so walking a node's :meth:`~CFGNode.evaluated` parts
visits each expression exactly once per graph.

Edges carry a kind:

* ``"normal"`` — ordinary fall-through, branch, and loop edges;
* ``"exception"`` — control leaving a statement because it raised.

Exception edges are approximated conservatively: a statement that
contains a call or a subscript (or is an ``assert``) *may* raise, and
routes to the innermost enclosing handler context — the ``try``'s
dispatch node, a ``with`` statement's exit node, or the synthetic
``raise`` exit of the whole scope.  ``finally`` blocks are built once
(not duplicated per continuation) and exit both normally and
exceptionally; this admits a few infeasible paths, which is safe for the
may-analyses run over the graph (more paths can only add findings, and
the known cases are documented in ``docs/linting.md``).

Every scope has three synthetic anchors: ``entry``, ``exit`` (normal
returns and fall-off-the-end) and ``raise_exit`` (exceptions that escape
the scope).  :meth:`CFG.paths` enumerates loop-free paths between them,
which is what the unit tests pin branch/loop/try-finally shapes with.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "NORMAL",
    "EXCEPTION",
    "CFGNode",
    "CFG",
    "build_cfg",
    "ScopeNode",
]

#: edge kind: ordinary fall-through / branch / loop edges
NORMAL = "normal"
#: edge kind: control leaving a statement because it raised
EXCEPTION = "exception"

#: AST node types a CFG can be built for
ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


class CFGNode:
    """One control-flow node.

    ``kind`` is one of:

    ``"entry"`` / ``"exit"`` / ``"raise"``
        The scope's synthetic anchors (no statement attached).
    ``"stmt"``
        A simple statement (assignment, expression, ``return``,
        ``raise``, a nested ``def``/``class`` — the definition, not its
        body).
    ``"branch"``
        An ``if`` or ``match`` head; ``stmt`` is the full statement,
        :meth:`evaluated` yields only its test/subject expression.
    ``"loop"``
        A ``while``/``for`` head (test / iterable evaluation).
    ``"with"``
        A ``with`` statement's entry (context-manager construction).
    ``"with-exit"``
        The paired ``__exit__`` point; runs on both the normal and the
        exceptional way out of the ``with`` body.
    ``"dispatch"``
        A ``try``'s exception-dispatch point: exceptions raised in the
        body arrive here and fan out to the handlers (or onward).
    ``"handler"``
        An ``except`` clause head (``stmt`` is the ``ExceptHandler``;
        binds the exception name, if any).
    ``"finally"``
        The gate through which exceptional control enters a single-copy
        ``finally`` block.
    ``"reraise"``
        The point after a ``finally`` body completes where a pending
        exception resumes propagating; reached by normal edges (the
        body's effects did happen), leaves by an exceptional one.
    """

    __slots__ = ("index", "kind", "stmt")

    def __init__(self, index: int, kind: str, stmt: Optional[ast.AST] = None) -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt

    @property
    def line(self) -> int:
        """Source line of the attached statement (0 for synthetic nodes)."""
        return int(getattr(self.stmt, "lineno", 0) or 0)

    def evaluated(self) -> Tuple[ast.AST, ...]:
        """The expression fragments that execute *at this node*.

        Compound statements return only their head fragment (test,
        iterable, context expressions), never their bodies — those live
        in their own nodes — so scanning every node's ``evaluated()``
        parts covers each executed expression exactly once.
        """
        stmt = self.stmt
        if stmt is None:
            return ()
        if self.kind == "stmt":
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Only the definition executes here: decorators and
                # default values, never the nested body.
                defaults = [d for d in stmt.args.defaults if d is not None]
                kw_defaults = [d for d in stmt.args.kw_defaults if d is not None]
                return tuple(stmt.decorator_list) + tuple(defaults) + tuple(kw_defaults)
            if isinstance(stmt, ast.ClassDef):
                keyword_values = [kw.value for kw in stmt.keywords]
                return tuple(stmt.decorator_list) + tuple(stmt.bases) + tuple(keyword_values)
            return (stmt,)
        if self.kind == "branch":
            if isinstance(stmt, ast.If):
                return (stmt.test,)
            if isinstance(stmt, ast.Match):
                return (stmt.subject,)
            return ()
        if self.kind == "loop":
            if isinstance(stmt, ast.While):
                return (stmt.test,)
            if isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
                return (stmt.iter,)
            return ()
        if self.kind == "with":
            items = stmt.items if isinstance(stmt, (ast.With, ast.AsyncWith)) else []
            return tuple(item.context_expr for item in items)
        if self.kind == "handler" and isinstance(stmt, ast.ExceptHandler):
            return (stmt.type,) if stmt.type is not None else ()
        return ()

    def __repr__(self) -> str:
        tag = type(self.stmt).__name__ if self.stmt is not None else "-"
        return f"CFGNode({self.index}, {self.kind!r}, {tag}@{self.line})"


class CFG:
    """A scope's control-flow graph: nodes plus kind-tagged edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[CFGNode] = []
        self._succs: Dict[int, List[Tuple[int, str]]] = {}
        self._preds: Dict[int, List[Tuple[int, str]]] = {}
        self.entry = self._new("entry").index
        self.exit = self._new("exit").index
        self.raise_exit = self._new("raise").index

    # ------------------------------------------------------------------ #
    # construction (used by the builder)
    # ------------------------------------------------------------------ #
    def _new(self, kind: str, stmt: Optional[ast.AST] = None) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        self._succs[node.index] = []
        self._preds[node.index] = []
        return node

    def _edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self._succs[src]:
            self._succs[src].append((dst, kind))
            self._preds[dst].append((src, kind))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def successors(self, index: int) -> Sequence[Tuple[int, str]]:
        """``(node index, edge kind)`` pairs leaving ``index``."""
        return tuple(self._succs[index])

    def predecessors(self, index: int) -> Sequence[Tuple[int, str]]:
        """``(node index, edge kind)`` pairs entering ``index``."""
        return tuple(self._preds[index])

    def node(self, index: int) -> CFGNode:
        """The node at ``index``."""
        return self.nodes[index]

    def stmt_nodes(self) -> Iterator[CFGNode]:
        """Every non-synthetic node, in creation (roughly source) order."""
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def paths(self, max_paths: int = 10000) -> List[List[int]]:
        """Enumerate loop-free paths from ``entry`` to either exit.

        Each loop body is traversed at most once per path (back edges to
        a node already on the path are skipped), so the enumeration
        terminates; ``max_paths`` caps pathological blow-ups.  Meant for
        tests and debugging, not for the fixed-point analyses.
        """
        found: List[List[int]] = []
        path: List[int] = []
        on_path: Set[int] = set()

        def walk(index: int) -> None:
            if len(found) >= max_paths:
                return
            path.append(index)
            on_path.add(index)
            if index in (self.exit, self.raise_exit):
                found.append(list(path))
            else:
                for succ, _kind in self._succs[index]:
                    if succ not in on_path:
                        walk(succ)
            on_path.discard(index)
            path.pop()

        walk(self.entry)
        return found

    def __repr__(self) -> str:
        edges = sum(len(v) for v in self._succs.values())
        return f"CFG({self.name!r}, nodes={len(self.nodes)}, edges={edges})"


# --------------------------------------------------------------------------- #
# the builder
# --------------------------------------------------------------------------- #
def _may_raise(parts: Sequence[ast.AST]) -> bool:
    """Whether evaluating ``parts`` may raise (conservative approximation).

    Calls and subscripts are the raise sites that matter for the flow
    rules (a call into arbitrary code, a ``KeyError``/``IndexError``);
    attribute access and arithmetic are deliberately ignored to keep the
    exceptional edge set focused.
    """
    for part in parts:
        for sub in ast.walk(part):
            if isinstance(sub, (ast.Call, ast.Subscript, ast.Await, ast.Yield, ast.YieldFrom)):
                return True
    return False


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """A handler no exception can get past: bare or ``BaseException``."""
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id == "BaseException"
    if isinstance(handler.type, ast.Attribute):
        return handler.type.attr == "BaseException"
    return False


class _Builder:
    """Recursive-descent CFG construction for one scope."""

    def __init__(self, name: str) -> None:
        self.cfg = CFG(name)
        # Innermost exception target: where a raising statement routes.
        self.exc_stack: List[int] = [self.cfg.raise_exit]
        # (loop head index, list collecting `break` sources) per open loop.
        self.loop_stack: List[Tuple[int, List[int]]] = []
        # Open ``finally`` gates: a ``return`` unwinds through the
        # innermost one instead of jumping straight to ``exit``, so
        # releases in the finally body are seen on the return path.
        self.fin_stack: List[int] = []

    # -- small helpers ------------------------------------------------- #
    def _connect(self, preds: Sequence[int], dst: int, kind: str = NORMAL) -> None:
        for src in preds:
            self.cfg._edge(src, dst, kind)

    def _stmt_node(self, kind: str, stmt: ast.AST, preds: Sequence[int]) -> CFGNode:
        node = self.cfg._new(kind, stmt)
        self._connect(preds, node.index)
        if _may_raise(node.evaluated()) or isinstance(stmt, ast.Assert):
            self.cfg._edge(node.index, self.exc_stack[-1], EXCEPTION)
        return node

    # -- statement sequencing ------------------------------------------ #
    def build_body(self, stmts: Sequence[ast.stmt], preds: List[int]) -> List[int]:
        """Thread ``stmts`` after ``preds``; return the dangling normal exits."""
        for stmt in stmts:
            if not preds:
                break  # unreachable code after return/raise/break/continue
            preds = self.build_stmt(stmt, preds)
        return preds

    def build_stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, preds)
        node = self._stmt_node("stmt", stmt, preds)
        if isinstance(stmt, ast.Return):
            # A return inside try/finally unwinds through the finally
            # body (whose fall-through/reraise continuations then apply);
            # only with no open finally does it reach ``exit`` directly.
            target = self.fin_stack[-1] if self.fin_stack else self.cfg.exit
            self.cfg._edge(node.index, target)
            return []
        if isinstance(stmt, ast.Raise):
            self.cfg._edge(node.index, self.exc_stack[-1], EXCEPTION)
            return []
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.loop_stack[-1][1].append(node.index)
            return []
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self.cfg._edge(node.index, self.loop_stack[-1][0])
            return []
        return [node.index]

    # -- compound statements ------------------------------------------- #
    def _build_if(self, stmt: ast.If, preds: List[int]) -> List[int]:
        head = self._stmt_node("branch", stmt, preds)
        out = self.build_body(stmt.body, [head.index])
        if stmt.orelse:
            out += self.build_body(stmt.orelse, [head.index])
        else:
            out.append(head.index)
        return out

    def _build_loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], preds: List[int]
    ) -> List[int]:
        head = self._stmt_node("loop", stmt, preds)
        self.loop_stack.append((head.index, []))
        body_out = self.build_body(stmt.body, [head.index])
        self._connect(body_out, head.index)  # back edge
        _, breaks = self.loop_stack.pop()
        out = list(breaks)
        if stmt.orelse:
            out += self.build_body(stmt.orelse, [head.index])
        else:
            out.append(head.index)  # loop not entered / condition false
        return out

    def _build_with(
        self, stmt: Union[ast.With, ast.AsyncWith], preds: List[int]
    ) -> List[int]:
        enter = self._stmt_node("with", stmt, preds)
        # __exit__ runs on both ways out of the body; exceptions continue
        # outward after it (a suppressing manager also continues normally,
        # which the shared normal out-edge models).
        leave = self.cfg._new("with-exit", stmt)
        self.exc_stack.append(leave.index)
        body_out = self.build_body(stmt.body, [enter.index])
        self.exc_stack.pop()
        self._connect(body_out, leave.index)
        self.cfg._edge(leave.index, self.exc_stack[-1], EXCEPTION)
        return [leave.index]

    def _build_try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        dispatch = self.cfg._new("dispatch", stmt)
        has_finally = bool(stmt.finalbody)
        fin_gate: Optional[CFGNode] = None
        if has_finally:
            # Exceptional control (uncaught dispatch, raising handlers)
            # funnels through this gate into the single-copy finally.
            fin_gate = self.cfg._new("finally", stmt)
        # The target exceptions-in-scope route to once the body is done
        # dispatching: the finally gate if there is one, else outward.
        after_exc = fin_gate.index if fin_gate is not None else self.exc_stack[-1]

        if fin_gate is not None:
            self.fin_stack.append(fin_gate.index)
        self.exc_stack.append(dispatch.index)
        body_out = self.build_body(stmt.body, list(preds))
        self.exc_stack.pop()

        self.exc_stack.append(after_exc)
        else_out = self.build_body(stmt.orelse, body_out) if stmt.orelse else body_out
        handler_out: List[int] = []
        for handler in stmt.handlers:
            head = self.cfg._new("handler", handler)
            self.cfg._edge(dispatch.index, head.index)
            handler_out += self.build_body(handler.body, [head.index])
        # An exception no handler catches continues outward (through the
        # finally when present).  Whether a handler matches is semantic in
        # general, but a bare ``except:`` / ``except BaseException:`` is a
        # syntactic catch-all — no exception escapes the dispatch past one.
        if not any(_is_catch_all(handler) for handler in stmt.handlers):
            self.cfg._edge(dispatch.index, after_exc, EXCEPTION)
        self.exc_stack.pop()
        if fin_gate is not None:
            self.fin_stack.pop()

        if not has_finally:
            return else_out + handler_out
        assert fin_gate is not None
        fin_out = self.build_body(stmt.finalbody, else_out + handler_out + [fin_gate.index])
        # Single-copy finally: it completes normally into the code after
        # the try AND re-raises outward — which continuation applies
        # depends on how it was entered, which a single copy cannot track.
        # The re-raise happens *after* the finally body completed, so it
        # funnels through a synthetic node reached by NORMAL edges (the
        # body's effects — a release in the finally — must apply on it).
        reraise = self.cfg._new("reraise", stmt)
        self._connect(fin_out, reraise.index)
        self.cfg._edge(reraise.index, self.exc_stack[-1], EXCEPTION)
        return fin_out

    def _build_match(self, stmt: ast.Match, preds: List[int]) -> List[int]:
        head = self._stmt_node("branch", stmt, preds)
        out: List[int] = [head.index]  # no case may match
        for case in stmt.cases:
            out += self.build_body(case.body, [head.index])
        return out


def build_cfg(scope: ScopeNode, name: Optional[str] = None) -> CFG:
    """Build the CFG of one scope (a function definition or a module).

    Nested function and class definitions inside ``scope`` appear as
    single ``stmt`` nodes (the definition executes; its body does not) —
    build their CFGs separately to analyse them.
    """
    if name is None:
        name = getattr(scope, "name", None) or "<module>"
    builder = _Builder(name)
    out = builder.build_body(scope.body, [builder.cfg.entry])
    builder._connect(out, builder.cfg.exit)
    return builder.cfg
