"""Bottom-up interprocedural function summaries for repro-lint.

The flow rules used to treat every call conservatively: a handle passed
to *any* call was assumed transferred, a helper that acquires and
returns a resource was invisible, a callee that draws from a generator
parameter never counted as a draw.  This module computes, for every
function in the :class:`~repro.quality.callgraph.CallGraph`, a
:class:`FunctionSummary` describing its boundary behaviour:

* ``releases`` — parameter positions whose argument is discharged
  (``close``/``unlink``/``shutdown``) on **every** normal path out of the
  callee (a must-analysis, intersection join over the callee's CFG);
* ``escapes`` — parameter positions whose argument's ownership the
  callee takes: returned, yielded, stored (on ``self``, in a container,
  as a local alias), or passed onward to a call we cannot see through;
* ``draws`` — parameter positions the callee draws from as an RNG
  stream (directly or through its own callees);
* ``returns_params`` / ``returns_resource`` / ``returns_spawn_rng`` —
  what comes back: a passed-in object, a freshly acquired resource with
  its required release actions, or a ``SeedSequence.spawn``-derived
  generator.

Summaries are computed bottom-up over the call graph's strongly
connected components; inside an SCC (recursion, mutual calls) they are
iterated from the optimistic bottom to a fixed point — every fact set
grows monotonically, so convergence is guaranteed and fast.  A function
whose body cannot be trusted (an opaque decorator wraps it, or it is a
generator whose body does not run at call time) gets the *conservative*
summary: every parameter escapes, nothing is released — which reproduces
exactly the pre-interprocedural behaviour at its call sites.

The resource/RNG model (what acquires, what releases, what draws) lives
here as the single source of truth; :mod:`repro.quality.flow_checkers`
imports it rather than redefining it.

An on-disk cache (:class:`SummaryCache`) keyed by file sha256 — plus the
sha256s of every file the summaries transitively depend on — lets CI
re-lint a one-file diff without recomputing the world.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.quality.callgraph import (
    CallGraph,
    CallResolution,
    FunctionInfo,
    ModuleInfo,
    _walk_own,
    build_call_graph,
)
from repro.quality.cfg import CFG, CFGNode, build_cfg
from repro.quality.framework import _canonical_name
from repro.quality.dataflow import Analysis, ReachingDefinitions, solve_forward

__all__ = [
    "FunctionSummary",
    "CallArgEffects",
    "ProjectContext",
    "ModuleResolver",
    "SummaryCache",
    "build_project",
    "compute_summaries",
    "resource_of_call",
    "stored_names",
    "RELEASE_METHODS",
    "OS_RELEASES",
    "ACTION_HINT",
    "WRITE_MODE_CHARS",
    "DRAW_METHODS",
    "GENERATOR_CTORS",
]


# --------------------------------------------------------------------------- #
# the resource / RNG model (single source of truth for the flow rules)
# --------------------------------------------------------------------------- #
WRITE_MODE_CHARS = frozenset("wax+")

#: method names that discharge the matching action on the receiver
RELEASE_METHODS: Dict[str, str] = {
    "close": "close",
    "unlink": "unlink",
    "shutdown": "shutdown",
}

#: ``os.*`` functions that discharge an action on their first argument
OS_RELEASES: Dict[str, str] = {
    "os.close": "close",
    "os.unlink": "unlink",
    "os.remove": "unlink",
    "os.replace": "unlink",
    "os.rename": "unlink",
}

ACTION_HINT: Dict[str, str] = {
    "close": ".close()",
    "unlink": ".unlink() (or os.unlink/os.replace for paths)",
    "shutdown": ".shutdown()",
}

#: Generator methods that consume draws (advancing the stream)
DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "uniform",
        "normal",
        "standard_normal",
        "standard_exponential",
        "standard_gamma",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "bytes",
    }
)

GENERATOR_CTORS = frozenset({"numpy.random.default_rng", "numpy.random.Generator"})


def _kwarg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _open_mode(call: ast.Call) -> Optional[str]:
    """The constant mode string of an ``open``-family call, if present."""
    candidates: List[ast.expr] = list(call.args[1:2])
    mode_kw = _kwarg(call, "mode")
    if mode_kw is not None:
        candidates.append(mode_kw)
    for candidate in candidates:
        if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
            return candidate.value
    return None


def resource_of_call(
    call: ast.Call, aliases: Dict[str, str]
) -> Optional[Tuple[str, FrozenSet[str]]]:
    """``(description, required actions)`` if ``call`` acquires a resource."""
    name = _canonical_name(call.func, aliases)
    if name is None:
        if isinstance(call.func, ast.Attribute) and call.func.attr == "open":
            mode = _open_mode(call)
            if mode is not None and set(mode) & WRITE_MODE_CHARS:
                return (f"writable .open(..., {mode!r}) handle", frozenset({"close"}))
        return None
    if name == "multiprocessing.shared_memory.SharedMemory":
        create = _kwarg(call, "create")
        if isinstance(create, ast.Constant) and create.value is True:
            return (
                "shared_memory.SharedMemory(create=True)",
                frozenset({"close", "unlink"}),
            )
        return ("shared_memory.SharedMemory attachment", frozenset({"close"}))
    if name in ("open", "os.fdopen") or name.endswith(".open"):
        mode = _open_mode(call)
        if mode is not None and set(mode) & WRITE_MODE_CHARS:
            return (f"writable {name}(..., {mode!r}) handle", frozenset({"close"}))
        return None
    if name in (
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
    ):
        return (name.rsplit(".", 1)[1], frozenset({"shutdown"}))
    return None


def stored_names(expr: Optional[ast.AST]) -> Set[str]:
    """Names whose *object itself* is stored/aliased by ``expr``.

    ``shm`` in ``refs.append(shm)`` or ``pair = (fd, tmp)`` aliases the
    resource; ``f`` in ``f.read()`` or ``f.name`` does not (only a
    method/attribute of it is used).  Containers recurse, attribute and
    subscript accesses stop.
    """
    names: Set[str] = set()
    if expr is None:
        return names
    if isinstance(expr, ast.Name):
        names.add(expr.id)
    elif isinstance(expr, ast.Starred):
        names |= stored_names(expr.value)
    elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for element in expr.elts:
            names |= stored_names(element)
    elif isinstance(expr, ast.Dict):
        for key in expr.keys:
            names |= stored_names(key)
        for value in expr.values:
            names |= stored_names(value)
    elif isinstance(expr, ast.IfExp):
        names |= stored_names(expr.body) | stored_names(expr.orelse)
    elif isinstance(expr, (ast.Await, ast.Yield, ast.YieldFrom)):
        names |= stored_names(getattr(expr, "value", None))
    return names


# --------------------------------------------------------------------------- #
# summaries
# --------------------------------------------------------------------------- #
@dataclass
class FunctionSummary:
    """Boundary behaviour of one function, in full-parameter-tuple indices."""

    releases: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    escapes: FrozenSet[int] = frozenset()
    draws: FrozenSet[int] = frozenset()
    returns_params: FrozenSet[int] = frozenset()
    returns_resource: Optional[Tuple[str, FrozenSet[str]]] = None
    returns_spawn_rng: bool = False
    trusted: bool = True

    @staticmethod
    def conservative(n_params: int) -> "FunctionSummary":
        """The don't-trust-the-body summary: every parameter escapes."""
        return FunctionSummary(escapes=frozenset(range(n_params)), trusted=False)

    def as_dict(self) -> Dict[str, object]:
        return {
            "releases": {str(i): sorted(a) for i, a in sorted(self.releases.items())},
            "escapes": sorted(self.escapes),
            "draws": sorted(self.draws),
            "returns_params": sorted(self.returns_params),
            "returns_resource": (
                [self.returns_resource[0], sorted(self.returns_resource[1])]
                if self.returns_resource is not None
                else None
            ),
            "returns_spawn_rng": self.returns_spawn_rng,
            "trusted": self.trusted,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FunctionSummary":
        releases_raw = data.get("releases", {})
        releases: Dict[int, FrozenSet[str]] = {}
        if isinstance(releases_raw, dict):
            for k, v in releases_raw.items():
                releases[int(k)] = frozenset(str(a) for a in v)  # type: ignore[union-attr]
        rr = data.get("returns_resource")
        returns_resource: Optional[Tuple[str, FrozenSet[str]]] = None
        if isinstance(rr, list) and len(rr) == 2:
            returns_resource = (str(rr[0]), frozenset(str(a) for a in rr[1]))
        return FunctionSummary(
            releases=releases,
            escapes=frozenset(int(i) for i in data.get("escapes", [])),  # type: ignore[union-attr]
            draws=frozenset(int(i) for i in data.get("draws", [])),  # type: ignore[union-attr]
            returns_params=frozenset(
                int(i) for i in data.get("returns_params", [])  # type: ignore[union-attr]
            ),
            returns_resource=returns_resource,
            returns_spawn_rng=bool(data.get("returns_spawn_rng", False)),
            trusted=bool(data.get("trusted", False)),
        )


@dataclass
class CallArgEffects:
    """What one resolved call does to the plain-``Name`` arguments it gets.

    ``kept`` is the precision win: names the callee provably neither
    releases nor takes ownership of — the caller's obligation survives
    the call instead of being conservatively discharged.
    """

    releases: List[Tuple[str, str]] = field(default_factory=list)
    escapes: Set[str] = field(default_factory=set)
    kept: Set[str] = field(default_factory=set)
    draws: Set[str] = field(default_factory=set)


def _call_name_args(
    call: ast.Call, resolution: CallResolution
) -> Iterator[Tuple[str, Optional[int], ast.expr]]:
    """``(name, param index or None, expr)`` for each argument of ``call``.

    Plain-``Name`` arguments map to a callee parameter index; anything
    else (containers, starred args, attribute loads) yields the names it
    stores with ``None`` — unmappable, so conservatively escaped.
    """
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            for name in stored_names(arg):
                yield name, None, arg
        elif isinstance(arg, ast.Name):
            yield arg.id, resolution.param_for_positional(position), arg
        else:
            for name in stored_names(arg):
                yield name, None, arg
    for kw in call.keywords:
        if kw.arg is None:  # **kwargs expansion
            for name in stored_names(kw.value):
                yield name, None, kw.value
        elif isinstance(kw.value, ast.Name):
            yield kw.value.id, resolution.param_for_keyword(kw.arg), kw.value
        else:
            for name in stored_names(kw.value):
                yield name, None, kw.value


def call_argument_effects(
    call: ast.Call, resolution: CallResolution, summary: FunctionSummary
) -> CallArgEffects:
    """Judge each argument of a resolved call against the callee summary."""
    effects = CallArgEffects()
    if not summary.trusted:
        for name, _index, _expr in _call_name_args(call, resolution):
            effects.escapes.add(name)
        return effects
    for name, index, _expr in _call_name_args(call, resolution):
        if index is None:
            effects.escapes.add(name)
            continue
        if index in summary.draws:
            effects.draws.add(name)
        released = summary.releases.get(index, frozenset())
        for action in sorted(released):
            effects.releases.append((name, action))
        if index in summary.escapes or index in summary.returns_params:
            effects.escapes.add(name)
        elif not released:
            effects.kept.add(name)
        else:
            effects.kept.add(name)
    return effects


# --------------------------------------------------------------------------- #
# the per-function summariser
# --------------------------------------------------------------------------- #
#: a discharge fact: (local name, action)
_Discharge = Tuple[str, str]
#: must-analysis state: None = unreachable (top), else discharges so far
_MustState = Optional[FrozenSet[_Discharge]]


class _MustDischargeAnalysis(Analysis[_MustState]):
    """Forward must-analysis: discharges guaranteed on every path to here.

    ``None`` is the unreachable state (identity of the intersection
    join).  Discharges apply on both normal and exceptional out-edges of
    the discharging statement — a ``close()`` that raises was still the
    release attempt, matching the intra-procedural rule's convention.
    """

    def __init__(self, discharges: Dict[int, FrozenSet[_Discharge]]) -> None:
        self._discharges = discharges

    def bottom(self) -> _MustState:
        return None

    def initial(self, cfg: CFG) -> _MustState:
        return frozenset()

    def join(self, a: _MustState, b: _MustState) -> _MustState:
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def flow(self, node: CFGNode, state: _MustState, edge_kind: str) -> _MustState:
        if state is None:
            return None
        facts = self._discharges.get(node.index)
        if facts:
            return state | facts
        return state


class _Summarizer:
    """Computes one function's summary given the current environment."""

    def __init__(
        self,
        graph: CallGraph,
        env: Dict[str, FunctionSummary],
        info: FunctionInfo,
    ) -> None:
        self.graph = graph
        self.env = env
        self.info = info
        self.module: Optional[ModuleInfo] = graph.modules.get(info.module)

    def _resolve(self, call: ast.Call) -> Optional[Tuple[CallResolution, FunctionSummary]]:
        if self.module is None:
            return None
        resolution = self.graph.resolve(call, self.module, self.info.qualname)
        if resolution is None:
            return None
        summary = self.env.get(resolution.info.key)
        if summary is None:
            # An SCC member not yet iterated.  May-facts (escapes, draws)
            # start at the empty bottom and grow; must-facts (releases)
            # start at the optimistic top — release everything — and
            # shrink, so recursion like ``release(shm) -> release(shm)``
            # converges to the greatest fixed point instead of never
            # crediting the recursive discharge.
            summary = FunctionSummary(
                releases={
                    i: frozenset(RELEASE_METHODS.values())
                    for i in range(len(resolution.info.params))
                }
            )
        return resolution, summary

    def summarize(self) -> FunctionSummary:
        info = self.info
        if not info.transparent or info.is_generator or self.module is None:
            return FunctionSummary.conservative(len(info.params))
        params = info.params
        param_index = {name: i for i, name in enumerate(params)}
        aliases = self.module.aliases

        escapes: Set[int] = set()
        draws: Set[int] = set()
        returns_params: Set[int] = set()
        returns_resource: Optional[Tuple[str, FrozenSet[str]]] = None

        cfg = build_cfg(info.node, info.qualname)  # type: ignore[arg-type]
        reaching = ReachingDefinitions(cfg, info.node)
        discharges: Dict[int, FrozenSet[_Discharge]] = {}
        return_nodes: List[CFGNode] = []

        for node in cfg.stmt_nodes():
            facts: Set[_Discharge] = set()
            for part in node.evaluated():
                for sub in ast.walk(part):
                    if not isinstance(sub, ast.Call):
                        continue
                    facts |= self._call_facts(sub, aliases, param_index, escapes, draws)
            stmt = node.stmt
            if node.kind == "stmt" and isinstance(stmt, ast.Return):
                return_nodes.append(node)
            self._escape_facts(node, param_index, escapes)
            if facts:
                discharges[node.index] = frozenset(facts)

        releases: Dict[int, FrozenSet[str]] = {}
        if discharges:
            exit_state = solve_forward(cfg, _MustDischargeAnalysis(discharges))[cfg.exit]
            if exit_state:
                for name, action in exit_state:
                    index = param_index.get(name)
                    if index is not None:
                        releases[index] = releases.get(index, frozenset()) | {action}

        spawn_votes: List[bool] = []
        for node in return_nodes:
            stmt = node.stmt
            assert isinstance(stmt, ast.Return)
            value = stmt.value
            if value is None:
                continue
            if isinstance(value, ast.Name) and value.id in param_index:
                returns_params.add(param_index[value.id])
            fresh = self._fresh_resource(value, node, reaching, aliases)
            if fresh is not None:
                returns_resource = fresh
            vote = self._spawn_rng_vote(value, node, reaching, aliases)
            if vote is not None:
                spawn_votes.append(vote)

        return FunctionSummary(
            releases=releases,
            escapes=frozenset(escapes),
            draws=frozenset(draws),
            returns_params=frozenset(returns_params),
            returns_resource=returns_resource,
            returns_spawn_rng=bool(spawn_votes) and all(spawn_votes),
            trusted=True,
        )

    # -- per-call facts -------------------------------------------------- #
    def _call_facts(
        self,
        call: ast.Call,
        aliases: Dict[str, str],
        param_index: Dict[str, int],
        escapes: Set[int],
        draws: Set[int],
    ) -> Set[_Discharge]:
        facts: Set[_Discharge] = set()
        func = call.func
        canonical = _canonical_name(func, aliases)
        if canonical in OS_RELEASES:
            if call.args and isinstance(call.args[0], ast.Name):
                facts.add((call.args[0].id, OS_RELEASES[canonical]))
            return facts
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver = func.value.id
            if func.attr in RELEASE_METHODS:
                facts.add((receiver, RELEASE_METHODS[func.attr]))
                return facts
            if func.attr in DRAW_METHODS and receiver in param_index:
                draws.add(param_index[receiver])
        resolved = self._resolve(call)
        if resolved is not None:
            resolution, summary = resolved
            effects = call_argument_effects(call, resolution, summary)
            facts.update(effects.releases)
            for name in effects.escapes:
                if name in param_index:
                    escapes.add(param_index[name])
            for name in effects.draws:
                if name in param_index:
                    draws.add(param_index[name])
        else:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for name in stored_names(arg):
                    if name in param_index:
                        escapes.add(param_index[name])
        return facts

    # -- escape facts beyond calls --------------------------------------- #
    def _escape_facts(
        self, node: CFGNode, param_index: Dict[str, int], escapes: Set[int]
    ) -> None:
        stmt = node.stmt
        if node.kind != "stmt" or stmt is None:
            if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    for name in stored_names(item.context_expr):
                        if name in param_index:
                            escapes.add(param_index[name])
            return
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Return):
            for name in stored_names(stmt.value):
                if name in param_index:
                    escapes.add(param_index[name])
            return
        if isinstance(stmt, ast.Raise):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    if sub.id in param_index:
                        escapes.add(param_index[sub.id])
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if not isinstance(value, (ast.Yield, ast.YieldFrom, ast.Await)):
                value = None  # a bare call's args are judged via _call_facts
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for name in stored_names(target):
                    if name in param_index:
                        escapes.add(param_index[name])
            return
        if value is not None:
            for name in stored_names(value):
                if name in param_index:
                    escapes.add(param_index[name])

    # -- return-value classification ------------------------------------- #
    def _fresh_resource(
        self,
        expr: ast.expr,
        node: CFGNode,
        reaching: ReachingDefinitions,
        aliases: Dict[str, str],
    ) -> Optional[Tuple[str, FrozenSet[str]]]:
        """Whether ``expr`` hands the caller a freshly acquired resource."""
        if isinstance(expr, ast.Call):
            direct = resource_of_call(expr, aliases)
            if direct is not None:
                return direct
            resolved = self._resolve(expr)
            if resolved is not None and resolved[1].trusted:
                return resolved[1].returns_resource
            return None
        if isinstance(expr, ast.Name):
            defs = reaching.def_nodes(expr.id, node.index)
            if not defs or len(reaching.defs_of(expr.id, node.index)) != len(defs):
                return None  # parameter-bound or unknown — not fresh
            found: Optional[Tuple[str, FrozenSet[str]]] = None
            for def_node in defs:
                stmt = def_node.stmt
                if not isinstance(stmt, ast.Assign) or not isinstance(
                    stmt.value, ast.Call
                ):
                    return None
                fresh = self._fresh_resource(stmt.value, def_node, reaching, aliases)
                if fresh is None:
                    return None
                found = fresh
            return found
        return None

    def _spawn_rng_vote(
        self,
        expr: ast.expr,
        node: CFGNode,
        reaching: ReachingDefinitions,
        aliases: Dict[str, str],
    ) -> Optional[bool]:
        """``True``/``False`` if ``expr`` returns a generator (spawn-derived
        or not), ``None`` if it is not a generator-valued expression."""
        if isinstance(expr, ast.Call):
            if _canonical_name(expr.func, aliases) in GENERATOR_CTORS:
                seed = expr.args[0] if expr.args else _kwarg(expr, "seed")
                return spawn_derived(seed, node.index, reaching, aliases, self, set())
            resolved = self._resolve(expr)
            if resolved is not None and resolved[1].trusted:
                if resolved[1].returns_spawn_rng:
                    return True
            return None
        if isinstance(expr, ast.Name):
            defs = reaching.def_nodes(expr.id, node.index)
            if not defs:
                return None
            votes: List[bool] = []
            for def_node in defs:
                stmt = def_node.stmt
                if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                    vote = self._spawn_rng_vote(stmt.value, def_node, reaching, aliases)
                    if vote is not None:
                        votes.append(vote)
            if votes:
                return all(votes)
            return None
        return None


def spawn_derived(
    expr: Optional[ast.expr],
    at_node: int,
    reaching: ReachingDefinitions,
    aliases: Dict[str, str],
    summarizer: Optional[_Summarizer],
    seen: Set[Tuple[str, int]],
) -> bool:
    """Whether ``expr`` provably derives from spawn/spawn_key material.

    The interprocedural extension of the PR 8 check: a call to a project
    function whose summary says ``returns_spawn_rng`` also counts (the
    helper-factory pattern).
    """
    if expr is None:
        return False
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr == "spawn":
            return True
        canonical = _canonical_name(func, aliases)
        if canonical == "numpy.random.SeedSequence":
            return _kwarg(expr, "spawn_key") is not None
        if summarizer is not None:
            resolved = summarizer._resolve(expr)
            if resolved is not None and resolved[1].trusted:
                return resolved[1].returns_spawn_rng
        return False
    if isinstance(expr, ast.Subscript):
        return spawn_derived(expr.value, at_node, reaching, aliases, summarizer, seen)
    if isinstance(expr, ast.Name):
        key = (expr.id, at_node)
        if key in seen:
            return False
        seen.add(key)
        defs = reaching.def_nodes(expr.id, at_node)
        if not defs or len(reaching.defs_of(expr.id, at_node)) != len(defs):
            return False  # entry-bound or unknown provenance
        for def_node in defs:
            stmt = def_node.stmt
            if not isinstance(stmt, ast.Assign):
                return False
            if not spawn_derived(
                stmt.value, def_node.index, reaching, aliases, summarizer, seen
            ):
                return False
        return True
    return False


# --------------------------------------------------------------------------- #
# fixed point over SCCs
# --------------------------------------------------------------------------- #
#: safety valve for SCC iteration; real components converge in 2-3 rounds
_MAX_SCC_ROUNDS = 20


def compute_summaries(
    graph: CallGraph, pinned: Optional[Dict[str, FunctionSummary]] = None
) -> Dict[str, FunctionSummary]:
    """Summaries for every indexed function, bottom-up with SCC fixed points.

    ``pinned`` entries (cache hits) are taken as-is and never recomputed.
    """
    env: Dict[str, FunctionSummary] = dict(pinned or {})
    for component in graph.sccs_bottom_up():
        todo = [key for key in component if key not in env]
        if not todo:
            continue
        for _round in range(_MAX_SCC_ROUNDS):
            changed = False
            for key in todo:
                info = graph.functions[key]
                new = _Summarizer(graph, env, info).summarize()
                if env.get(key) != new:
                    env[key] = new
                    changed = True
            if not changed:
                break
    return env


# --------------------------------------------------------------------------- #
# project context (what the checkers see)
# --------------------------------------------------------------------------- #
class ModuleResolver:
    """Per-file view of the project: resolve calls, look up summaries."""

    def __init__(self, context: "ProjectContext", module: ModuleInfo) -> None:
        self._context = context
        self.module = module

    def resolve_call(
        self, call: ast.Call, scope_qualname: str
    ) -> Optional[Tuple[CallResolution, FunctionSummary]]:
        """The callee and its summary, or ``None`` for unresolvable calls."""
        resolution = self._context.graph.resolve(call, self.module, scope_qualname)
        if resolution is None:
            return None
        summary = self._context.summaries.get(resolution.info.key)
        if summary is None:
            return None
        return resolution, summary

    def function_at(self, scope_qualname: str) -> Optional[FunctionInfo]:
        key = self.module.functions.get(scope_qualname)
        if key is None:
            return None
        return self._context.graph.functions.get(key)


class ProjectContext:
    """The interprocedural context attached to every linted file."""

    def __init__(
        self, graph: CallGraph, summaries: Dict[str, FunctionSummary]
    ) -> None:
        self.graph = graph
        self.summaries = summaries

    def resolver_for(self, display: str) -> Optional[ModuleResolver]:
        module = self.graph.modules_by_path.get(display)
        if module is None:
            return None
        return ModuleResolver(self, module)


# --------------------------------------------------------------------------- #
# the on-disk cache
# --------------------------------------------------------------------------- #
_CACHE_VERSION = 1


class SummaryCache:
    """Per-file summary cache keyed by content sha256 plus dependency shas.

    An entry for file F records F's sha256, the sha256 of every file F's
    summaries transitively depend on (callees, callees-of-callees, …) and
    the serialized summaries of F's functions.  The entry is valid only
    when every recorded sha still matches — editing any file in the
    dependency cone invalidates exactly the cones that could change.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._files: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("version") != _CACHE_VERSION:
            return
        files = raw.get("files")
        if isinstance(files, dict):
            self._files = files

    def valid_entry(
        self, display: str, shas: Dict[str, str]
    ) -> Optional[Dict[str, object]]:
        """The cached entry for ``display`` if its whole sha cone matches."""
        entry = self._files.get(display)
        if not isinstance(entry, dict):
            return None
        if entry.get("sha256") != shas.get(display):
            return None
        deps = entry.get("deps")
        if not isinstance(deps, dict):
            return None
        for dep_path, dep_sha in deps.items():
            if shas.get(dep_path) != dep_sha:
                return None
        return entry

    def store(
        self,
        display: str,
        sha: str,
        deps: Dict[str, str],
        summaries: Dict[str, FunctionSummary],
    ) -> None:
        self._files[display] = {
            "sha256": sha,
            "deps": deps,
            "summaries": {qual: s.as_dict() for qual, s in summaries.items()},
        }

    def save(self) -> None:
        # Imported lazily (as in framework.write_report) so the lint
        # framework does not pull the simulation package in at import time.
        from repro.simulation.io import atomic_write_text

        payload = json.dumps(
            {"version": _CACHE_VERSION, "files": self._files}, sort_keys=True
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self.path, payload + "\n")
        except OSError:
            pass  # a cache that cannot be written is only a missed speedup


def _transitive_file_deps(graph: CallGraph) -> Dict[str, Set[str]]:
    """For each file, the files its functions' summaries depend on."""
    direct: Dict[str, Set[str]] = {path: set() for path in graph.modules_by_path}
    for caller, callees in graph.edges.items():
        caller_path = graph.functions[caller].path
        for callee in callees:
            callee_path = graph.functions[callee].path
            if callee_path != caller_path:
                direct.setdefault(caller_path, set()).add(callee_path)
    closed: Dict[str, Set[str]] = {}

    def close(path: str, trail: Set[str]) -> Set[str]:
        if path in closed:
            return closed[path]
        if path in trail:
            return direct.get(path, set())
        trail.add(path)
        result = set(direct.get(path, set()))
        for dep in list(result):
            result |= close(dep, trail)
        trail.discard(path)
        closed[path] = result
        return result

    for path in direct:
        close(path, set())
    return closed


def build_project(
    files: Sequence[Path],
    cache_path: Optional[Path] = None,
) -> ProjectContext:
    """Index ``files``, compute (or load) summaries, return the context.

    Unparsable or unreadable files are skipped — the per-file lint pass
    reports those as ``parse`` findings; here they simply contribute no
    summaries, which degrades the affected call sites to the conservative
    behaviour.
    """
    parsed: List[Tuple[Path, ast.Module, str]] = []
    shas: Dict[str, str] = {}
    for path in files:
        display = str(path)
        try:
            blob = path.read_bytes()
            tree = ast.parse(blob.decode("utf-8"), filename=display)
        except (OSError, SyntaxError, UnicodeDecodeError):
            continue
        parsed.append((path, tree, display))
        shas[display] = hashlib.sha256(blob).hexdigest()

    graph = build_call_graph(parsed)
    cache = SummaryCache(cache_path) if cache_path is not None else None

    pinned: Dict[str, FunctionSummary] = {}
    if cache is not None:
        for display, module in graph.modules_by_path.items():
            entry = cache.valid_entry(display, shas)
            if entry is None:
                cache.misses += 1
                continue
            stored = entry.get("summaries")
            if not isinstance(stored, dict):
                cache.misses += 1
                continue
            loaded_all = True
            loaded: Dict[str, FunctionSummary] = {}
            for qual, key in module.functions.items():
                raw = stored.get(qual)
                if not isinstance(raw, dict):
                    loaded_all = False
                    break
                loaded[key] = FunctionSummary.from_dict(raw)
            if loaded_all:
                pinned.update(loaded)
                cache.hits += 1
            else:
                cache.misses += 1

    summaries = compute_summaries(graph, pinned)

    if cache is not None:
        deps = _transitive_file_deps(graph)
        for display, module in graph.modules_by_path.items():
            dep_shas = {
                dep: shas[dep] for dep in sorted(deps.get(display, ())) if dep in shas
            }
            per_file = {
                qual: summaries[key]
                for qual, key in module.functions.items()
                if key in summaries
            }
            cache.store(display, shas[display], dep_shas, per_file)
        cache.save()

    return ProjectContext(graph, summaries)
