"""Flow-sensitive repro-lint rules over the CFG/dataflow layer.

PR 7 found three bug classes *dynamically* — leaked ``/dev/shm``
segments, RNG generators reused across pool submissions, unpicklable
payloads handed to a ``ProcessPoolExecutor``.  The syntax-level checkers
in :mod:`repro.quality.checkers` cannot see any of them, because each is
a property of *paths*, not of single statements.  These checkers close
them statically:

* ``resource-leak`` — an acquired resource (``SharedMemory``,
  ``tempfile.mkstemp``, a writable ``open`` handle, an executor) must
  reach its release on **every** CFG path out of the scope, exceptional
  edges included.  Ownership transfers (returning the handle, storing it
  on ``self``, passing it to another call) end the local obligation; a
  ``self.attr`` store instead creates a class-level obligation — the
  class must release the attribute *somewhere* (that is the check that
  catches a ``_SharedBlock.release`` with the ``unlink`` deleted).
* ``rng-discipline`` — a ``numpy.random.Generator`` that flows into a
  pool ``submit(...)`` payload must have been constructed from
  ``SeedSequence.spawn(...)`` / ``SeedSequence(..., spawn_key=...)``
  material, and the parent may not draw from it again afterwards (the
  determinism hazard behind PR 4/7's per-round respawn design).
* ``pickle-safety`` — arguments at ``submit(...)`` call sites must not
  be lambdas, functions defined inside a function, or bound methods /
  instances of classes that are not importable at module level: all of
  them fail to pickle only once a worker pool is actually in play.

Since PR 10 the two resource/RNG rules are *interprocedural* when the
run carries a project context (:class:`~repro.quality.summaries.ProjectContext`
on :attr:`FileContext.project`): a call that resolves to an indexed
project function is judged by that callee's summary — a helper that
releases its argument on every path discharges the caller's obligation,
a helper that merely reads it leaves the obligation live (the old
"passing a handle to *any* call transfers ownership" hole), a helper
that *returns* a fresh resource creates an obligation at the call site,
and a callee that draws from a generator parameter counts as a parent
draw.  Without the context (``lint_text``, ``--no-summaries``) every
rule degrades to exactly the old per-function conservatism.

Known imprecision (see ``docs/linting.md``): unresolved calls still
transfer ownership, the single-copy ``finally`` merges continuations,
and only locally-constructed (or summary-proven) generators are typed.
All three rules err quiet on unknowns and loud on paths they can prove.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.quality.cfg import CFG, CFGNode, EXCEPTION, ScopeNode, build_cfg
from repro.quality.dataflow import (
    Analysis,
    ReachingDefinitions,
    assigned_names,
    solve_forward,
)
from repro.quality.framework import (
    Checker,
    FileContext,
    Finding,
    _canonical_name,
    _import_aliases,
    register_checker,
)
from repro.quality.summaries import (
    ACTION_HINT as _ACTION_HINT,
    DRAW_METHODS as _DRAW_METHODS,
    GENERATOR_CTORS as _GENERATOR_CTORS,
    OS_RELEASES as _OS_RELEASES,
    RELEASE_METHODS as _RELEASE_METHODS,
    WRITE_MODE_CHARS as _WRITE_MODE_CHARS,
    ModuleResolver,
    call_argument_effects,
    resource_of_call as _resource_of_call,
    stored_names as _stored_names,
)

__all__ = [
    "ResourceLeakChecker",
    "RngDisciplineChecker",
    "PickleSafetyChecker",
]


# --------------------------------------------------------------------------- #
# scope discovery shared by the three rules
# --------------------------------------------------------------------------- #
@dataclass
class _Scope:
    """One analysable scope with its graph, dataflow facts and context."""

    node: ScopeNode
    name: str
    cfg: CFG
    reaching: ReachingDefinitions
    #: function names bound inside an enclosing (or this) *function* body —
    #: none of them is importable at module level, so none pickles
    local_funcs: FrozenSet[str]
    #: class names bound inside an enclosing (or this) function body
    local_classes: FrozenSet[str]
    #: the nearest enclosing class is itself defined inside a function
    class_is_local: bool


def _shallow_defs(body: Sequence[ast.stmt]) -> Tuple[Set[str], Set[str]]:
    """Function/class names bound in ``body`` without entering new scopes."""
    funcs: Set[str] = set()
    classes: Set[str] = set()
    stack: List[ast.stmt] = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            funcs.add(stmt.name)
            continue  # its body is a new scope
        if isinstance(stmt, ast.ClassDef):
            classes.add(stmt.name)
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            # compound statements hold their sub-statements in list fields
        for field in ("body", "orelse", "finalbody", "handlers", "cases"):
            for sub in getattr(stmt, field, []) or []:
                inner = getattr(sub, "body", None)
                if isinstance(sub, ast.stmt):
                    continue  # already queued via iter_child_nodes
                if inner:
                    stack.extend(s for s in inner if isinstance(s, ast.stmt))
    return funcs, classes


def _iter_scopes(tree: ast.Module) -> Iterator[_Scope]:
    """Yield the module scope and every function scope, outermost first."""

    def make(
        scope: ScopeNode,
        name: str,
        funcs: FrozenSet[str],
        classes: FrozenSet[str],
        class_is_local: bool,
    ) -> _Scope:
        cfg = build_cfg(scope, name)
        return _Scope(
            node=scope,
            name=name,
            cfg=cfg,
            reaching=ReachingDefinitions(cfg, scope),
            local_funcs=funcs,
            local_classes=classes,
            class_is_local=class_is_local,
        )

    def walk(
        body: Sequence[ast.stmt],
        prefix: str,
        funcs: FrozenSet[str],
        classes: FrozenSet[str],
        in_function: bool,
        class_is_local: bool,
    ) -> Iterator[_Scope]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                own_funcs, own_classes = _shallow_defs(stmt.body)
                child_funcs = funcs | frozenset(own_funcs)
                child_classes = classes | frozenset(own_classes)
                name = f"{prefix}{stmt.name}"
                yield make(stmt, name, child_funcs, child_classes, class_is_local)
                yield from walk(
                    stmt.body, name + ".", child_funcs, child_classes, True, class_is_local
                )
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(
                    stmt.body,
                    f"{prefix}{stmt.name}.",
                    funcs,
                    classes,
                    in_function,
                    class_is_local or in_function,
                )
            else:
                nested = [
                    s
                    for field in ("body", "orelse", "finalbody")
                    for s in getattr(stmt, field, [])
                ]
                for handler in getattr(stmt, "handlers", []):
                    nested.extend(handler.body)
                for case in getattr(stmt, "cases", []):
                    nested.extend(case.body)
                if nested:
                    yield from walk(
                        nested, prefix, funcs, classes, in_function, class_is_local
                    )

    yield make(tree, "<module>", frozenset(), frozenset(), False)
    yield from walk(tree.body, "", frozenset(), frozenset(), False, False)


# --------------------------------------------------------------------------- #
# small expression helpers
# --------------------------------------------------------------------------- #
def _iter_calls(parts: Sequence[ast.AST]) -> Iterator[ast.Call]:
    for part in parts:
        for sub in ast.walk(part):
            if isinstance(sub, ast.Call):
                yield sub


def _call_arg_exprs(call: ast.Call) -> List[ast.expr]:
    return list(call.args) + [kw.value for kw in call.keywords]


def _is_submit_call(call: ast.Call) -> bool:
    """A pool submission: ``<executor>.submit(...)`` of any executor."""
    return isinstance(call.func, ast.Attribute) and call.func.attr == "submit"


def _kwarg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


# --------------------------------------------------------------------------- #
# resource-leak
# --------------------------------------------------------------------------- #
#: an unmet obligation: (variable, required action, alloc line, description)
_Obligation = Tuple[str, str, int, str]


@dataclass
class _NodeEffects:
    """Precomputed per-node gen/kill facts for the obligation analysis."""

    gens: Tuple[_Obligation, ...] = ()
    releases: FrozenSet[Tuple[str, str]] = frozenset()
    escapes: FrozenSet[str] = frozenset()
    rebinds: FrozenSet[str] = frozenset()


class _ObligationAnalysis(Analysis[FrozenSet[_Obligation]]):
    """Forward may-analysis: which acquisitions are still unreleased here.

    Union join: an obligation present at an exit means *some* path
    reaches that exit without discharging it.  Acquisitions apply on
    normal edges only (on an exceptional edge the assignment never
    bound).  Releases and ownership-transferring escapes apply on both:
    a ``close()`` that raises was still the release attempt (flagging
    "your release might itself fail" would indict every correct
    ``finally``), and a handle that reached another call is no longer
    ours to prove.
    """

    def __init__(self, effects: Dict[int, _NodeEffects]) -> None:
        self._effects = effects

    def bottom(self) -> FrozenSet[_Obligation]:
        return frozenset()

    def join(
        self, a: FrozenSet[_Obligation], b: FrozenSet[_Obligation]
    ) -> FrozenSet[_Obligation]:
        return a | b

    def flow(
        self, node: CFGNode, state: FrozenSet[_Obligation], edge_kind: str
    ) -> FrozenSet[_Obligation]:
        fx = self._effects.get(node.index)
        if fx is None:
            return state
        if edge_kind == EXCEPTION:
            if not fx.escapes and not fx.releases:
                return state
            return frozenset(
                o
                for o in state
                if o[0] not in fx.escapes and (o[0], o[1]) not in fx.releases
            )
        kept = frozenset(
            o
            for o in state
            if o[0] not in fx.escapes
            and o[0] not in fx.rebinds
            and (o[0], o[1]) not in fx.releases
        )
        return kept | frozenset(fx.gens)


@register_checker
class ResourceLeakChecker(Checker):
    """Every acquired resource must reach its release on all CFG paths.

    Locals are tracked flow-sensitively (see
    :class:`_ObligationAnalysis`); resources stored on ``self`` become a
    class-level obligation — some method of the class must discharge
    every required action on that attribute, or the acquisition is
    flagged.  ``with``-managed handles are released by construction and
    never tracked.
    """

    rule_id = "resource-leak"
    description = (
        "shared memory, temp files, writable handles and executors must be "
        "released on every path (exceptional paths included)"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        resolver = (
            ctx.project.resolver_for(ctx.display) if ctx.project is not None else None
        )
        for scope in _iter_scopes(ctx.tree):
            yield from self._check_scope(scope, aliases, ctx, resolver)
        yield from self._check_classes(ctx.tree, aliases, ctx)

    # -- local (flow-sensitive) obligations ----------------------------- #
    def _returned_resource(
        self,
        call: ast.Call,
        resolver: Optional[ModuleResolver],
        scope_name: str,
    ) -> Optional[Tuple[str, FrozenSet[str]]]:
        """A fresh resource handed back by a summarised project callee."""
        if resolver is None:
            return None
        resolved = resolver.resolve_call(call, scope_name)
        if resolved is None or not resolved[1].trusted:
            return None
        returned = resolved[1].returns_resource
        if returned is None:
            return None
        desc, actions = returned
        return (f"{desc} (returned by {resolved[0].info.qualname})", actions)

    def _node_effects(
        self,
        node: CFGNode,
        aliases: Dict[str, str],
        resolver: Optional[ModuleResolver],
        scope_name: str,
    ) -> Optional[_NodeEffects]:
        stmt = node.stmt
        parts = node.evaluated()
        gens: List[_Obligation] = []
        releases: Set[Tuple[str, str]] = set()
        escapes: Set[str] = set()

        if node.kind == "stmt" and isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if isinstance(value, ast.Call):
                resource = _resource_of_call(value, aliases) or self._returned_resource(
                    value, resolver, scope_name
                )
                canonical = _canonical_name(value.func, aliases)
                if canonical == "tempfile.mkstemp" and len(targets) == 1:
                    target = targets[0]
                    if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                        fd_t, path_t = target.elts
                        if isinstance(fd_t, ast.Name):
                            gens.append(
                                (fd_t.id, "close", node.line, "tempfile.mkstemp() fd")
                            )
                        if isinstance(path_t, ast.Name):
                            gens.append(
                                (path_t.id, "unlink", node.line, "tempfile.mkstemp() path")
                            )
                elif resource is not None and len(targets) == 1:
                    target = targets[0]
                    if isinstance(target, ast.Name):
                        desc, actions = resource
                        for action in sorted(actions):
                            gens.append((target.id, action, node.line, desc))

        # Releases: the os.* forms (checked first — ``os.close(fd)`` must
        # not read as a ``close`` method on a receiver named ``os``), then
        # the method form on the tracked name.
        for call in _iter_calls(parts):
            func = call.func
            canonical = _canonical_name(func, aliases)
            if canonical in _OS_RELEASES:
                if call.args and isinstance(call.args[0], ast.Name):
                    releases.add((call.args[0].id, _OS_RELEASES[canonical]))
                continue
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _RELEASE_METHODS
            ):
                releases.add((func.value.id, _RELEASE_METHODS[func.attr]))
            resolved = (
                resolver.resolve_call(call, scope_name)
                if resolver is not None
                else None
            )
            if resolved is not None:
                # The callee's summary judges each argument: releases
                # discharge, escapes transfer ownership, kept arguments
                # leave the caller's obligation live — the precision the
                # old "any call transfers ownership" rule threw away.
                fx = call_argument_effects(call, resolved[0], resolved[1])
                releases.update(fx.releases)
                escapes |= fx.escapes
            else:
                # Ownership transfer: the handle passed to an unknown call.
                for arg in _call_arg_exprs(call):
                    escapes |= _stored_names(arg)

        # Ownership transfer: returned, raised, yielded, aliased, deleted.
        if node.kind == "stmt":
            if isinstance(stmt, ast.Return):
                # Only the object itself transfers — ``return shm`` hands
                # ownership to the caller, ``return shm.size`` does not
                # (call arguments inside the value were judged above).
                escapes |= _stored_names(stmt.value)
            elif isinstance(stmt, ast.Raise):
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        escapes.add(sub.id)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    escapes |= _stored_names(target)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                escapes |= _stored_names(stmt.value)
            elif isinstance(stmt, ast.Expr):
                escapes |= _stored_names(stmt.value)  # bare yield/await
        elif node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                escapes |= _stored_names(item.context_expr)

        gen_names = {g[0] for g in gens}
        rebinds = frozenset(name for name in assigned_names(node) if name not in gen_names)
        if not gens and not releases and not escapes and not rebinds:
            return None
        return _NodeEffects(
            gens=tuple(gens),
            releases=frozenset(releases),
            escapes=frozenset(escapes),
            rebinds=rebinds,
        )

    def _check_scope(
        self,
        scope: _Scope,
        aliases: Dict[str, str],
        ctx: FileContext,
        resolver: Optional[ModuleResolver],
    ) -> Iterator[Finding]:
        effects: Dict[int, _NodeEffects] = {}
        any_gen = False
        for node in scope.cfg.stmt_nodes():
            fx = self._node_effects(node, aliases, resolver, scope.name)
            if fx is not None:
                effects[node.index] = fx
                any_gen = any_gen or bool(fx.gens)
        if not any_gen:
            return
        in_states = solve_forward(scope.cfg, _ObligationAnalysis(effects))
        at_exit = in_states[scope.cfg.exit]
        at_raise = in_states[scope.cfg.raise_exit]
        for obligation in sorted(at_exit | at_raise):
            var, action, line, desc = obligation
            where = (
                "on an exceptional path"
                if obligation not in at_exit
                else "on some path"
            )
            yield self.finding(
                ctx,
                line,
                f"{desc} held by {var!r} may never reach "
                f"{_ACTION_HINT[action]} {where} out of {scope.name} — release "
                "it in a finally block (or hand ownership off explicitly)",
            )

    # -- class-level (self-attribute) obligations ----------------------- #
    def _check_classes(
        self, tree: ast.Module, aliases: Dict[str, str], ctx: FileContext
    ) -> Iterator[Finding]:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            acquisitions: List[Tuple[str, FrozenSet[str], int, str]] = []
            satisfied: Set[Tuple[str, str]] = set()
            for sub in ast.walk(cls):
                if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                    resource = _resource_of_call(sub.value, aliases)
                    if resource is not None:
                        for target in sub.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                desc, actions = resource
                                acquisitions.append(
                                    (target.attr, actions, sub.lineno, desc)
                                )
                if isinstance(sub, ast.Call):
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _RELEASE_METHODS
                        and isinstance(func.value, ast.Attribute)
                        and isinstance(func.value.value, ast.Name)
                        and func.value.value.id == "self"
                    ):
                        satisfied.add((func.value.attr, _RELEASE_METHODS[func.attr]))
                    canonical = _canonical_name(func, aliases)
                    if canonical in _OS_RELEASES and sub.args:
                        first = sub.args[0]
                        if (
                            isinstance(first, ast.Attribute)
                            and isinstance(first.value, ast.Name)
                            and first.value.id == "self"
                        ):
                            satisfied.add((first.attr, _OS_RELEASES[canonical]))
            for attr, actions, line, desc in acquisitions:
                missing = sorted(a for a in actions if (attr, a) not in satisfied)
                if missing:
                    hints = " and ".join(_ACTION_HINT[a] for a in missing)
                    yield self.finding(
                        ctx,
                        line,
                        f"{desc} stored on self.{attr} but class {cls.name} "
                        f"never calls {hints} on it — the segment outlives "
                        "every instance",
                    )


# --------------------------------------------------------------------------- #
# rng-discipline
# --------------------------------------------------------------------------- #
class _EscapedSetAnalysis(Analysis[FrozenSet[str]]):
    """Forward may-analysis of names escaped into a pool submission."""

    def __init__(
        self, gen_at: Dict[int, FrozenSet[str]], rebinds: Dict[int, FrozenSet[str]]
    ) -> None:
        self._gen_at = gen_at
        self._rebinds = rebinds

    def bottom(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer(self, node: CFGNode, state: FrozenSet[str]) -> FrozenSet[str]:
        state -= self._rebinds.get(node.index, frozenset())
        return state | self._gen_at.get(node.index, frozenset())


@register_checker
class RngDisciplineChecker(Checker):
    """Spawn-derived streams only may cross a pool boundary, and one way.

    Draw-for-draw determinism under sharding/retry rests on the PR 4
    convention: every worker derives its stream from
    ``SeedSequence(entropy, spawn_key=...)`` / ``SeedSequence.spawn()``,
    and the parent never touches a stream once a worker owns it.  This
    rule checks both halves at every ``submit(...)`` site.
    """

    rule_id = "rng-discipline"
    description = (
        "generators crossing a pool submit() must be SeedSequence.spawn-"
        "derived and never drawn from again in the parent"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        resolver = (
            ctx.project.resolver_for(ctx.display) if ctx.project is not None else None
        )
        for scope in _iter_scopes(ctx.tree):
            yield from self._check_scope(scope, aliases, ctx, resolver)

    # -- construction provenance ---------------------------------------- #
    def _generator_def(
        self,
        node: CFGNode,
        aliases: Dict[str, str],
        resolver: Optional[ModuleResolver],
        scope_name: str,
    ) -> Optional[Tuple[str, Optional[ast.expr]]]:
        """``(name, seed expr)`` if ``node`` binds a Generator to a Name.

        With a project context, ``rng = make_rng(...)`` where the callee's
        summary proves ``returns_spawn_rng`` also counts — the seed expr is
        the call itself, which :meth:`_spawn_derived` then re-validates
        through the same summary.
        """
        stmt = node.stmt
        if node.kind != "stmt" or not isinstance(stmt, ast.Assign):
            return None
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return None
        value = stmt.value
        if not isinstance(value, ast.Call):
            return None
        if _canonical_name(value.func, aliases) in _GENERATOR_CTORS:
            seed = value.args[0] if value.args else _kwarg(value, "seed")
            return (stmt.targets[0].id, seed)
        if resolver is not None:
            resolved = resolver.resolve_call(value, scope_name)
            if (
                resolved is not None
                and resolved[1].trusted
                and resolved[1].returns_spawn_rng
            ):
                return (stmt.targets[0].id, value)
        return None

    def _spawn_derived(
        self,
        expr: Optional[ast.expr],
        at_node: int,
        scope: _Scope,
        aliases: Dict[str, str],
        seen: Set[Tuple[str, int]],
        resolver: Optional[ModuleResolver],
    ) -> bool:
        """Whether ``expr`` provably derives from spawn/spawn_key material."""
        if expr is None:
            return False
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr == "spawn":
                return True
            canonical = _canonical_name(func, aliases)
            if canonical == "numpy.random.SeedSequence":
                return _kwarg(expr, "spawn_key") is not None
            if resolver is not None:
                resolved = resolver.resolve_call(expr, scope.name)
                if (
                    resolved is not None
                    and resolved[1].trusted
                    and resolved[1].returns_spawn_rng
                ):
                    return True
            return False
        if isinstance(expr, ast.Subscript):
            return self._spawn_derived(
                expr.value, at_node, scope, aliases, seen, resolver
            )
        if isinstance(expr, ast.Name):
            key = (expr.id, at_node)
            if key in seen:
                return False
            seen.add(key)
            defs = scope.reaching.def_nodes(expr.id, at_node)
            if not defs or len(scope.reaching.defs_of(expr.id, at_node)) != len(defs):
                return False  # entry-bound or unknown provenance
            for def_node in defs:
                stmt = def_node.stmt
                if not isinstance(stmt, ast.Assign):
                    return False
                if not self._spawn_derived(
                    stmt.value, def_node.index, scope, aliases, seen, resolver
                ):
                    return False
            return True
        return False

    # -- payload expansion ---------------------------------------------- #
    def _payload_names(
        self, call: ast.Call, at_node: int, scope: _Scope, depth: int = 2
    ) -> Set[str]:
        """Names flowing into the submit payload, one aliasing hop deep."""
        names: Set[str] = set()
        for arg in _call_arg_exprs(call):
            names |= _stored_names(arg)
        frontier = set(names)
        for _ in range(depth):
            expanded: Set[str] = set()
            for name in frontier:
                for def_node in scope.reaching.def_nodes(name, at_node):
                    stmt = def_node.stmt
                    if isinstance(stmt, ast.Assign):
                        expanded |= _stored_names(stmt.value)
            new = expanded - names
            if not new:
                break
            names |= new
            frontier = new
        return names

    def _check_scope(
        self,
        scope: _Scope,
        aliases: Dict[str, str],
        ctx: FileContext,
        resolver: Optional[ModuleResolver],
    ) -> Iterator[Finding]:
        gen_defs: Dict[int, Tuple[str, Optional[ast.expr]]] = {}
        for node in scope.cfg.stmt_nodes():
            found = self._generator_def(node, aliases, resolver, scope.name)
            if found is not None:
                gen_defs[node.index] = found
        if not gen_defs:
            return

        escaped_at: Dict[int, FrozenSet[str]] = {}
        rebinds: Dict[int, FrozenSet[str]] = {}
        findings: List[Finding] = []
        for node in scope.cfg.stmt_nodes():
            bound = assigned_names(node)
            if bound:
                rebinds[node.index] = frozenset(bound)
            for call in _iter_calls(node.evaluated()):
                if not _is_submit_call(call):
                    continue
                submitted = self._payload_names(call, node.index, scope)
                escaping: Set[str] = set()
                for name in sorted(submitted):
                    reaching_defs = scope.reaching.defs_of(name, node.index)
                    gen_sites = [i for i in reaching_defs if i in gen_defs]
                    if not gen_sites:
                        continue
                    escaping.add(name)
                    for site in gen_sites:
                        _, seed = gen_defs[site]
                        if not self._spawn_derived(
                            seed, site, scope, aliases, set(), resolver
                        ):
                            findings.append(
                                self.finding(
                                    ctx,
                                    node.line,
                                    f"generator {name!r} flows into a pool "
                                    "submit() but does not derive from "
                                    "SeedSequence.spawn()/spawn_key material "
                                    f"(constructed at line {scope.cfg.node(site).line}) "
                                    "— worker streams must be spawn-derived",
                                )
                            )
                if escaping:
                    escaped_at[node.index] = escaped_at.get(
                        node.index, frozenset()
                    ) | frozenset(escaping)
        yield from findings
        if not escaped_at:
            return

        in_states = solve_forward(
            scope.cfg, _EscapedSetAnalysis(escaped_at, rebinds)
        )
        for node in scope.cfg.stmt_nodes():
            escaped = in_states[node.index]
            if not escaped:
                continue
            for call in _iter_calls(node.evaluated()):
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _DRAW_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in escaped
                ):
                    yield self.finding(
                        ctx,
                        node.line,
                        f"parent draws from generator {func.value.id!r} after it "
                        "escaped into a pool submit() — the worker owns that "
                        "stream now; respawn a child stream instead",
                    )
                    continue
                if resolver is None or _is_submit_call(call):
                    continue
                resolved = resolver.resolve_call(call, scope.name)
                if resolved is None:
                    continue
                fx = call_argument_effects(call, resolved[0], resolved[1])
                for name in sorted(fx.draws & escaped):
                    yield self.finding(
                        ctx,
                        node.line,
                        f"parent passes escaped generator {name!r} to "
                        f"{resolved[0].info.qualname}(), which draws from it — "
                        "the worker owns that stream now; respawn a child "
                        "stream instead",
                    )


# --------------------------------------------------------------------------- #
# pickle-safety
# --------------------------------------------------------------------------- #
@register_checker
class PickleSafetyChecker(Checker):
    """Pool ``submit(...)`` payloads must survive the pickle boundary.

    Lambdas, functions defined inside functions, and bound methods or
    instances of classes that are not importable at module level all
    pickle by qualified name — and fail only at runtime, inside a
    worker, after the pool is already live.  Flag them at the submit
    site instead.
    """

    rule_id = "pickle-safety"
    description = (
        "no lambdas, locally-defined functions, or bound methods of "
        "non-module-level classes in pool submit() arguments"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for scope in _iter_scopes(ctx.tree):
            yield from self._check_scope(scope, ctx)

    def _local_instance_def(self, name: str, at_node: int, scope: _Scope) -> bool:
        """Whether ``name``'s reaching defs instantiate a local class."""
        defs = scope.reaching.def_nodes(name, at_node)
        for def_node in defs:
            stmt = def_node.stmt
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id in scope.local_classes
            ):
                return True
        return False

    def _check_arg(
        self, arg: ast.expr, node: CFGNode, scope: _Scope, ctx: FileContext
    ) -> Iterator[Finding]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Lambda):
                yield self.finding(
                    ctx,
                    getattr(sub, "lineno", node.line),
                    "lambda in a pool submit() payload cannot be pickled — "
                    "use a module-level function",
                )
        if isinstance(arg, ast.Name):
            if arg.id in scope.local_funcs:
                yield self.finding(
                    ctx,
                    node.line,
                    f"{arg.id!r} is defined inside a function; it pickles by "
                    "qualified name and will fail in the worker — move it to "
                    "module level",
                )
                return
            for def_node in scope.reaching.def_nodes(arg.id, node.index):
                stmt = def_node.stmt
                if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
                    yield self.finding(
                        ctx,
                        node.line,
                        f"{arg.id!r} is bound to a lambda (line "
                        f"{def_node.line}) — not picklable across the pool "
                        "boundary",
                    )
                    return
            if self._local_instance_def(arg.id, node.index, scope):
                yield self.finding(
                    ctx,
                    node.line,
                    f"{arg.id!r} is an instance of a class defined inside a "
                    "function — instances of non-module-level classes cannot "
                    "be pickled",
                )
        elif isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            owner = arg.value.id
            if owner == "self" and scope.class_is_local:
                yield self.finding(
                    ctx,
                    node.line,
                    f"bound method self.{arg.attr} of a class defined inside "
                    "a function cannot be pickled — hoist the class to module "
                    "level or submit a module-level function",
                )
            elif owner != "self" and self._local_instance_def(
                owner, node.index, scope
            ):
                yield self.finding(
                    ctx,
                    node.line,
                    f"bound method {owner}.{arg.attr} of a non-module-level "
                    "class cannot be pickled across the pool boundary",
                )

    def _check_scope(self, scope: _Scope, ctx: FileContext) -> Iterator[Finding]:
        for node in scope.cfg.stmt_nodes():
            for call in _iter_calls(node.evaluated()):
                if not _is_submit_call(call):
                    continue
                for arg in _call_arg_exprs(call):
                    yield from self._check_arg(arg, node, scope, ctx)
