"""Static contracts for the packed-``uint64`` bitset kernels.

:mod:`repro.graphs.bitset` packs each boolean row into ``uint64`` words,
and every kernel leans on four invariants that nothing checks at runtime:

* **dtype preservation** — packed rows must stay ``uint64``.  NumPy
  silently upcasts mixed-dtype arithmetic, so a stray ``+`` or ``*`` on a
  packed operand yields a ``float64`` row whose bits are no longer the
  membership set.  Set union is ``|``, never ``+``.
* **no aliased ``out=``** — a ufunc call with ``out=`` (or a ``ufunc.at``
  scatter, or an augmented assignment) must not *read* a different view
  of the array it writes: NumPy makes no ordering guarantee on partially
  overlapping operands.  Reading the identical view is fine —
  ``np.bitwise_or(a[s], b, out=a[s])`` is element-wise in-place.
* **canonical row width** — the word count for ``n`` bits is
  ``(n + 63) >> 6``, spelled :func:`repro.graphs.bitset.words_for`.
  ``n // 64`` drops the ragged tail word and ``n / 64`` is a float.
* **masked complements** — ``~row`` sets every bit of the trailing word,
  including the padding bits beyond ``n``.  A complement may only appear
  under an AND mask (the ``x & ~y`` form), never stored or counted raw.

The ``kernel-contract`` rule enforces all four — inside the kernel module
itself (parameters declared packed by :data:`KERNEL_CONTRACTS`) and at
every call site that imports it (values returned by packed-returning
kernels are tracked through assignments, bitwise operators, subscripts
and ``.copy()``/``.reshape()``).  Files that never touch the bitset
module are skipped outright.  In the kernel module the contract table is
additionally checked against ``__all__`` both ways, so a new public
kernel cannot ship without declaring its contract and a renamed
parameter cannot leave a stale one behind.

Known imprecision (documented, accepted): taint is per-scope and
name-based, so packed arrays smuggled through containers, attributes
(other than ``DeltaRows.bits``) or helper returns without a contract are
invisible, and a word *index* computed as ``i // 64`` instead of
``i >> 6`` is flagged as a width violation — inside packed code that
spelling is reserved for widths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.quality.framework import (
    Checker,
    FileContext,
    Finding,
    _canonical_name,
    _import_aliases,
    register_checker,
)

__all__ = [
    "KernelContract",
    "KERNEL_CONTRACTS",
    "DELTAROWS_PACKED_PARAMS",
    "KernelContractChecker",
]

#: canonical module path of the kernel module.
_BITSET = "repro.graphs.bitset"


@dataclass(frozen=True)
class KernelContract:
    """Packed-row facts about one public name of the kernel module.

    ``kind`` is ``"function"`` for kernels, ``"constant"`` for module
    constants and ``"class"`` for the accumulator class (whose ``bits``
    attribute is a packed matrix).  ``packed_params`` names the
    parameters that carry packed rows; ``returns_packed`` marks kernels
    whose return value is a packed array (the taint sources at call
    sites).
    """

    kind: str = "function"
    packed_params: Tuple[str, ...] = ()
    returns_packed: bool = False


#: contract table — one entry per name in the kernel module's ``__all__``.
KERNEL_CONTRACTS: Dict[str, KernelContract] = {
    "WORD_BITS": KernelContract(kind="constant"),
    "words_for": KernelContract(),
    "zeros": KernelContract(returns_packed=True),
    "pack_bool_matrix": KernelContract(returns_packed=True),
    "unpack_bool_matrix": KernelContract(packed_params=("bits",)),
    "get_bit": KernelContract(packed_params=("bits",)),
    "set_bit": KernelContract(packed_params=("bits",)),
    "get_bits": KernelContract(packed_params=("bits",)),
    "set_bits": KernelContract(packed_params=("bits",)),
    "clear_bits": KernelContract(packed_params=("bits",)),
    "popcount": KernelContract(packed_params=("bits",)),
    "row_popcounts": KernelContract(packed_params=("bits",)),
    "count_total": KernelContract(packed_params=("bits",)),
    "or_rows": KernelContract(packed_params=("bits",), returns_packed=True),
    "rows_or_into": KernelContract(packed_params=("dst_bits", "src_bits")),
    "or_into_range": KernelContract(packed_params=("dst_bits", "src_block")),
    "DeltaRows": KernelContract(kind="class"),
    "delta_edges": KernelContract(packed_params=("old_bits", "new_bits")),
    "indices_from_bits": KernelContract(packed_params=("row",)),
    "transitive_closure_bits": KernelContract(packed_params=("bits",), returns_packed=True),
    "closure_add_edges": KernelContract(packed_params=("reach",)),
    "reachable_bits": KernelContract(packed_params=("bits",), returns_packed=True),
    "bfs_distances_bits": KernelContract(packed_params=("bits",)),
    "transpose_bits": KernelContract(packed_params=("bits",), returns_packed=True),
}

#: packed parameters of ``DeltaRows`` methods (``self.bits`` is packed too).
DELTAROWS_PACKED_PARAMS: Dict[str, Tuple[str, ...]] = {
    "add_edges": (),
    "or_into_range": ("src_block",),
    "new_edges": ("base_bits",),
}

#: numpy ufuncs that keep packed operands packed.
_NP_BITWISE = frozenset(
    {
        "numpy.bitwise_or",
        "numpy.bitwise_and",
        "numpy.bitwise_xor",
        "numpy.bitwise_not",
        "numpy.invert",
        "numpy.left_shift",
        "numpy.right_shift",
    }
)

#: numpy array constructors — packed when built with ``dtype=np.uint64``.
_NP_CTORS = frozenset(
    {
        "numpy.zeros",
        "numpy.empty",
        "numpy.full",
        "numpy.array",
        "numpy.asarray",
        "numpy.ascontiguousarray",
    }
)

#: constructors that also *propagate* taint when no dtype is given.
_NP_PASSTHROUGH = frozenset({"numpy.array", "numpy.asarray", "numpy.ascontiguousarray"})

#: methods that return a same-dtype view/copy of their receiver.
_SHAPE_METHODS = frozenset({"copy", "reshape", "ravel", "squeeze"})

#: arithmetic operators that upcast or scramble packed words.
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)

_OP_GLYPH = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
}


def _root_name(node: ast.expr) -> Optional[str]:
    """Base variable of a subscript/attribute chain (``a[k][None]`` -> ``a``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s own statements, not nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class _PackedEnv:
    """Per-scope taint: which local names hold packed rows / DeltaRows."""

    packed: Set[str] = field(default_factory=set)
    delta: Set[str] = field(default_factory=set)
    self_is_delta: bool = False


class _Scope:
    """One analysis scope (the module body or a single function body)."""

    def __init__(
        self,
        node: ast.AST,
        aliases: Dict[str, str],
        kernel_module: bool,
        env: _PackedEnv,
    ) -> None:
        self.node = node
        self.aliases = aliases
        self.kernel_module = kernel_module
        self.env = env

    # -- resolution -------------------------------------------------------- #
    def contract_for_call(self, call: ast.Call) -> Optional[KernelContract]:
        """Contract of the kernel this call resolves to, if any."""
        if self.kernel_module and isinstance(call.func, ast.Name):
            contract = KERNEL_CONTRACTS.get(call.func.id)
            if contract is not None:
                return contract
        name = _canonical_name(call.func, self.aliases)
        if name is not None and name.startswith(_BITSET + "."):
            return KERNEL_CONTRACTS.get(name[len(_BITSET) + 1 :])
        return None

    def _dtype_is_uint64(self, call: ast.Call) -> Optional[bool]:
        """True/False for an explicit ``dtype=`` keyword, None when absent."""
        for kw in call.keywords:
            if kw.arg == "dtype":
                return _canonical_name(kw.value, self.aliases) == "numpy.uint64"
        return None

    # -- taint ------------------------------------------------------------- #
    def is_packed(self, node: ast.expr) -> bool:
        """Whether ``node`` evaluates to a packed ``uint64`` row/matrix."""
        if isinstance(node, ast.Name):
            return node.id in self.env.packed
        if isinstance(node, ast.Subscript):
            return self.is_packed(node.value)
        if isinstance(node, ast.Attribute):
            # The one attribute with a contract: DeltaRows.bits.
            return (
                node.attr == "bits"
                and isinstance(node.value, ast.Name)
                and (
                    node.value.id in self.env.delta
                    or (self.env.self_is_delta and node.value.id == "self")
                )
            )
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.LShift, ast.RShift)):
                return self.is_packed(node.left) or self.is_packed(node.right)
            return False
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
            return self.is_packed(node.operand)
        if isinstance(node, ast.IfExp):
            return self.is_packed(node.body) or self.is_packed(node.orelse)
        if isinstance(node, ast.Call):
            return self._call_is_packed(node)
        return False

    def _call_is_packed(self, call: ast.Call) -> bool:
        contract = self.contract_for_call(call)
        if contract is not None:
            return contract.returns_packed
        name = _canonical_name(call.func, self.aliases)
        if name is not None:
            base = name.rsplit(".", 1)[0] if "." in name else name
            if name in _NP_BITWISE or (base in _NP_BITWISE and name.endswith((".reduce", ".accumulate"))):
                return any(self.is_packed(a) for a in call.args)
            if name in _NP_CTORS:
                explicit = self._dtype_is_uint64(call)
                if explicit is not None:
                    return explicit
                return name in _NP_PASSTHROUGH and bool(call.args) and self.is_packed(call.args[0])
        if isinstance(call.func, ast.Attribute) and call.func.attr in _SHAPE_METHODS:
            return self.is_packed(call.func.value)
        return False

    def is_delta(self, node: ast.expr) -> bool:
        """Whether ``node`` evaluates to a ``DeltaRows`` accumulator."""
        if isinstance(node, ast.Name):
            return node.id in self.env.delta
        if isinstance(node, ast.Call):
            contract = self.contract_for_call(node)
            return contract is not None and contract.kind == "class"
        return False

    def infer(self) -> None:
        """Grow the taint sets to a fixed point over this scope's body.

        Monotone (taint only grows), so statement order inside loops
        cannot starve a binding; the round cap is a safety net — each
        round either adds a name or stops, and scopes are finite.
        """
        for _ in range(32):
            changed = False
            for node in _own_nodes(self.node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.AugAssign):
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                packed = self.is_packed(value)
                delta = self.is_delta(value)
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if packed and target.id not in self.env.packed:
                        self.env.packed.add(target.id)
                        changed = True
                    if delta and target.id not in self.env.delta:
                        self.env.delta.add(target.id)
                        changed = True
            if not changed:
                return


# --------------------------------------------------------------------------- #
# the checker
# --------------------------------------------------------------------------- #
@register_checker
class KernelContractChecker(Checker):
    """Verify the packed-``uint64`` kernel contracts (see module docstring).

    Active only on the kernel module itself and on files importing it;
    everything else is out of scope by construction.
    """

    rule_id = "kernel-contract"
    description = (
        "packed-uint64 kernel contracts: no arithmetic upcasts, no aliased "
        "out= targets, canonical (n + 63) >> 6 widths, masked complements"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        kernel_module = _is_kernel_module(ctx.tree)
        imports_bitset = any(
            name == _BITSET or name.startswith(_BITSET + ".") for name in aliases.values()
        )
        if not kernel_module and not imports_bitset:
            return
        if kernel_module:
            yield from self._check_completeness(ctx)
        for scope in self._scopes(ctx.tree, aliases, kernel_module):
            scope.infer()
            yield from self._check_scope(ctx, scope)

    # -- scope construction ------------------------------------------------ #
    def _scopes(
        self, tree: ast.Module, aliases: Dict[str, str], kernel_module: bool
    ) -> Iterator[_Scope]:
        yield _Scope(tree, aliases, kernel_module, _PackedEnv())
        delta_classes = _delta_class_names(tree, aliases, kernel_module)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            env = _PackedEnv()
            owner = _owning_class(tree, node)
            params = {a.arg for a in node.args.args + node.args.kwonlyargs}
            if kernel_module:
                contract = KERNEL_CONTRACTS.get(node.name)
                if contract is not None:
                    env.packed.update(p for p in contract.packed_params if p in params)
            if owner is not None and owner in delta_classes:
                env.self_is_delta = True
                env.packed.update(
                    p for p in DELTAROWS_PACKED_PARAMS.get(node.name, ()) if p in params
                )
            yield _Scope(node, aliases, kernel_module, env)

    # -- completeness (kernel module only) --------------------------------- #
    def _check_completeness(self, ctx: FileContext) -> Iterator[Finding]:
        exported, line = _module_all(ctx.tree)
        for name in exported:
            if name not in KERNEL_CONTRACTS:
                yield self.finding(
                    ctx,
                    line,
                    f"public kernel {name!r} has no entry in the kernel-contract "
                    "table — declare its packed parameters in KERNEL_CONTRACTS "
                    "before exporting it",
                )
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            contract = KERNEL_CONTRACTS.get(node.name)
            if contract is None:
                continue
            params = {a.arg for a in node.args.args + node.args.kwonlyargs}
            for p in contract.packed_params:
                if p not in params:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"stale kernel contract: {node.name}() has no parameter "
                        f"{p!r} — update KERNEL_CONTRACTS to match the signature",
                    )

    # -- the four per-scope checks ----------------------------------------- #
    def _check_scope(self, ctx: FileContext, scope: _Scope) -> Iterator[Finding]:
        parents: Dict[int, ast.AST] = {}
        for node in _own_nodes(scope.node):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        for node in _own_nodes(scope.node):
            if isinstance(node, ast.BinOp):
                yield from self._check_arith(ctx, scope, node)
                yield from self._check_width(ctx, scope, node)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_aug(ctx, scope, node)
            elif isinstance(node, ast.Call):
                yield from self._check_out_alias(ctx, scope, node)
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
                yield from self._check_invert(ctx, scope, node, parents)

    def _check_arith(
        self, ctx: FileContext, scope: _Scope, node: ast.BinOp
    ) -> Iterator[Finding]:
        if not isinstance(node.op, _ARITH_OPS):
            return
        if scope.is_packed(node.left) or scope.is_packed(node.right):
            glyph = _OP_GLYPH[type(node.op)]
            yield self.finding(
                ctx,
                node.lineno,
                f"arithmetic {glyph!r} on a packed uint64 row upcasts or wraps "
                "the words — set algebra is bitwise (|, &, ^); counts go "
                "through popcount kernels",
            )

    def _check_aug(
        self, ctx: FileContext, scope: _Scope, node: ast.AugAssign
    ) -> Iterator[Finding]:
        base = _root_name(node.target)
        target_packed = base is not None and base in scope.env.packed
        if not target_packed and not scope.is_packed(node.target):
            return
        if isinstance(node.op, _ARITH_OPS):
            glyph = _OP_GLYPH[type(node.op)]
            yield self.finding(
                ctx,
                node.lineno,
                f"augmented {glyph}= on a packed uint64 row upcasts or wraps "
                "the words — set algebra is bitwise (|=, &=, ^=)",
            )
            return
        if base is None:
            return
        target_dump = ast.dump(node.target)
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.expr) and _root_name(sub) == base:
                if ast.dump(sub) != target_dump:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"in-place update of {base!r} reads a different view of "
                        f"{base!r} on the right-hand side — NumPy gives no "
                        "ordering guarantee on overlapping operands; stage "
                        "through a copy",
                    )
                break

    def _check_out_alias(
        self, ctx: FileContext, scope: _Scope, call: ast.Call
    ) -> Iterator[Finding]:
        out_expr: Optional[ast.expr] = None
        reads: List[ast.expr] = []
        name = _canonical_name(call.func, scope.aliases)
        for kw in call.keywords:
            if kw.arg == "out":
                out_expr = kw.value
        if out_expr is not None:
            reads = list(call.args)
        elif name is not None and name.endswith(".at") and len(call.args) >= 2:
            base_ufunc = name.rsplit(".", 1)[0]
            if base_ufunc in _NP_BITWISE:
                out_expr, reads = call.args[0], list(call.args[1:])
        if out_expr is None:
            return
        out_base = _root_name(out_expr)
        if out_base is None or out_base not in scope.env.packed:
            return
        out_dump = ast.dump(out_expr)
        for arg in reads:
            if ast.dump(arg) == out_dump:
                continue  # the identical view: element-wise in-place, safe
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.expr)
                    and _root_name(sub) == out_base
                    and ast.dump(sub) != out_dump
                ):
                    yield self.finding(
                        ctx,
                        call.lineno,
                        f"out= target {out_base!r} partially aliases a read "
                        "operand in the same call — NumPy gives no ordering "
                        "guarantee on overlapping views; read from a copy or "
                        "pass the identical view",
                    )
                    return

    def _check_width(
        self, ctx: FileContext, scope: _Scope, node: ast.BinOp
    ) -> Iterator[Finding]:
        if not isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return
        if not _is_word_bits(node.right, scope.aliases):
            return
        if isinstance(node.op, ast.Div):
            yield self.finding(
                ctx,
                node.lineno,
                "true division by the word size yields a float width — use "
                "words_for(n), the (n + 63) >> 6 form",
            )
            return
        if not _is_ceil_numerator(node.left, scope.aliases):
            yield self.finding(
                ctx,
                node.lineno,
                "floor division by the word size truncates the ragged tail "
                "word — row widths are words_for(n), the (n + 63) >> 6 form",
            )

    def _check_invert(
        self,
        ctx: FileContext,
        scope: _Scope,
        node: ast.UnaryOp,
        parents: Dict[int, ast.AST],
    ) -> Iterator[Finding]:
        if not scope.is_packed(node.operand):
            return
        parent = parents.get(id(node))
        if isinstance(parent, ast.BinOp) and isinstance(parent.op, ast.BitAnd):
            return
        if isinstance(parent, ast.AugAssign) and isinstance(parent.op, ast.BitAnd):
            return
        if isinstance(parent, ast.Call) and node in parent.args:
            name = _canonical_name(parent.func, scope.aliases)
            if name in ("numpy.bitwise_and", "numpy.bitwise_and.at"):
                return
        yield self.finding(
            ctx,
            node.lineno,
            "complement of a packed row sets the padding bits beyond n — a "
            "bare ~row may only appear under an AND mask (the x & ~y form)",
        )


# --------------------------------------------------------------------------- #
# module-shape helpers
# --------------------------------------------------------------------------- #
def _module_all(tree: ast.Module) -> Tuple[List[str], int]:
    """Names listed in a module-level ``__all__``, with its line number."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            names = [
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            return names, node.lineno
    return [], 1


def _is_kernel_module(tree: ast.Module) -> bool:
    """Does this file *define* the packed kernels (rather than import them)?

    Recognised by shape, not path, so the fixture corpus can exercise the
    definition-side checks: a module-level ``WORD_BITS`` constant plus a
    top-level ``words_for`` function.
    """
    has_word_bits = any(
        isinstance(node, ast.Assign)
        and any(isinstance(t, ast.Name) and t.id == "WORD_BITS" for t in node.targets)
        for node in tree.body
    )
    has_words_for = any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == "words_for"
        for node in tree.body
    )
    return has_word_bits and has_words_for


def _delta_class_names(
    tree: ast.Module, aliases: Dict[str, str], kernel_module: bool
) -> Set[str]:
    """Local class names whose instances carry a packed ``bits`` attribute."""
    names: Set[str] = set()
    if kernel_module:
        names.update(
            node.name
            for node in tree.body
            if isinstance(node, ast.ClassDef) and KERNEL_CONTRACTS.get(node.name) is not None
        )
    for local, canonical in aliases.items():
        if canonical == f"{_BITSET}.DeltaRows":
            names.add(local)
    return names


def _owning_class(tree: ast.Module, fn: ast.AST) -> Optional[str]:
    """Name of the class whose body directly contains ``fn``, if any."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and fn in node.body:
            return node.name
    return None


def _is_word_bits(node: ast.expr, aliases: Dict[str, str]) -> bool:
    """Is this expression the word size — literal 64 or WORD_BITS?"""
    if isinstance(node, ast.Constant) and node.value == 64:
        return True
    name = _canonical_name(node, aliases)
    return name is not None and (name == "WORD_BITS" or name.endswith(".WORD_BITS"))


def _is_ceil_numerator(node: ast.expr, aliases: Dict[str, str]) -> bool:
    """Accept the canonical ceiling numerators: ``n + 63`` and friends.

    Recognised shapes: ``n + 63``, ``63 + n``, ``n + (WORD_BITS - 1)`` and
    ``n + WORD_BITS - 1`` (which parses as ``(n + WORD_BITS) - 1``).
    """

    def is_63(e: ast.expr) -> bool:
        if isinstance(e, ast.Constant) and e.value == 63:
            return True
        return (
            isinstance(e, ast.BinOp)
            and isinstance(e.op, ast.Sub)
            and _is_word_bits(e.left, aliases)
            and isinstance(e.right, ast.Constant)
            and e.right.value == 1
        )

    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return is_63(node.left) or is_63(node.right)
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and isinstance(node.right, ast.Constant)
        and node.right.value == 1
        and isinstance(node.left, ast.BinOp)
        and isinstance(node.left.op, ast.Add)
        and (_is_word_bits(node.left.left, aliases) or _is_word_bits(node.left.right, aliases))
    ):
        return True
    return False
