"""The repro-lint framework: checker registry, pragmas, findings, runner.

The reproduction's guarantees — draw-for-draw backend equivalence,
deterministic sharding per ``(seed, k)``, exact checkpoint/resume, atomic
result files — rest on code discipline that a test suite can only sample.
This module turns that discipline into *static* rules: each
:class:`Checker` closes one bug class over the whole source tree, every
run, before any test executes.

Architecture
------------
* :class:`Finding` — one structured report: ``(path, line, rule, message)``.
* :class:`Checker` — base class.  File-scope checkers receive a parsed
  :class:`FileContext` per source file; project-scope checkers (``scope =
  "project"``) run once per lint invocation and cross-check live state
  (e.g. the process/family registries).
* :data:`CHECKER_REGISTRY` / :func:`register_checker` — rule-id keyed
  plugin registry.  Adding a checker is: subclass, set ``rule_id`` and
  ``description``, decorate with ``@register_checker``.
* Suppression — a ``# repro-lint: allow[rule-id]`` comment suppresses
  findings of that rule on its own line; a comment-only line suppresses
  the *next* line (for constructs too long to annotate in place).  Every
  suppression must name rule ids; malformed, unknown-rule and *unused*
  pragmas are themselves findings (rule ``pragma``), so stale
  suppressions cannot accumulate.

Entry points: :func:`run_lint` (library), :func:`main` (``python -m
repro.quality`` and the ``repro-gossip lint`` subcommand).
"""

from __future__ import annotations

import ast
import fnmatch
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (summaries -> checkers -> here)
    from repro.quality.summaries import ProjectContext

__all__ = [
    "Finding",
    "FileContext",
    "Checker",
    "CHECKER_REGISTRY",
    "register_checker",
    "run_lint",
    "lint_text",
    "main",
    "changed_python_files",
    "SUMMARY_RULES",
    "github_annotation",
    "write_report",
    "PRAGMA_RULE",
    "PARSE_RULE",
]

#: rule id for pragma-syntax findings (malformed / unknown-rule / unused)
PRAGMA_RULE = "pragma"
#: rule id for files the linter cannot parse
PARSE_RULE = "parse"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint\s*:\s*(?P<verb>[A-Za-z-]+)\s*(?:\[(?P<rules>[^\]]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One structured lint report, sortable into canonical (path, line) order."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the ``--format json`` payload)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a file-scope checker needs about one source file.

    ``project`` carries the interprocedural context (call graph +
    function summaries over the whole linted file set) when the run was
    made with summaries enabled; flow checkers fall back to their
    intra-procedural conservatism when it is ``None``.
    """

    path: Path
    display: str
    source: str
    tree: ast.Module
    project: Optional["ProjectContext"] = None


# --------------------------------------------------------------------------- #
# shared AST helpers (defined here, the leaf module, so every checker layer
# can use them without creating import cycles)
# --------------------------------------------------------------------------- #
def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted module/object they bind.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from datetime import
    datetime as dt`` -> ``{"dt": "datetime.datetime"}``.  Only top-of-tree
    walk — nested/function-local imports are included too (the canonical
    name is what matters, not where the binding happened).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never bind the banned stdlib names
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _canonical_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to a canonical dotted name, or ``None``.

    Walks ``Attribute`` chains down to a root ``Name`` and substitutes the
    import alias.  Chains rooted in anything else (a call result, a
    subscript) resolve to ``None`` — ``default_rng(0).random()`` is a draw
    from an *explicitly seeded* generator and must not be flagged.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


class Checker:
    """Base class for repro-lint rules.

    Subclasses set :attr:`rule_id` (the pragma-addressable identifier) and
    :attr:`description`, then implement :meth:`check_file` (``scope =
    "file"``, the default) or :meth:`check_project` (``scope =
    "project"``).  :meth:`applies_to` lets a rule exempt whole paths (the
    layer that legitimately owns the banned construct).
    """

    rule_id: ClassVar[str] = ""
    description: ClassVar[str] = ""
    scope: ClassVar[str] = "file"

    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs on ``path`` (``True`` unless overridden)."""
        return True

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed source file (file-scope rules)."""
        return iter(())

    def check_project(self, root: Optional[Path]) -> Iterator[Finding]:
        """Yield findings for the project as a whole (project-scope rules)."""
        return iter(())

    def finding(self, ctx_or_path: object, line: int, message: str) -> Finding:
        """Build a finding carrying this checker's rule id."""
        display = (
            ctx_or_path.display
            if isinstance(ctx_or_path, FileContext)
            else str(ctx_or_path)
        )
        return Finding(path=display, line=line, rule=self.rule_id, message=message)


#: rule id -> checker class.  Populated by :func:`register_checker`.
CHECKER_REGISTRY: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: add ``cls`` to :data:`CHECKER_REGISTRY` by rule id."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define a non-empty rule_id")
    if cls.rule_id in (PRAGMA_RULE, PARSE_RULE):
        raise ValueError(f"rule id {cls.rule_id!r} is reserved by the framework")
    existing = CHECKER_REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule id {cls.rule_id!r} already registered by {existing.__name__}"
        )
    CHECKER_REGISTRY[cls.rule_id] = cls
    return cls


# --------------------------------------------------------------------------- #
# suppression pragmas
# --------------------------------------------------------------------------- #
@dataclass
class _Pragma:
    """One parsed ``allow[...]`` pragma: where it sits, what it suppresses."""

    comment_line: int
    target_line: int
    rules: Tuple[str, ...]
    used: Set[str] = field(default_factory=set)


class PragmaSheet:
    """Per-file suppression state: parsed pragmas plus their own findings.

    ``allow`` maps a target line to the rule ids suppressed there; usage
    is tracked per pragma so stale suppressions surface as ``pragma``
    findings after the file's checkers have run.
    """

    def __init__(self, display: str, source: str) -> None:
        self.display = display
        self.pragmas: List[_Pragma] = []
        self.syntax_findings: List[Finding] = []
        self._parse(source)

    def _parse(self, source: str) -> None:
        lines = source.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # the parse-rule finding already covers unreadable files
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            # Only the tool name followed by a colon is pragma syntax;
            # prose that merely mentions repro-lint is not parsed.
            if re.search(r"repro-lint\s*:", tok.string) is None:
                continue
            row = tok.start[0]
            match = _PRAGMA_RE.search(tok.string)
            if match is None or match.group("verb") != "allow" or not match.group("rules"):
                self.syntax_findings.append(
                    Finding(
                        path=self.display,
                        line=row,
                        rule=PRAGMA_RULE,
                        message=(
                            "malformed repro-lint pragma (expected "
                            "'# repro-lint: allow[rule-id]'): " + tok.string.strip()
                        ),
                    )
                )
                continue
            rules = tuple(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            unknown = [r for r in rules if r not in CHECKER_REGISTRY]
            for rule in unknown:
                self.syntax_findings.append(
                    Finding(
                        path=self.display,
                        line=row,
                        rule=PRAGMA_RULE,
                        message=(
                            f"pragma names unknown rule {rule!r}; registered rules: "
                            f"{sorted(CHECKER_REGISTRY)}"
                        ),
                    )
                )
            rules = tuple(r for r in rules if r in CHECKER_REGISTRY)
            if not rules:
                continue
            # A comment-only line suppresses the next physical line.
            prefix = lines[row - 1][: tok.start[1]] if row - 1 < len(lines) else ""
            target = row + 1 if not prefix.strip() else row
            self.pragmas.append(_Pragma(comment_line=row, target_line=target, rules=rules))

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        """Drop findings a pragma suppresses, marking those pragmas used."""
        kept: List[Finding] = []
        for finding in findings:
            suppressed = False
            for pragma in self.pragmas:
                if pragma.target_line == finding.line and finding.rule in pragma.rules:
                    pragma.used.add(finding.rule)
                    suppressed = True
            if not suppressed:
                kept.append(finding)
        return kept

    def unused_findings(self, active_rules: Set[str]) -> List[Finding]:
        """``pragma`` findings for every suppression that suppressed nothing.

        Only rules in ``active_rules`` are judged — a pragma for a rule
        that was not selected this run cannot be called stale.
        """
        stale: List[Finding] = []
        for pragma in self.pragmas:
            for rule in pragma.rules:
                if rule in active_rules and rule not in pragma.used:
                    stale.append(
                        Finding(
                            path=self.display,
                            line=pragma.comment_line,
                            rule=PRAGMA_RULE,
                            message=(
                                f"unused suppression: no {rule!r} finding on line "
                                f"{pragma.target_line} to allow (stale pragma?)"
                            ),
                        )
                    )
        return stale


# --------------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------------- #
def _iter_python_files(paths: Sequence[object]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(str(raw))
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _excluded(display: str, patterns: Sequence[str]) -> bool:
    """Whether ``display`` matches any ``--exclude`` glob.

    Patterns are matched against the display path as given and with a
    leading ``*/`` added, so ``tests/data/*`` excludes the fixture corpus
    whether the run was invoked with relative or absolute paths.
    """
    for pattern in patterns:
        if fnmatch.fnmatch(display, pattern) or fnmatch.fnmatch(
            display, "*/" + pattern
        ):
            return True
    return False


#: rules whose precision depends on the interprocedural summary context;
#: a run selecting none of these skips building it entirely.
SUMMARY_RULES = frozenset({"resource-leak", "rng-discipline"})


def _make_checkers(rules: Optional[Sequence[str]]) -> List[Checker]:
    if rules is None:
        selected = sorted(CHECKER_REGISTRY)
    else:
        unknown = sorted(set(rules) - set(CHECKER_REGISTRY))
        if unknown:
            raise KeyError(
                f"unknown lint rule(s) {unknown}; registered: {sorted(CHECKER_REGISTRY)}"
            )
        selected = list(dict.fromkeys(rules))
    return [CHECKER_REGISTRY[rule]() for rule in selected]


def run_lint(
    paths: Sequence[object],
    rules: Optional[Sequence[str]] = None,
    include_project: bool = True,
    project_root: Optional[Path] = None,
    use_summaries: bool = True,
    summary_cache: Optional[Path] = None,
    context_paths: Optional[Sequence[object]] = None,
    exclude: Sequence[str] = (),
) -> List[Finding]:
    """Lint ``paths`` (files or directories) and return unsuppressed findings.

    ``rules`` selects a subset of :data:`CHECKER_REGISTRY` (default: all).
    ``include_project=False`` skips project-scope checkers (the registry
    cross-check), which is what fixture-corpus tests want.

    ``use_summaries`` enables the interprocedural context: the call graph
    and function summaries over the linted files *plus* ``context_paths``
    (files indexed for resolution but not themselves linted — how
    ``--changed-only`` keeps cross-file precision on a partial run).
    ``summary_cache`` points at the sha256-keyed on-disk cache.
    ``exclude`` drops files whose display path matches any glob.

    Findings come back sorted by ``(path, line, rule)``; an empty list is
    a clean run.
    """
    # Importing registers the built-in checkers exactly once.
    from repro.quality import checkers as _checkers  # noqa: F401

    checker_objs = _make_checkers(rules)
    file_checkers = [c for c in checker_objs if c.scope == "file"]
    project_checkers = [c for c in checker_objs if c.scope == "project"]

    findings: List[Finding] = []
    sheets: Dict[str, PragmaSheet] = {}

    lint_files = [
        p for p in _iter_python_files(paths) if not _excluded(str(p), exclude)
    ]

    project: Optional["ProjectContext"] = None
    if use_summaries and any(c.rule_id in SUMMARY_RULES for c in file_checkers):
        from repro.quality.summaries import build_project

        context_files = list(lint_files)
        resolved = {p.resolve() for p in context_files}
        for extra in _iter_python_files(context_paths or ()):
            if _excluded(str(extra), exclude):
                continue
            extra_resolved = extra.resolve()
            if extra_resolved not in resolved:
                resolved.add(extra_resolved)
                context_files.append(extra)
        project = build_project(context_files, cache_path=summary_cache)

    for path in lint_files:
        display = str(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(display, 1, PARSE_RULE, f"cannot read file: {exc}")
            )
            continue
        sheet = PragmaSheet(display, source)
        sheets[display] = sheet
        findings.extend(sheet.syntax_findings)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            findings.append(
                Finding(display, exc.lineno or 1, PARSE_RULE, f"syntax error: {exc.msg}")
            )
            continue
        ctx = FileContext(
            path=path, display=display, source=source, tree=tree, project=project
        )
        raw: List[Finding] = []
        for checker in file_checkers:
            if checker.applies_to(path):
                raw.extend(checker.check_file(ctx))
        findings.extend(sheet.filter(raw))

    if include_project:
        for checker in project_checkers:
            project_findings = list(checker.check_project(project_root))
            for finding in project_findings:
                sheet = sheets.get(finding.path)
                if sheet is None:
                    # Anchor file was not part of this lint run: load its
                    # pragmas for suppression but do not judge them stale.
                    anchor = Path(finding.path)
                    try:
                        sheet = PragmaSheet(finding.path, anchor.read_text(encoding="utf-8"))
                    except OSError:
                        findings.append(finding)
                        continue
                kept = sheet.filter([finding])
                findings.extend(kept)

    # Stale-suppression sweep over the files we actually linted, judging
    # only the rules that actually ran.
    active_rules = {c.rule_id for c in file_checkers}
    if include_project:
        active_rules |= {c.rule_id for c in project_checkers}
    for sheet in sheets.values():
        findings.extend(sheet.unused_findings(active_rules))

    return sorted(findings)


def lint_text(
    source: str,
    display: str = "<memory>",
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a source string with the file-scope rules (test/tooling helper)."""
    from repro.quality import checkers as _checkers  # noqa: F401

    checker_objs = [c for c in _make_checkers(rules) if c.scope == "file"]
    findings: List[Finding] = []
    sheet = PragmaSheet(display, source)
    findings.extend(sheet.syntax_findings)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        findings.append(
            Finding(display, exc.lineno or 1, PARSE_RULE, f"syntax error: {exc.msg}")
        )
        return sorted(findings)
    ctx = FileContext(path=Path(display), display=display, source=source, tree=tree)
    raw: List[Finding] = []
    for checker in checker_objs:
        if checker.applies_to(Path(display)):
            raw.extend(checker.check_file(ctx))
    findings.extend(sheet.filter(raw))
    findings.extend(sheet.unused_findings({c.rule_id for c in checker_objs}))
    return sorted(findings)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def _default_paths() -> List[str]:
    import repro

    package_file = repro.__file__
    if package_file is None:  # pragma: no cover - namespace-package edge
        raise SystemExit("cannot locate the repro package to lint; pass paths")
    return [str(Path(package_file).parent)]


def changed_python_files(scope_paths: Sequence[object]) -> Optional[List[Path]]:
    """Python files changed vs the merge base with ``origin/main``/``main``.

    Includes working-tree modifications and untracked files; deletions are
    skipped.  The result is restricted to files under ``scope_paths`` and
    returned relative to the current directory when possible (so displays
    line up with a plain-path invocation).  ``None`` means git could not
    answer — the caller should fall back to a full lint.
    """
    import os
    import subprocess

    def git(*cmd: str) -> "subprocess.CompletedProcess[str]":
        return subprocess.run(
            ["git", *cmd], capture_output=True, text=True, check=False
        )

    top = git("rev-parse", "--show-toplevel")
    if top.returncode != 0:
        return None
    root = Path(top.stdout.strip())

    base: Optional[str] = None
    for candidate in ("origin/main", "main"):
        merge_base = git("merge-base", "HEAD", candidate)
        if merge_base.returncode == 0:
            base = merge_base.stdout.strip()
            break

    names: Set[str] = set()
    if base is not None:
        diff = git("diff", "--name-only", "--diff-filter=d", base, "--", "*.py")
        if diff.returncode != 0:
            return None
        names.update(line for line in diff.stdout.splitlines() if line)
    untracked = git("ls-files", "--others", "--exclude-standard", "--", "*.py")
    if untracked.returncode == 0:
        names.update(line for line in untracked.stdout.splitlines() if line)
    if base is None and untracked.returncode != 0:
        return None

    scope = [Path(str(s)).resolve() for s in scope_paths]
    changed: List[Path] = []
    for name in sorted(names):
        path = root / name
        if not path.is_file():
            continue
        resolved = path.resolve()
        if not any(resolved == s or s in resolved.parents for s in scope):
            continue
        try:
            changed.append(Path(os.path.relpath(resolved)))
        except ValueError:  # pragma: no cover - cross-drive on windows
            changed.append(resolved)
    return changed


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.quality`` entry point.  Exit 0 clean, 1 findings."""
    import argparse

    # Register built-ins before --rules choices are computed.
    from repro.quality import checkers as _checkers  # noqa: F401

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & resource-safety static analysis for the "
            "repro-gossip source tree."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        choices=sorted(CHECKER_REGISTRY),
        default=None,
        help="run only these rules (default: all registered rules)",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip project-scope checks (the registry-consistency cross-check)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help=(
            "finding output format (github emits ::error workflow-command "
            "annotations)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the findings as a JSON report to PATH (atomically)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rule ids with descriptions and exit",
    )
    parser.add_argument(
        "--no-summaries",
        action="store_true",
        help=(
            "disable the interprocedural summary context (flow rules fall "
            "back to per-function conservatism)"
        ),
    )
    parser.add_argument(
        "--summary-cache",
        default=None,
        metavar="PATH",
        help=(
            "on-disk summary cache (JSON, keyed by file sha256 + dependency "
            "shas); speeds up repeated runs and --changed-only"
        ),
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="GLOB",
        help="skip files whose path matches GLOB (repeatable)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "lint only files changed vs the merge base with origin/main "
            "(plus untracked files); unchanged files are still indexed for "
            "cross-file resolution"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(CHECKER_REGISTRY):
            print(f"{rule_id:22s} {CHECKER_REGISTRY[rule_id].description}")
        return 0

    paths: Sequence[object] = args.paths or _default_paths()
    context_paths: Optional[Sequence[object]] = None
    if args.changed_only:
        changed = changed_python_files(paths)
        if changed is None:
            print("repro-lint: --changed-only: git unavailable; linting everything")
        else:
            context_paths = paths
            if not changed:
                print("repro-lint: 0 findings (no changed files)")
                return 0
            paths = changed
    findings = run_lint(
        paths,
        rules=args.rules,
        include_project=not args.no_registry,
        use_summaries=not args.no_summaries,
        summary_cache=Path(args.summary_cache) if args.summary_cache else None,
        context_paths=context_paths,
        exclude=args.exclude,
    )
    if args.output:
        write_report(args.output, paths, args.rules, findings)
    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    elif args.format == "github":
        for finding in findings:
            print(github_annotation(finding))
        label = "finding" if len(findings) == 1 else "findings"
        print(f"repro-lint: {len(findings)} {label} in {len(paths)} path(s)")
    else:
        for finding in findings:
            print(finding)
        label = "finding" if len(findings) == 1 else "findings"
        print(f"repro-lint: {len(findings)} {label} in {len(paths)} path(s)")
    return 1 if findings else 0


def _annotation_escape(value: str, *, property_value: bool = False) -> str:
    """Escape per GitHub's workflow-command rules (order matters: % first)."""
    value = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def github_annotation(finding: Finding) -> str:
    """One finding as a GitHub Actions ``::error`` annotation line."""
    file_prop = _annotation_escape(finding.path, property_value=True)
    title = _annotation_escape(f"repro-lint [{finding.rule}]", property_value=True)
    message = _annotation_escape(finding.message)
    return (
        f"::error file={file_prop},line={finding.line},title={title}::{message}"
    )


def write_report(
    output: str,
    paths: Sequence[object],
    rules: Optional[Sequence[str]],
    findings: Sequence[Finding],
) -> None:
    """Write a JSON lint report to ``output`` atomically.

    Imported lazily from the io layer so that merely importing the lint
    framework never pulls the simulation package in.
    """
    from repro.simulation.io import atomic_write_text

    report = {
        "tool": "repro-lint",
        "paths": [str(p) for p in paths],
        "rules": sorted(rules) if rules else sorted(CHECKER_REGISTRY),
        "count": len(findings),
        "findings": [f.as_dict() for f in findings],
    }
    atomic_write_text(output, json.dumps(report, indent=2) + "\n")
