"""Invariant validation helpers for the graph substrate.

These checks are used in tests and in the simulation engine's debug mode to
assert that the dynamic structures stay internally consistent while the
processes mutate them, and that generated starting graphs satisfy the
paper's standing assumptions (connected / weakly connected / strongly
connected, simple, no self loops).
"""

from __future__ import annotations

from typing import List

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs import properties

__all__ = [
    "check_graph_invariants",
    "check_digraph_invariants",
    "require_connected",
    "require_weakly_connected",
    "require_strongly_connected",
    "ValidationError",
]


class ValidationError(AssertionError):
    """Raised when a graph fails an internal-consistency or precondition check."""


def check_graph_invariants(graph: DynamicGraph) -> List[str]:
    """Return a list of invariant violations (empty list = consistent).

    Checks: neighbour lists symmetric and duplicate-free, no self loops,
    edge count matches, degree vector matches neighbour-list lengths.
    """
    problems: List[str] = []
    seen_edges = set()
    for u in graph.nodes():
        nbrs = list(graph.neighbors(u))
        if len(set(nbrs)) != len(nbrs):
            problems.append(f"node {u} has duplicate entries in its neighbor list")
        if u in nbrs:
            problems.append(f"node {u} has a self loop")
        if graph.degree(u) != len(nbrs):
            problems.append(
                f"node {u}: degree counter {graph.degree(u)} != list length {len(nbrs)}"
            )
        for v in nbrs:
            if u not in graph.neighbors(v):
                problems.append(f"edge ({u}, {v}) present at {u} but not mirrored at {v}")
            if not graph.has_edge(u, v):
                problems.append(f"edge ({u}, {v}) in list but missing from edge set")
            seen_edges.add((min(u, v), max(u, v)))
    if len(seen_edges) != graph.number_of_edges():
        problems.append(
            f"edge counter {graph.number_of_edges()} != distinct edges seen {len(seen_edges)}"
        )
    return problems


def check_digraph_invariants(graph: DynamicDiGraph) -> List[str]:
    """Return a list of invariant violations for a digraph (empty = consistent)."""
    problems: List[str] = []
    seen_edges = set()
    total_out = 0
    for u in graph.nodes():
        nbrs = list(graph.out_neighbors(u))
        if len(set(nbrs)) != len(nbrs):
            problems.append(f"node {u} has duplicate out-neighbors")
        if u in nbrs:
            problems.append(f"node {u} has a self loop")
        if graph.out_degree(u) != len(nbrs):
            problems.append(
                f"node {u}: out-degree counter {graph.out_degree(u)} != list length {len(nbrs)}"
            )
        total_out += len(nbrs)
        for v in nbrs:
            if not graph.has_edge(u, v):
                problems.append(f"edge ({u}, {v}) in out-list but missing from edge set")
            seen_edges.add((u, v))
    if len(seen_edges) != graph.number_of_edges():
        problems.append(
            f"edge counter {graph.number_of_edges()} != distinct edges seen {len(seen_edges)}"
        )
    in_sum = int(graph.in_degrees().sum())
    if in_sum != total_out:
        problems.append(f"sum of in-degrees {in_sum} != sum of out-degrees {total_out}")
    return problems


def require_connected(graph: DynamicGraph) -> None:
    """Raise :class:`ValidationError` unless the undirected graph is connected."""
    if not properties.is_connected(graph):
        raise ValidationError(
            "the discovery processes require a connected starting graph "
            f"(graph has {len(properties.connected_components(graph))} components)"
        )


def require_weakly_connected(graph: DynamicDiGraph) -> None:
    """Raise :class:`ValidationError` unless the digraph is weakly connected."""
    if not properties.is_weakly_connected(graph):
        raise ValidationError("starting digraph must be weakly connected")


def require_strongly_connected(graph: DynamicDiGraph) -> None:
    """Raise :class:`ValidationError` unless the digraph is strongly connected."""
    if not properties.is_strongly_connected(graph):
        raise ValidationError("starting digraph must be strongly connected")
