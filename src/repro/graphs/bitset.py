"""Word-packed (``uint64``) bitset kernels for dense set algebra.

The convergence sweeps of the paper's experiments spend their rounds on
dense-set work: membership tests ("is edge (u, v) present?"), completeness
and closure predicates ("is every required pair connected yet?"), and
reachability.  All of those are set-algebra operations on rows of an n×n
boolean matrix, and a ``bool`` matrix pays one *byte* per bit.

This module packs each length-``n`` boolean row into ``ceil(n / 64)``
``uint64`` words (LSB-first within a word, so bit ``v`` of row ``u`` lives
at ``bits[u, v >> 6] >> (v & 63) & 1``).  The memory model is therefore
``n² / 8`` bytes — 8× smaller than the ``bool`` matrix — and every kernel
below operates on 64 set elements per machine word:

* :func:`get_bits` / :func:`set_bits` — batched membership test / insert
  for whole ``(rows, cols)`` index arrays;
* :func:`popcount` / :func:`row_popcounts` — word-parallel bit counting
  (via ``np.bitwise_count`` when available, an 8-bit lookup otherwise);
* :func:`or_rows` — OR-reduction of selected rows (the frontier-merge
  primitive of bitset BFS);
* :func:`rows_or_into` / :func:`delta_edges` — scatter row-union delivery
  and new-edge extraction (the payload-merge primitives of the baseline
  processes, whose messages are whole neighbour sets);
* :func:`or_into_range` / :class:`DeltaRows` — the shard-merge kernels of
  the sharded round engine (:mod:`repro.simulation.sharding`): contiguous
  row-range OR and a per-round delta accumulator that merges shard
  contributions in a shard-count-invariant canonical order;
* :func:`transitive_closure_bits` — all-pairs reachability by Warshall
  elimination on packed rows (n vectorized row-OR passes, O(n³ / 64) bit
  operations total);
* :func:`reachable_bits` / :func:`bfs_distances_bits` — single-source
  frontier BFS that advances one whole level per row-OR.

The kernels are deliberately graph-agnostic (plain arrays in, plain arrays
out); :mod:`repro.graphs.array_adjacency` stores its membership matrix in
this format and :mod:`repro.graphs.closure` builds the transitive-closure
machinery on top.  Pure NumPy, no Python-level per-edge loops anywhere.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_for",
    "zeros",
    "pack_bool_matrix",
    "unpack_bool_matrix",
    "get_bit",
    "set_bit",
    "get_bits",
    "set_bits",
    "clear_bits",
    "popcount",
    "row_popcounts",
    "count_total",
    "or_rows",
    "rows_or_into",
    "or_into_range",
    "DeltaRows",
    "delta_edges",
    "indices_from_bits",
    "transitive_closure_bits",
    "closure_add_edges",
    "reachable_bits",
    "bfs_distances_bits",
    "transpose_bits",
]

#: bits per storage word.
WORD_BITS = 64

_ONE = np.uint64(1)
_SIX = np.uint64(6)
_MASK6 = np.uint64(63)

#: 8-bit popcount lookup, the fallback when ``np.bitwise_count`` is absent.
_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def words_for(n_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError(f"bit count must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def zeros(rows: int, n_bits: int) -> np.ndarray:
    """Allocate an all-clear packed matrix of ``rows`` × ``n_bits`` bits."""
    return np.zeros((rows, words_for(n_bits)), dtype=np.uint64)


def _le_bytes(bits: np.ndarray) -> np.ndarray:
    """View packed words as bytes in little-endian (LSB-first) order."""
    arr = np.ascontiguousarray(bits)
    if not np.little_endian:  # pragma: no cover - big-endian hosts only
        arr = arr.byteswap()
    return arr.view(np.uint8)


def pack_bool_matrix(mat: np.ndarray) -> np.ndarray:
    """Pack a 2-D boolean matrix into ``uint64`` rows (LSB-first).

    The inverse of :func:`unpack_bool_matrix`; nonzero entries of any dtype
    count as set bits.
    """
    mat = np.ascontiguousarray(mat, dtype=bool)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {mat.shape}")
    rows, n_bits = mat.shape
    words = words_for(n_bits)
    if rows == 0 or words == 0:
        return np.zeros((rows, words), dtype=np.uint64)
    packed_bytes = np.packbits(mat, axis=1, bitorder="little")
    padded = np.zeros((rows, words * 8), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    if not np.little_endian:  # pragma: no cover - big-endian hosts only
        return padded.view(np.uint64).byteswap()
    return padded.view(np.uint64)


def unpack_bool_matrix(bits: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack ``uint64`` rows back to a ``(rows, n_bits)`` boolean matrix."""
    bits = np.asarray(bits, dtype=np.uint64)
    rows = bits.shape[0]
    if rows == 0 or n_bits == 0 or bits.shape[1] == 0:
        return np.zeros((rows, n_bits), dtype=bool)
    unpacked = np.unpackbits(_le_bytes(bits).reshape(rows, -1), axis=1, bitorder="little")
    return unpacked[:, :n_bits].astype(bool)


def get_bit(bits: np.ndarray, row: int, col: int) -> bool:
    """Scalar membership test: is bit ``col`` of ``row`` set?"""
    return bool((int(bits[row, col >> 6]) >> (col & 63)) & 1)


def set_bit(bits: np.ndarray, row: int, col: int) -> None:
    """Scalar insert: set bit ``col`` of ``row``."""
    bits[row, col >> 6] |= np.uint64(1 << (col & 63))


def _word_and_mask(cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split bit positions into (word index, single-bit mask) arrays."""
    cols = np.asarray(cols, dtype=np.int64).astype(np.uint64)
    return (cols >> _SIX).astype(np.int64), _ONE << (cols & _MASK6)


def get_bits(bits: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Batched membership test: boolean array of ``bits[rows[i], cols[i]]``."""
    rows = np.asarray(rows, dtype=np.int64)
    word, mask = _word_and_mask(cols)
    return (bits[rows, word] & mask) != 0


def set_bits(bits: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> None:
    """Batched insert: set bit ``cols[i]`` of row ``rows[i]`` for every i.

    Duplicate positions and positions sharing a storage word are handled
    correctly (unbuffered ``bitwise_or.at`` scatter).
    """
    rows = np.asarray(rows, dtype=np.int64)
    word, mask = _word_and_mask(cols)
    np.bitwise_or.at(bits, (rows, word), mask)


def clear_bits(bits: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> None:
    """Batched clear: unset bit ``cols[i]`` of row ``rows[i]`` for every i."""
    rows = np.asarray(rows, dtype=np.int64)
    word, mask = _word_and_mask(cols)
    np.bitwise_and.at(bits, (rows, word), ~mask)


if hasattr(np, "bitwise_count"):

    def popcount(bits: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts (shape-preserving)."""
        return np.bitwise_count(bits)

else:  # pragma: no cover - exercised only on NumPy < 2.0

    def popcount(bits: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts via an 8-bit lookup (shape-preserving)."""
        bits = np.asarray(bits, dtype=np.uint64)
        per_byte = _POP8[np.ascontiguousarray(bits).view(np.uint8)]
        return per_byte.reshape(bits.shape + (8,)).sum(axis=-1).astype(np.uint64)


def row_popcounts(bits: np.ndarray) -> np.ndarray:
    """Number of set bits in each row, as ``int64``."""
    if bits.size == 0:
        return np.zeros(bits.shape[0], dtype=np.int64)
    return popcount(bits).sum(axis=-1).astype(np.int64)


def count_total(bits: np.ndarray) -> int:
    """Total number of set bits in the whole packed matrix."""
    if bits.size == 0:
        return 0
    return int(popcount(bits).sum())


def or_rows(bits: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """OR-reduce the selected rows into one packed row vector.

    The frontier-merge primitive: the union of the adjacency rows of every
    node in ``rows``, 64 membership bits per word operation.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros(bits.shape[1], dtype=np.uint64)
    return np.bitwise_or.reduce(bits[rows], axis=0)


def rows_or_into(
    dst_bits: np.ndarray,
    dst_rows: np.ndarray,
    src_bits: np.ndarray,
    src_rows: Optional[np.ndarray] = None,
    chunk: int = 8192,
) -> None:
    """Batched row-union delivery: OR source rows into destination rows.

    For every delivery ``i``, ``dst_bits[dst_rows[i]] |= payload_i`` where
    ``payload_i`` is ``src_bits[src_rows[i]]`` (or row ``i`` of ``src_bits``
    itself when ``src_rows`` is None and ``src_bits`` carries one payload
    row per delivery).  This is the packed form of "send your whole known
    set": one message becomes one row-OR, 64 IDs per word operation.
    Duplicate destinations accumulate correctly (unbuffered
    ``bitwise_or.at`` scatter), and the payload gather is chunked so peak
    scratch memory stays at ``chunk`` rows regardless of how many
    deliveries a round makes.
    """
    dst_rows = np.asarray(dst_rows, dtype=np.int64)
    deliveries = dst_rows.shape[0]
    if src_rows is not None:
        src_rows = np.asarray(src_rows, dtype=np.int64)
        if src_rows.shape[0] != deliveries:
            raise ValueError(
                f"src_rows has {src_rows.shape[0]} entries for {deliveries} deliveries"
            )
    elif src_bits.shape[0] != deliveries:
        raise ValueError(
            f"src_bits has {src_bits.shape[0]} payload rows for {deliveries} deliveries"
        )
    for start in range(0, deliveries, chunk):
        stop = min(start + chunk, deliveries)
        if src_rows is not None:
            payload = src_bits[src_rows[start:stop]]
        else:
            payload = src_bits[start:stop]
        np.bitwise_or.at(dst_bits, dst_rows[start:stop], payload)


def or_into_range(dst_bits: np.ndarray, lo: int, src_block: np.ndarray) -> None:
    """OR a contiguous block of packed rows into ``dst_bits[lo : lo + len(block)]``.

    The row-range generalisation of :func:`rows_or_into` used by the
    sharded round engine: a shard that computed the packed rows of its
    contiguous row partition merges them into the full matrix with one
    word-parallel OR — no scatter, no index arrays.
    """
    hi = lo + src_block.shape[0]
    if lo < 0 or hi > dst_bits.shape[0]:
        raise ValueError(
            f"row range [{lo}, {hi}) outside the destination's {dst_bits.shape[0]} rows"
        )
    if src_block.shape[0] and src_block.shape[1] != dst_bits.shape[1]:
        raise ValueError(
            f"source block is {src_block.shape[1]} words wide, destination {dst_bits.shape[1]}"
        )
    np.bitwise_or(dst_bits[lo:hi], src_block, out=dst_bits[lo:hi])


class DeltaRows:
    """Accumulator for one round's packed membership delta across shards.

    Shards report their contribution either as proposed edge endpoint
    arrays (:meth:`add_edges` — the gossip processes) or as a packed block
    of their own rows (:meth:`or_into_range` — the row-union baselines).
    The accumulated delta is merged into a final edge list with
    :meth:`new_edges`, which masks out already-present edges and reports
    the genuinely new ones in canonical row-major order — an order that
    does not depend on how many shards contributed, which is what makes
    sharded trajectories shard-count invariant.
    """

    __slots__ = ("n_bits", "bits")

    def __init__(self, n_rows: int, n_bits: int) -> None:
        self.n_bits = n_bits
        self.bits = zeros(n_rows, n_bits)

    def add_edges(self, us: np.ndarray, vs: np.ndarray, directed: bool = False) -> None:
        """Record proposed edges; undirected edges set both orientations."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape[0] == 0:
            return
        set_bits(self.bits, us, vs)
        if not directed:
            set_bits(self.bits, vs, us)

    def or_into_range(self, lo: int, src_block: np.ndarray) -> None:
        """Merge a shard's contiguous block of delta rows (see :func:`or_into_range`)."""
        or_into_range(self.bits, lo, src_block)

    def new_edges(
        self, base_bits: np.ndarray, directed: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Endpoints of accumulated bits absent from ``base_bits``, canonical order.

        Self loops are dropped; with ``directed=False`` each edge is
        reported once, oriented ``u < v`` (the accumulated delta must be
        symmetric, which :meth:`add_edges` guarantees).  One extraction
        path for the whole module: this is :func:`delta_edges` of the
        would-be merged matrix, plus the directed self-loop filter.
        """
        us, vs = delta_edges(base_bits, self.bits | base_bits, self.n_bits, directed=directed)
        if directed:
            keep = us != vs
            return us[keep], vs[keep]
        return us, vs


def delta_edges(
    old_bits: np.ndarray, new_bits: np.ndarray, n_bits: int, directed: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Endpoint arrays of the bits set in ``new_bits`` but not ``old_bits``.

    The popcount-delta companion of :func:`rows_or_into`: after a round of
    row-union deliveries, this extracts exactly the genuinely new edges in
    canonical row-major order.  With ``directed=False`` each undirected
    edge is reported once, oriented ``u < v`` (upper triangle).
    """
    delta = unpack_bool_matrix(new_bits & ~old_bits, n_bits)
    us, vs = np.nonzero(delta)
    us, vs = us.astype(np.int64), vs.astype(np.int64)
    if directed:
        return us, vs
    # One undirected report per edge (u < v) without a second dense copy.
    keep = us < vs
    return us[keep], vs[keep]


def indices_from_bits(row: np.ndarray, n_bits: int) -> np.ndarray:
    """Set-bit positions of one packed row vector, ascending ``int64``."""
    row = np.asarray(row, dtype=np.uint64).reshape(1, -1)
    return np.flatnonzero(unpack_bool_matrix(row, n_bits)[0]).astype(np.int64)


def transitive_closure_bits(bits: np.ndarray, n_bits: int) -> np.ndarray:
    """All-pairs reachability (nonempty directed paths) of a packed adjacency.

    Warshall elimination on packed rows: after processing pivot ``k``,
    ``R[u]`` holds every node reachable from ``u`` through intermediates
    ``<= k``.  Each pivot is two vectorized passes (a column extraction and
    a masked row-OR), so the Python-level loop is O(n) regardless of the
    edge count.  ``R[u, u]`` ends up set iff ``u`` lies on a directed cycle
    — the same convention as the BFS reference implementation.
    """
    reach = np.array(bits, dtype=np.uint64, copy=True)
    if n_bits == 0 or reach.shape[0] == 0:
        return reach
    for k in range(n_bits):
        into_k = (reach[:, k >> 6] & np.uint64(1 << (k & 63))) != 0
        if into_k.any():
            # The pivot row aliases the output, but benignly: OR is
            # idempotent, so even if row k is merged into itself first the
            # other rows absorb the same (unchanged) word values.
            # repro-lint: allow[kernel-contract]
            np.bitwise_or(reach, reach[k][None, :], out=reach, where=into_k[:, None])
    return reach


def closure_add_edges(reach: np.ndarray, us: np.ndarray, vs: np.ndarray) -> int:
    """Update a packed reachability matrix for a batch of newly inserted edges.

    ``reach`` must be the transitive closure of some edge set (as produced
    by :func:`transitive_closure_bits`); after the call it is the closure
    of that edge set plus the edges ``(us[i], vs[i])``.  The incremental
    rule for one edge ``u → v``: every row that reaches ``u`` (plus row
    ``u`` itself) absorbs ``R[v] ∪ {v}`` — two vectorized passes (a column
    extraction and a masked row-OR), the same shape as one Warshall pivot.
    Edges already implied by the closure are skipped with one batched
    membership test, so a batch whose edges all lie inside the existing
    closure costs O(batch) instead of O(n²); a full recompute is O(n³/64).
    The diagonal convention matches :func:`transitive_closure_bits`
    (``R[u, u]`` set iff ``u`` lies on a directed cycle).

    Returns the number of edges that actually extended the closure.
    """
    us = np.asarray(us, dtype=np.int64).reshape(-1)
    vs = np.asarray(vs, dtype=np.int64).reshape(-1)
    if us.shape[0] != vs.shape[0]:
        raise ValueError(f"endpoint arrays disagree: {us.shape[0]} vs {vs.shape[0]}")
    if us.shape[0] == 0:
        return 0
    pending = np.flatnonzero(~get_bits(reach, us, vs))
    changed = 0
    for i in pending.tolist():
        u, v = int(us[i]), int(vs[i])
        # An earlier edge of this batch may have implied this one already.
        if get_bit(reach, u, v):
            continue
        new_row = reach[v].copy()
        new_row[v >> 6] |= np.uint64(1 << (v & 63))
        into_u = (reach[:, u >> 6] & np.uint64(1 << (u & 63))) != 0
        into_u[u] = True
        np.bitwise_or(reach, new_row[None, :], out=reach, where=into_u[:, None])
        changed += 1
    return changed


def reachable_bits(bits: np.ndarray, source: int) -> np.ndarray:
    """Packed set of nodes reachable from ``source`` along nonempty paths.

    Frontier BFS with whole-row ORs: each iteration advances one BFS level
    for *all* frontier nodes at once.  ``source`` itself is included only
    when it lies on a directed cycle, matching the closure convention.
    """
    n_bits = bits.shape[0]
    reach = np.zeros(bits.shape[1], dtype=np.uint64)
    frontier = bits[source].copy()
    while True:
        new = frontier & ~reach
        if not new.any():
            return reach
        reach |= new
        frontier = or_rows(bits, indices_from_bits(new, n_bits))


def bfs_distances_bits(bits: np.ndarray, source: int) -> np.ndarray:
    """BFS distances from ``source`` over a packed adjacency (unreachable = -1).

    Level-synchronous: one row-OR merge per BFS level instead of one queue
    pop per node, so the distance array of a whole level is written in one
    vectorized assignment.
    """
    n_bits = bits.shape[0]
    dist = np.full(n_bits, -1, dtype=np.int64)
    dist[source] = 0
    visited = np.zeros(bits.shape[1], dtype=np.uint64)
    set_bit(visited.reshape(1, -1), 0, source)
    frontier = bits[source] & ~visited
    level = 1
    while frontier.any():
        members = indices_from_bits(frontier, n_bits)
        dist[members] = level
        visited |= frontier
        frontier = or_rows(bits, members) & ~visited
        level += 1
    return dist


def transpose_bits(bits: np.ndarray, n_bits: int) -> np.ndarray:
    """Packed transpose (reverse-edge adjacency) of a packed square matrix."""
    return pack_bool_matrix(unpack_bool_matrix(bits, n_bits).T)
