"""Directed graph family generators, including the paper's lower-bound constructions.

Two constructions are lifted directly from the paper:

* :func:`thm14_weak_lower_bound` — the weakly connected digraph used in
  Theorem 14's Ω(n² log n) lower bound (Appendix D, proof of Theorem 14).
* :func:`thm15_strong_lower_bound` — the strongly connected digraph of
  Figures 3/4 used in Theorem 15's Ω(n²) lower bound.

The remaining families (directed cycles/paths, random digraphs, layered
DAGs, complete digraphs) support the O(n² log n) upper-bound sweeps.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.graphs.adjacency import DynamicDiGraph

__all__ = [
    "directed_path",
    "directed_cycle",
    "complete_digraph",
    "bidirected_path",
    "bidirected_cycle",
    "bidirected_star",
    "random_digraph",
    "random_strongly_connected_digraph",
    "random_tournament",
    "layered_dag",
    "thm14_weak_lower_bound",
    "thm15_strong_lower_bound",
    "DIRECTED_FAMILY_REGISTRY",
    "make_directed_family",
    "directed_family_names",
]


def _ensure_rng(
    rng: Union[np.random.Generator, np.random.SeedSequence, int, None],
) -> np.random.Generator:
    """Coerce an explicit seed source to a ``Generator``; reject ``None``.

    Same explicit-seed contract as the undirected families: an unseeded
    fallback would silently void trace replayability (repro-lint
    ``determinism`` rule), so fresh entropy must be requested explicitly
    with ``default_rng(None)`` at the call site.
    """
    if rng is None:
        raise ValueError(
            "random directed families require an explicit rng (np.random."
            "Generator, SeedSequence or integer seed); an unseeded graph "
            "cannot be replayed"
        )
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


# --------------------------------------------------------------------------- #
# deterministic families
# --------------------------------------------------------------------------- #
def directed_path(n: int) -> DynamicDiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` (weakly connected)."""
    if n < 1:
        raise ValueError("directed path needs at least 1 node")
    return DynamicDiGraph(n, ((i, i + 1) for i in range(n - 1)))


def directed_cycle(n: int) -> DynamicDiGraph:
    """Directed cycle on ``n >= 2`` nodes (strongly connected, out-degree 1)."""
    if n < 2:
        raise ValueError("directed cycle needs at least 2 nodes")
    return DynamicDiGraph(n, ((i, (i + 1) % n) for i in range(n)))


def complete_digraph(n: int) -> DynamicDiGraph:
    """Complete digraph: every ordered pair of distinct nodes is an edge."""
    if n < 1:
        raise ValueError("complete digraph needs at least 1 node")
    return DynamicDiGraph(n, ((u, v) for u in range(n) for v in range(n) if u != v))


def bidirected_path(n: int) -> DynamicDiGraph:
    """Path with both edge directions present (directed analogue of an undirected path)."""
    if n < 1:
        raise ValueError("bidirected path needs at least 1 node")
    edges = []
    for i in range(n - 1):
        edges.append((i, i + 1))
        edges.append((i + 1, i))
    return DynamicDiGraph(n, edges)


def bidirected_cycle(n: int) -> DynamicDiGraph:
    """Cycle with both edge directions present."""
    if n < 3:
        raise ValueError("bidirected cycle needs at least 3 nodes")
    edges = []
    for i in range(n):
        j = (i + 1) % n
        edges.append((i, j))
        edges.append((j, i))
    return DynamicDiGraph(n, edges)


def bidirected_star(n: int) -> DynamicDiGraph:
    """Star with both edge directions between the centre 0 and each leaf."""
    if n < 2:
        raise ValueError("bidirected star needs at least 2 nodes")
    edges = []
    for i in range(1, n):
        edges.append((0, i))
        edges.append((i, 0))
    return DynamicDiGraph(n, edges)


def layered_dag(layers: int, width: int) -> DynamicDiGraph:
    """Layered DAG: ``layers`` layers of ``width`` nodes, complete bipartite between
    consecutive layers, all edges pointing forward.  Weakly connected; its
    transitive closure connects every node to every node in later layers."""
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be positive")
    n = layers * width
    edges = []
    for layer in range(layers - 1):
        for a in range(width):
            for b in range(width):
                edges.append((layer * width + a, (layer + 1) * width + b))
    return DynamicDiGraph(n, edges)


# --------------------------------------------------------------------------- #
# random families
# --------------------------------------------------------------------------- #
def random_digraph(
    n: int, p: float, rng: Optional[np.random.Generator] = None
) -> DynamicDiGraph:
    """Directed G(n, p): every ordered pair is an edge independently with probability ``p``."""
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = _ensure_rng(rng)
    g = DynamicDiGraph(n)
    if n > 1 and p > 0:
        mask = rng.random((n, n)) < p
        np.fill_diagonal(mask, False)
        us, vs = np.nonzero(mask)
        for u, v in zip(us.tolist(), vs.tolist()):
            g.add_edge(u, v)
    return g


def random_strongly_connected_digraph(
    n: int, extra_edge_prob: float = 0.05, rng: Optional[np.random.Generator] = None
) -> DynamicDiGraph:
    """A directed cycle through a random permutation plus independent extra edges.

    The embedded Hamiltonian cycle guarantees strong connectivity; the
    extra edges control density.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    rng = _ensure_rng(rng)
    g = DynamicDiGraph(n)
    perm = rng.permutation(n)
    for i in range(n):
        g.add_edge(int(perm[i]), int(perm[(i + 1) % n]))
    if extra_edge_prob > 0:
        mask = rng.random((n, n)) < extra_edge_prob
        np.fill_diagonal(mask, False)
        us, vs = np.nonzero(mask)
        for u, v in zip(us.tolist(), vs.tolist()):
            g.add_edge(u, v)
    return g


def random_tournament(n: int, rng: Optional[np.random.Generator] = None) -> DynamicDiGraph:
    """Random tournament: each unordered pair gets exactly one direction, chosen uniformly."""
    rng = _ensure_rng(rng)
    g = DynamicDiGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.5:
                g.add_edge(u, v)
            else:
                g.add_edge(v, u)
    return g


# --------------------------------------------------------------------------- #
# paper constructions
# --------------------------------------------------------------------------- #
def thm14_weak_lower_bound(n: int) -> DynamicDiGraph:
    """The weakly connected Ω(n² log n) lower-bound digraph of Theorem 14.

    The paper's construction (0-indexed here, ``n`` divisible by 4): for
    every ``0 <= i < n/4`` the nodes ``3i`` and ``3i + 1`` each point to all
    "sink" nodes ``j`` with ``3n/4 <= j < n``, and the local chain edges
    ``3i -> 3i+1 -> 3i+2`` are present.  The only edges the two-hop process
    ever needs to add are the n/4 "shortcut" edges ``3i -> 3i+2``; the huge
    out-degree towards the sinks makes each shortcut an Ω(n²)-expected-time
    event, and collecting all n/4 independent shortcuts costs the extra
    log factor.
    """
    if n < 8:
        raise ValueError("construction needs n >= 8")
    if n % 4 != 0:
        raise ValueError("n must be divisible by 4")
    quarter = n // 4
    sink_start = 3 * n // 4
    g = DynamicDiGraph(n)
    for i in range(quarter):
        a, b, c = 3 * i, 3 * i + 1, 3 * i + 2
        g.add_edge(a, b)
        g.add_edge(b, c)
        for j in range(sink_start, n):
            g.add_edge(a, j)
            g.add_edge(b, j)
    return g


def thm14_missing_edges(n: int) -> List[tuple]:
    """The shortcut edges ``3i -> 3i+2`` that the process must add on
    :func:`thm14_weak_lower_bound` (its transitive-closure deficit)."""
    if n % 4 != 0:
        raise ValueError("n must be divisible by 4")
    return [(3 * i, 3 * i + 2) for i in range(n // 4)]


def thm15_strong_lower_bound(n: int) -> DynamicDiGraph:
    """The strongly connected Ω(n²) lower-bound digraph of Theorem 15 (Figures 3/4).

    With ``n`` even and 0-indexed nodes:

    * the first half ``{0 .. n/2 - 1}`` forms a complete digraph;
    * a directed path ``n/2 - 1 -> n/2 -> n/2 + 1 -> ... -> n - 1`` leads
      through the second half;
    * every node ``i`` in the second half has edges to **all** lower-indexed
      nodes ``j < i`` (the "backward" edges that make the graph strongly
      connected and keep every out-degree ≥ n/2).

    The process must effectively push connectivity forward along the path
    one cut at a time, which costs Ω(n) expected rounds per cut and Ω(n²)
    overall.
    """
    if n < 4:
        raise ValueError("construction needs n >= 4")
    if n % 2 != 0:
        raise ValueError("n must be even")
    half = n // 2
    g = DynamicDiGraph(n)
    # Complete digraph on the first half.
    for i in range(half):
        for j in range(half):
            if i != j:
                g.add_edge(i, j)
    # Forward path through the second half (starting at the last node of the first half).
    for i in range(half - 1, n - 1):
        g.add_edge(i, i + 1)
    # Backward edges from every second-half node to all lower-indexed nodes.
    for i in range(half, n):
        for j in range(i):
            g.add_edge(i, j)
    return g


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def _dir_cycle(n: int, rng: Optional[np.random.Generator] = None) -> DynamicDiGraph:
    return directed_cycle(n)


def _bidir_path(n: int, rng: Optional[np.random.Generator] = None) -> DynamicDiGraph:
    return bidirected_path(n)


def _rand_strong(n: int, rng: Optional[np.random.Generator] = None) -> DynamicDiGraph:
    p = min(1.0, 2.0 * math.log(max(n, 2)) / max(n, 2))
    return random_strongly_connected_digraph(n, extra_edge_prob=p, rng=rng)


def _thm15(n: int, rng: Optional[np.random.Generator] = None) -> DynamicDiGraph:
    return thm15_strong_lower_bound(n if n % 2 == 0 else n + 1)


def _thm14(n: int, rng: Optional[np.random.Generator] = None) -> DynamicDiGraph:
    rounded = max(8, (n // 4) * 4)
    return thm14_weak_lower_bound(rounded)


#: Mapping from directed family name to a ``(n, rng) -> DynamicDiGraph`` factory.
DIRECTED_FAMILY_REGISTRY: Dict[
    str, Callable[[int, Optional[np.random.Generator]], DynamicDiGraph]
] = {
    "directed_cycle": _dir_cycle,
    "bidirected_path": _bidir_path,
    "random_strong": _rand_strong,
    "thm14_weak": _thm14,
    "thm15_strong": _thm15,
}


def directed_family_names() -> List[str]:
    """Names of all registered directed graph families."""
    return sorted(DIRECTED_FAMILY_REGISTRY)


def make_directed_family(
    name: str, n: int, rng: Optional[np.random.Generator] = None
) -> DynamicDiGraph:
    """Instantiate the registered directed family ``name`` at (approximately) ``n`` nodes."""
    try:
        factory = DIRECTED_FAMILY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown directed family {name!r}; known: {directed_family_names()}"
        ) from None
    return factory(n, rng)
