"""Structural property computations matching the paper's notation (Table 1).

The paper reasons about, for a node ``u`` at round ``t``:

* ``d_t(u)``            — degree (``degree`` on the graph object);
* ``δ_t``               — minimum degree (``min_degree``);
* ``N^i_t(u)``          — the set of nodes at distance exactly ``i`` from ``u``
                          (:func:`neighborhood_at_distance`);
* ``d_t(v, S)``         — the number of edges from ``v`` into a node set ``S``
                          (:func:`degree_into_set`);
* strongly / weakly tied — whether ``d_t(v, S)`` is at least / below ``δ_0 / 2``
                          (:func:`is_strongly_tied`).

It also needs connectivity predicates (the processes assume a connected or
weakly/strongly connected start), distances, diameter, and the clustering
coefficient for the social-evolution experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Union

import numpy as np

from repro.graphs import bitset
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph

__all__ = [
    "bfs_distances",
    "neighborhood_at_distance",
    "neighborhood_within_distance",
    "degree_into_set",
    "is_strongly_tied",
    "is_weakly_tied",
    "is_connected",
    "connected_components",
    "is_weakly_connected",
    "is_strongly_connected",
    "diameter",
    "eccentricity",
    "average_degree",
    "degree_histogram",
    "clustering_coefficient",
    "average_clustering",
    "missing_edge_pairs",
    "verify_lemma1",
]

GraphLike = Union[DynamicGraph, DynamicDiGraph]


def _out_adjacency(graph: GraphLike, u: int) -> Sequence[int]:
    if getattr(graph, "directed", False):
        return graph.out_neighbors(u)
    return graph.neighbors(u)


# --------------------------------------------------------------------------- #
# distances and neighbourhoods
# --------------------------------------------------------------------------- #
def bfs_distances(graph: GraphLike, source: int) -> np.ndarray:
    """Return the array of BFS distances from ``source`` (unreachable = -1).

    For directed graphs the distances follow out-edges only.  Graphs that
    store packed membership rows (the array backend) take the word-parallel
    level-synchronous path of :func:`repro.graphs.bitset.bfs_distances_bits`;
    list-backed graphs keep the per-node queue BFS.
    """
    native_bits = getattr(graph, "adjacency_bits", None)
    if native_bits is not None:
        return bitset.bfs_distances_bits(native_bits(), source)
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in _out_adjacency(graph, u):
            if dist[v] < 0:
                dist[v] = du + 1
                queue.append(v)
    return dist


def neighborhood_at_distance(graph: GraphLike, u: int, i: int) -> Set[int]:
    """The paper's ``N^i(u)``: nodes at distance exactly ``i`` from ``u``."""
    if i < 0:
        raise ValueError("distance must be non-negative")
    dist = bfs_distances(graph, u)
    return set(np.flatnonzero(dist == i).tolist())


def neighborhood_within_distance(graph: GraphLike, u: int, i: int) -> Set[int]:
    """Nodes at distance between 1 and ``i`` from ``u`` (``∪_{j=1..i} N^j(u)``)."""
    if i < 0:
        raise ValueError("distance must be non-negative")
    dist = bfs_distances(graph, u)
    return set(np.flatnonzero((dist >= 1) & (dist <= i)).tolist())


def degree_into_set(graph: DynamicGraph, v: int, target: Set[int]) -> int:
    """The paper's ``d(v, S)``: number of edges from ``v`` into the node set ``S``."""
    return sum(1 for w in graph.neighbors(v) if w in target)


def is_strongly_tied(graph: DynamicGraph, v: int, target: Set[int], delta0: int) -> bool:
    """True when ``v`` has at least ``δ_0 / 2`` edges into ``target`` (paper §3.1)."""
    return degree_into_set(graph, v, target) >= delta0 / 2


def is_weakly_tied(graph: DynamicGraph, v: int, target: Set[int], delta0: int) -> bool:
    """True when ``v`` has fewer than ``δ_0 / 2`` edges into ``target`` (paper §3.1)."""
    return not is_strongly_tied(graph, v, target, delta0)


# --------------------------------------------------------------------------- #
# connectivity
# --------------------------------------------------------------------------- #
def is_connected(graph: DynamicGraph) -> bool:
    """True when the undirected graph is connected (vacuously true for n <= 1)."""
    n = graph.n
    if n <= 1:
        return True
    dist = bfs_distances(graph, 0)
    return bool((dist >= 0).all())


def connected_components(graph: DynamicGraph) -> List[List[int]]:
    """Connected components of an undirected graph as sorted node lists."""
    n = graph.n
    seen = np.zeros(n, dtype=bool)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        comp = []
        queue = deque([start])
        seen[start] = True
        while queue:
            u = queue.popleft()
            comp.append(u)
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
        components.append(sorted(comp))
    return components


def is_weakly_connected(graph: DynamicDiGraph) -> bool:
    """True when the digraph is connected after forgetting edge directions."""
    return is_connected(graph.to_undirected())


def is_strongly_connected(graph: DynamicDiGraph) -> bool:
    """True when every node reaches every other node along directed edges."""
    n = graph.n
    if n <= 1:
        return True
    if not bool((bfs_distances(graph, 0) >= 0).all()):
        return False
    # Reverse reachability: BFS from 0 over the reversed edges.
    native_bits = getattr(graph, "adjacency_bits", None)
    if native_bits is not None:
        reverse_bits = bitset.transpose_bits(native_bits(), n)
        return bool((bitset.bfs_distances_bits(reverse_bits, 0) >= 0).all())
    reverse = DynamicDiGraph(n)
    for u, v in graph.edges():
        reverse.add_edge(v, u)
    return bool((bfs_distances(reverse, 0) >= 0).all())


# --------------------------------------------------------------------------- #
# global statistics
# --------------------------------------------------------------------------- #
def eccentricity(graph: GraphLike, u: int) -> int:
    """Largest finite distance from ``u``; raises if some node is unreachable."""
    dist = bfs_distances(graph, u)
    if (dist < 0).any():
        raise ValueError(f"node {u} does not reach every node; eccentricity undefined")
    return int(dist.max())


def diameter(graph: GraphLike) -> int:
    """Largest pairwise distance; raises if the graph is not (strongly) connected."""
    if graph.n == 0:
        raise ValueError("diameter of an empty graph is undefined")
    return max(eccentricity(graph, u) for u in range(graph.n))


def average_degree(graph: DynamicGraph) -> float:
    """Mean degree ``2m / n`` (0.0 for an empty node set)."""
    if graph.n == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / graph.n


def degree_histogram(graph: DynamicGraph) -> Dict[int, int]:
    """Map from degree value to the number of nodes having that degree."""
    values, counts = np.unique(graph.degrees(), return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def clustering_coefficient(graph: DynamicGraph, u: int) -> float:
    """Local clustering coefficient of ``u`` (1.0 by convention for degree < 2... 0.0).

    Defined as the fraction of pairs of neighbours of ``u`` that are
    themselves adjacent; 0.0 when ``u`` has fewer than two neighbours.
    """
    nbrs = list(graph.neighbors(u))
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    for i in range(k):
        for j in range(i + 1, k):
            if graph.has_edge(nbrs[i], nbrs[j]):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: DynamicGraph) -> float:
    """Mean local clustering coefficient over all nodes (0.0 for empty graphs)."""
    if graph.n == 0:
        return 0.0
    return float(np.mean([clustering_coefficient(graph, u) for u in range(graph.n)]))


def missing_edge_pairs(graph: DynamicGraph) -> List[tuple]:
    """All node pairs not yet joined by an edge (the complement's edge list)."""
    return [
        (u, v)
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
        if not graph.has_edge(u, v)
    ]


def verify_lemma1(graph: DynamicGraph, u: int) -> bool:
    """Check Lemma 1 for node ``u``: ``|N¹(u) ∪ ... ∪ N⁴(u)| >= min(2δ, n - 1)``.

    Only meaningful on connected graphs; returns the truth of the inequality.
    """
    delta = graph.min_degree()
    reachable = neighborhood_within_distance(graph, u, 4)
    return len(reachable) >= min(2 * delta, graph.n - 1)
