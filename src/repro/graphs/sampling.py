"""Shared bulk-sampling primitives used by every graph backend.

Cross-backend trace equivalence rests on one invariant: for the same seed,
the list backend (:mod:`repro.graphs.adjacency`) and the array backend
(:mod:`repro.graphs.array_adjacency`) must consume the *same* random
values and map them to the *same* neighbour choices.  Both backends
therefore draw one uniform float per sampled node (``rng.random(m)`` for a
batch of ``m`` nodes) and turn it into a neighbour index with the exact
floating-point computation implemented here.  Only the final gather —
ragged Python lists versus one fancy-indexed 2-D array — differs between
backends, and gathering is deterministic.

The helpers use ``-1`` as the sentinel for "no sample" (a node with no
neighbours, or a ``-1`` node propagated from an earlier sampling stage),
which lets multi-hop kernels chain calls without branching.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_indices", "masked_counts"]


def uniform_indices(u: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Map uniforms ``u ∈ [0, 1)`` to indices ``floor(u·counts)`` per element.

    Returns an ``int64`` array with ``-1`` wherever ``counts <= 0``.  The
    result is clipped to ``counts - 1`` so the (measure-zero, but real in
    floating point) case ``u·k`` rounding up to ``k`` cannot produce an
    out-of-range index.  Every backend must use this exact computation so
    identical draws yield identical choices.
    """
    counts = np.asarray(counts, dtype=np.int64)
    idx = (np.asarray(u) * counts).astype(np.int64)
    return np.minimum(idx, counts - 1)


def masked_counts(nodes: np.ndarray, counts_by_node: np.ndarray) -> tuple:
    """Per-node counts with ``-1`` nodes treated as count 0.

    Returns ``(safe_nodes, counts)`` where ``safe_nodes`` replaces negative
    entries with 0 (a valid index whose gathered value is discarded) and
    ``counts`` is 0 for those entries, so :func:`uniform_indices` yields the
    ``-1`` sentinel for them.
    """
    valid = nodes >= 0
    safe = np.where(valid, nodes, 0)
    counts = np.where(valid, counts_by_node[safe], 0)
    return safe, counts
