"""NumPy-array-backed graph backend for the vectorized round engine.

:class:`ArrayGraph` and :class:`ArrayDiGraph` are drop-in substrates for
the discovery processes that store neighbour lists in one preallocated
2-D ``int64`` array (one row per node, amortized column doubling) plus a
word-packed membership matrix, instead of per-node Python lists and a
hash set.  Per-round work then becomes whole-array operations:

* ``random_neighbors(nodes, rng)`` — one ``rng.random(m)`` draw and one
  fancy-indexed gather for a whole batch of nodes;
* ``add_edges_batch(edges)`` — vectorized duplicate/self-loop rejection
  with first-occurrence order preserved, then O(1) slot writes for the
  (few) genuinely new edges.

The classes share the paper's append-only contract with the list backend
(:mod:`repro.graphs.adjacency`): edges are only ever added.

Packed memory model
-------------------
Membership lives in ``uint64`` bitset rows (:mod:`repro.graphs.bitset`):
bit ``v`` of row ``u`` is the edge ``(u, v)``, so the matrix costs
``n² / 8`` bytes — 8× less than the previous ``bool`` matrix — and batch
membership tests, completeness predicates and the closure/reachability
kernels all run word-parallel (64 pairs per machine-word operation).
``adjacency_bits()`` exposes the packed rows directly (read-only) so
:mod:`repro.graphs.closure` and :mod:`repro.graphs.properties` can run
their kernels with zero conversion cost.

Draw-stream equivalence
-----------------------
Both backends sample through :mod:`repro.graphs.sampling`, consume the
same number of uniforms per call, and keep neighbour rows in the same
insertion order, so a process run on ``ArrayGraph`` reproduces the exact
seeded trace of the same run on ``DynamicGraph`` under synchronous
semantics.  ``tests/test_backend_equivalence.py`` pins this contract.
Membership storage is invisible to the RNG draw convention: repacking the
``bool`` matrix into bitset rows changed no trace byte (pinned by the
golden traces under ``tests/data/``).

Use :func:`as_backend` to convert a graph to the requested backend.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs import bitset
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.sampling import masked_counts, uniform_indices

__all__ = ["ArrayGraph", "ArrayDiGraph", "as_backend", "backend_name", "BACKENDS"]

#: the selectable graph-backend names.
BACKENDS = ("list", "array")

_MIN_CAPACITY = 4


def _round_up_pow2(value: int) -> int:
    """Smallest power of two >= max(value, _MIN_CAPACITY)."""
    cap = _MIN_CAPACITY
    while cap < value:
        cap *= 2
    return cap


class ArrayGraph:
    """Undirected simple graph with preallocated NumPy neighbour storage.

    Parameters
    ----------
    n:
        Number of nodes (``0 .. n-1``).
    edges:
        Optional initial edges; duplicates and self loops are ignored.

    Notes
    -----
    API-compatible with :class:`~repro.graphs.adjacency.DynamicGraph` for
    everything the processes, metrics and tests touch.  Neighbour rows
    keep insertion order; :meth:`neighbors` returns a live array slice
    that callers must not mutate.
    """

    __slots__ = ("_n", "_nbr", "_deg", "_bits", "_num_edges", "_cap")

    #: backend dispatch flag: undirected graphs expose degree()/neighbors().
    directed = False

    def __init__(self, n: int, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        if n < 0:
            raise ValueError(f"number of nodes must be non-negative, got {n}")
        self._n = int(n)
        self._cap = _MIN_CAPACITY
        self._nbr = np.full((self._n, self._cap), -1, dtype=np.int64)
        self._deg = np.zeros(self._n, dtype=np.int64)
        self._bits = bitset.zeros(self._n, self._n)
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def capacity(self) -> int:
        """Current neighbour-row capacity (grows by doubling)."""
        return self._cap

    def number_of_nodes(self) -> int:
        """Number of nodes (alias of :attr:`n`)."""
        return self._n

    def number_of_edges(self) -> int:
        """Number of distinct undirected edges currently present."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate over node identifiers ``0 .. n-1``."""
        return range(self._n)

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        self._check_node(u)
        return int(self._deg[u])

    def degrees(self) -> np.ndarray:
        """Return a copy of the degree vector as an ``int64`` numpy array."""
        return self._deg.copy()

    def min_degree(self) -> int:
        """Minimum degree over all nodes (0 for an empty graph with nodes)."""
        if self._n == 0:
            return 0
        return int(self._deg.min())

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for an empty graph with nodes)."""
        if self._n == 0:
            return 0
        return int(self._deg.max())

    def neighbors(self, u: int) -> np.ndarray:
        """Neighbour row of ``u`` in insertion order (live view; do not mutate)."""
        self._check_node(u)
        return self._nbr[u, : self._deg[u]]

    def neighbor_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """The padded neighbour-row block and the degree vector (live views).

        Row ``u`` holds ``neighbors(u)`` in insertion order in its first
        ``deg[u]`` slots (``-1`` padding beyond).  This is the whole-graph
        input of the baselines' vectorized payload expansion; callers must
        not mutate either array.
        """
        return self._nbr, self._deg

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the undirected edge ``(u, v)`` is present."""
        if u == v:
            return False
        return bitset.get_bit(self._bits, u, v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the edges as canonical ``(min, max)`` pairs."""
        us, vs = np.nonzero(np.triu(bitset.unpack_bool_matrix(self._bits, self._n)))
        return iter(zip(us.tolist(), vs.tolist()))

    def edge_list(self) -> List[Tuple[int, int]]:
        """Return a sorted list of canonical edges (useful for tests)."""
        return list(self.edges())

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``(u, v)``; True when genuinely new."""
        self._check_node(u)
        self._check_node(v)
        if u == v or bitset.get_bit(self._bits, u, v):
            return False
        self._ensure_capacity(int(max(self._deg[u], self._deg[v])) + 1)
        self._append(u, v)
        bitset.set_bit(self._bits, u, v)
        bitset.set_bit(self._bits, v, u)
        self._num_edges += 1
        return True

    def add_edges_from(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many edges; return how many were actually new."""
        return len(self.add_edges_batch(list(edges)))

    def add_edges_batch(self, edges: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Vectorized batch insert; returns the new edges in first-occurrence order.

        Matches :meth:`DynamicGraph.add_edges_batch` exactly: self loops and
        duplicates (within the batch or against the graph) are rejected, the
        first occurrence of each new edge wins, and the returned tuples keep
        the proposal's original orientation.
        """
        if len(edges) == 0:
            return []
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if arr.size and (arr.min() < 0 or arr.max() >= self._n):
            raise IndexError(f"edge endpoint out of range [0, {self._n})")
        return self.add_edges_batch_arrays(arr[:, 0], arr[:, 1])

    def add_edges_batch_arrays(self, us: np.ndarray, vs: np.ndarray) -> List[Tuple[int, int]]:
        """Array-argument core of :meth:`add_edges_batch` (same contract).

        The hot path of the vectorized round engine: endpoints arrive as the
        arrays a propose kernel produced, so no tuple round-trip happens.
        Already-present edges are filtered *before* the within-batch dedupe
        (the two commute), so late rounds — where almost every proposal
        already exists — skip the sort entirely.
        """
        if us.shape[0] == 0:
            return []
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        cand = np.flatnonzero((lo != hi) & ~bitset.get_bits(self._bits, lo, hi))
        if cand.size == 0:
            return []
        if cand.size > 1:
            keys = lo[cand] * np.int64(self._n) + hi[cand]
            _, first = np.unique(keys, return_index=True)
            if first.size != cand.size:
                first.sort()
                cand = cand[first]
        add_u, add_v = us[cand], vs[cand]
        self._write_new_edges(add_u, add_v)
        bitset.set_bits(self._bits, add_u, add_v)
        bitset.set_bits(self._bits, add_v, add_u)
        self._num_edges += add_u.shape[0]
        return list(zip(add_u.tolist(), add_v.tolist()))

    def _write_new_edges(self, add_u: np.ndarray, add_v: np.ndarray) -> None:
        """Scatter the mutual neighbour entries for verified-new edges.

        Grouped slot assignment: interleaving the endpoints (u-entry before
        v-entry, batch order preserved by the stable sort) reproduces the
        exact append order of sequential :meth:`add_edge` calls, which keeps
        neighbour rows identical to the list backend's.
        """
        k = add_u.shape[0]
        ends = np.empty(2 * k, dtype=np.int64)
        vals = np.empty(2 * k, dtype=np.int64)
        ends[0::2] = add_u
        ends[1::2] = add_v
        vals[0::2] = add_v
        vals[1::2] = add_u
        grow = np.bincount(ends, minlength=self._n)
        self._ensure_capacity(int((self._deg + grow).max()))
        order = np.argsort(ends, kind="stable")
        se = ends[order]
        run_start = np.flatnonzero(np.concatenate(([True], se[1:] != se[:-1])))
        run_length = np.diff(np.concatenate((run_start, [se.size])))
        offsets = np.arange(se.size) - np.repeat(run_start, run_length)
        self._nbr[se, self._deg[se] + offsets] = vals[order]
        self._deg += grow

    def _append(self, u: int, v: int) -> None:
        """Write the mutual neighbour entries for a new edge (capacity ensured)."""
        deg = self._deg
        self._nbr[u, deg[u]] = v
        self._nbr[v, deg[v]] = u
        deg[u] += 1
        deg[v] += 1

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._cap:
            return
        new_cap = _round_up_pow2(needed)
        grown = np.full((self._n, new_cap), -1, dtype=np.int64)
        grown[:, : self._cap] = self._nbr
        self._nbr = grown
        self._cap = new_cap

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def random_neighbors(self, nodes: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Vectorized uniform neighbour sample for a whole batch of nodes.

        Same draw-stream contract as :meth:`DynamicGraph.random_neighbors`:
        exactly ``rng.random(len(nodes))`` is consumed and indices come from
        :func:`repro.graphs.sampling.uniform_indices`, so both backends map
        the same seed to the same choices.  ``-1`` marks invalid entries.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        u = rng.random(nodes.shape[0])
        safe, counts = masked_counts(nodes, self._deg)
        idx = uniform_indices(u, counts)
        # Inlined gather (same result as neighbors_at, fewer passes).
        gathered = self._nbr[safe, np.maximum(idx, 0)]
        return np.where(idx >= 0, gathered, -1)

    def neighbors_at(self, nodes: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Gather ``neighbors(nodes[i])[idx[i]]`` per element (``-1`` passthrough)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        idx = np.asarray(idx, dtype=np.int64)
        valid = idx >= 0
        gathered = self._nbr[np.where(valid, nodes, 0), np.where(valid, idx, 0)]
        return np.where(valid, gathered, -1)

    def random_neighbor(self, u: int, rng: np.random.Generator) -> int:
        """Sample a uniformly random neighbour of ``u`` (scalar API parity)."""
        k = int(self._deg[u])
        if k == 0:
            raise ValueError(f"node {u} has no neighbors to sample from")
        return int(self._nbr[u, int(rng.integers(k))])

    def random_neighbor_pair(self, u: int, rng: np.random.Generator) -> Tuple[int, int]:
        """Sample two independent uniform neighbours of ``u`` (with replacement)."""
        k = int(self._deg[u])
        if k == 0:
            raise ValueError(f"node {u} has no neighbors to sample from")
        i = int(rng.integers(k))
        j = int(rng.integers(k))
        return int(self._nbr[u, i]), int(self._nbr[u, j])

    # ------------------------------------------------------------------ #
    # derived quantities / conversions
    # ------------------------------------------------------------------ #
    def is_complete(self) -> bool:
        """True when every pair of distinct nodes is connected."""
        return self._num_edges == self._n * (self._n - 1) // 2

    def missing_edges(self) -> int:
        """Number of node pairs not yet connected by an edge."""
        return self._n * (self._n - 1) // 2 - self._num_edges

    def adjacency_matrix(self) -> np.ndarray:
        """Return the dense boolean adjacency matrix (symmetric, zero diagonal)."""
        return bitset.unpack_bool_matrix(self._bits, self._n)

    def adjacency_bits(self) -> np.ndarray:
        """The packed membership rows (``uint64``, n²/8 bits; live view, do not mutate).

        Row ``u``, bit ``v`` is the edge ``(u, v)``; symmetric with a zero
        diagonal.  This is the zero-copy input format of the closure and
        reachability kernels in :mod:`repro.graphs.bitset`.
        """
        return self._bits

    def membership_nbytes(self) -> int:
        """Bytes spent on the packed membership matrix (≈ n²/8)."""
        return int(self._bits.nbytes)

    def copy(self) -> "ArrayGraph":
        """Return an independent deep copy of the graph."""
        g = ArrayGraph(self._n)
        g._cap = self._cap
        g._nbr = self._nbr.copy()
        g._deg = self._deg.copy()
        g._bits = self._bits.copy()
        g._num_edges = self._num_edges
        return g

    @classmethod
    def from_graph(cls, graph: DynamicGraph) -> "ArrayGraph":
        """Build an :class:`ArrayGraph` preserving per-node neighbour order.

        Preserving insertion order (not just the edge set) is what makes the
        seeded traces of the two backends identical.
        """
        g = cls(graph.n)
        if graph.n == 0:
            return g
        g._ensure_capacity(graph.max_degree())
        for u in graph.nodes():
            row = graph.neighbors(u)
            g._nbr[u, : len(row)] = row
        g._deg = graph.degrees()
        edge_arr = np.asarray(graph.edge_list(), dtype=np.int64).reshape(-1, 2)
        if edge_arr.size:
            bitset.set_bits(g._bits, edge_arr[:, 0], edge_arr[:, 1])
            bitset.set_bits(g._bits, edge_arr[:, 1], edge_arr[:, 0])
        g._num_edges = graph.number_of_edges()
        return g

    def to_dynamic(self) -> DynamicGraph:
        """Convert back to a list-backed :class:`DynamicGraph`.

        The result has the same edge set; per-node insertion order follows
        the canonical edge order (the original global insertion interleaving
        is not recoverable from per-node rows).
        """
        return DynamicGraph(self._n, self.edge_list())

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (ArrayGraph, DynamicGraph)):
            return self._n == other.n and self.edge_list() == other.edge_list()
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("ArrayGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return f"ArrayGraph(n={self._n}, m={self._num_edges}, cap={self._cap})"

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise IndexError(f"node {u} out of range [0, {self._n})")


class ArrayDiGraph:
    """Directed simple graph with preallocated NumPy out-neighbour storage.

    Mirrors :class:`~repro.graphs.adjacency.DynamicDiGraph` the way
    :class:`ArrayGraph` mirrors :class:`DynamicGraph`: out-neighbour rows in
    a 2-D array with amortized doubling, membership in word-packed
    ``uint64`` bitset rows (n²/8 bytes), in-degrees as counters for metrics.
    """

    __slots__ = ("_n", "_out", "_out_deg", "_in_deg", "_bits", "_num_edges", "_cap")

    #: backend dispatch flag: directed graphs expose out_degree()/out_neighbors().
    directed = True

    def __init__(self, n: int, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        if n < 0:
            raise ValueError(f"number of nodes must be non-negative, got {n}")
        self._n = int(n)
        self._cap = _MIN_CAPACITY
        self._out = np.full((self._n, self._cap), -1, dtype=np.int64)
        self._out_deg = np.zeros(self._n, dtype=np.int64)
        self._in_deg = np.zeros(self._n, dtype=np.int64)
        self._bits = bitset.zeros(self._n, self._n)
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def capacity(self) -> int:
        """Current out-neighbour-row capacity (grows by doubling)."""
        return self._cap

    def number_of_nodes(self) -> int:
        """Number of nodes (alias of :attr:`n`)."""
        return self._n

    def number_of_edges(self) -> int:
        """Number of distinct directed edges currently present."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate over node identifiers ``0 .. n-1``."""
        return range(self._n)

    def out_degree(self, u: int) -> int:
        """Out-degree of node ``u``."""
        self._check_node(u)
        return int(self._out_deg[u])

    def in_degree(self, u: int) -> int:
        """In-degree of node ``u``."""
        self._check_node(u)
        return int(self._in_deg[u])

    def out_degrees(self) -> np.ndarray:
        """Return a copy of the out-degree vector."""
        return self._out_deg.copy()

    def in_degrees(self) -> np.ndarray:
        """Return a copy of the in-degree vector."""
        return self._in_deg.copy()

    def out_neighbors(self, u: int) -> np.ndarray:
        """Out-neighbour row of ``u`` in insertion order (live view; do not mutate)."""
        self._check_node(u)
        return self._out[u, : self._out_deg[u]]

    def out_neighbor_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """The padded out-neighbour-row block and out-degree vector (live views).

        Directed counterpart of :meth:`ArrayGraph.neighbor_rows`; callers
        must not mutate either array.
        """
        return self._out, self._out_deg

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the directed edge ``u -> v`` is present."""
        return bitset.get_bit(self._bits, u, v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over directed edges ``(u, v)`` in canonical order."""
        us, vs = np.nonzero(bitset.unpack_bool_matrix(self._bits, self._n))
        return iter(zip(us.tolist(), vs.tolist()))

    def edge_list(self) -> List[Tuple[int, int]]:
        """Return a sorted list of directed edges."""
        return list(self.edges())

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> bool:
        """Add the directed edge ``u -> v``; True when genuinely new."""
        self._check_node(u)
        self._check_node(v)
        if u == v or bitset.get_bit(self._bits, u, v):
            return False
        self._ensure_capacity(int(self._out_deg[u]) + 1)
        self._out[u, self._out_deg[u]] = v
        self._out_deg[u] += 1
        self._in_deg[v] += 1
        bitset.set_bit(self._bits, u, v)
        self._num_edges += 1
        return True

    def add_edges_from(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many directed edges; return how many were actually new."""
        return len(self.add_edges_batch(list(edges)))

    def add_edges_batch(self, edges: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Vectorized batch insert; returns the new edges in first-occurrence order."""
        if len(edges) == 0:
            return []
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if arr.size and (arr.min() < 0 or arr.max() >= self._n):
            raise IndexError(f"edge endpoint out of range [0, {self._n})")
        return self.add_edges_batch_arrays(arr[:, 0], arr[:, 1])

    def add_edges_batch_arrays(self, us: np.ndarray, vs: np.ndarray) -> List[Tuple[int, int]]:
        """Array-argument core of :meth:`add_edges_batch` (same contract).

        Same structure as the undirected version: filter present edges
        first, dedupe the (usually few) remaining candidates, then scatter
        the new out-entries with grouped slot assignment.
        """
        if us.shape[0] == 0:
            return []
        cand = np.flatnonzero((us != vs) & ~bitset.get_bits(self._bits, us, vs))
        if cand.size == 0:
            return []
        if cand.size > 1:
            keys = us[cand] * np.int64(self._n) + vs[cand]
            _, first = np.unique(keys, return_index=True)
            if first.size != cand.size:
                first.sort()
                cand = cand[first]
        add_u, add_v = us[cand], vs[cand]
        grow = np.bincount(add_u, minlength=self._n)
        self._ensure_capacity(int((self._out_deg + grow).max()))
        order = np.argsort(add_u, kind="stable")
        su = add_u[order]
        run_start = np.flatnonzero(np.concatenate(([True], su[1:] != su[:-1])))
        run_length = np.diff(np.concatenate((run_start, [su.size])))
        offsets = np.arange(su.size) - np.repeat(run_start, run_length)
        self._out[su, self._out_deg[su] + offsets] = add_v[order]
        self._out_deg += grow
        self._in_deg += np.bincount(add_v, minlength=self._n)
        bitset.set_bits(self._bits, add_u, add_v)
        self._num_edges += add_u.shape[0]
        return list(zip(add_u.tolist(), add_v.tolist()))

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._cap:
            return
        new_cap = _round_up_pow2(needed)
        grown = np.full((self._n, new_cap), -1, dtype=np.int64)
        grown[:, : self._cap] = self._out
        self._out = grown
        self._cap = new_cap

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def random_out_neighbors(self, nodes: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Vectorized uniform out-neighbour sample (``-1`` sentinel, bulk draws).

        Draw-stream identical to :meth:`DynamicDiGraph.random_out_neighbors`.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        u = rng.random(nodes.shape[0])
        safe, counts = masked_counts(nodes, self._out_deg)
        idx = uniform_indices(u, counts)
        # Inlined gather (same result as out_neighbors_at, fewer passes).
        gathered = self._out[safe, np.maximum(idx, 0)]
        return np.where(idx >= 0, gathered, -1)

    def out_neighbors_at(self, nodes: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Gather ``out_neighbors(nodes[i])[idx[i]]`` per element (``-1`` passthrough)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        idx = np.asarray(idx, dtype=np.int64)
        valid = idx >= 0
        gathered = self._out[np.where(valid, nodes, 0), np.where(valid, idx, 0)]
        return np.where(valid, gathered, -1)

    def random_out_neighbor(self, u: int, rng: np.random.Generator) -> int:
        """Sample a uniformly random out-neighbour of ``u`` (scalar API parity)."""
        k = int(self._out_deg[u])
        if k == 0:
            raise ValueError(f"node {u} has no out-neighbors to sample from")
        return int(self._out[u, int(rng.integers(k))])

    # ------------------------------------------------------------------ #
    # derived quantities / conversions
    # ------------------------------------------------------------------ #
    def adjacency_matrix(self) -> np.ndarray:
        """Return the dense boolean adjacency matrix (``mat[u, v]`` iff ``u -> v``)."""
        return bitset.unpack_bool_matrix(self._bits, self._n)

    def adjacency_bits(self) -> np.ndarray:
        """The packed out-edge membership rows (live view, do not mutate).

        Row ``u``, bit ``v`` is the directed edge ``u -> v`` — the zero-copy
        input of the bitset closure/reachability kernels.
        """
        return self._bits

    def membership_nbytes(self) -> int:
        """Bytes spent on the packed membership matrix (≈ n²/8)."""
        return int(self._bits.nbytes)

    def copy(self) -> "ArrayDiGraph":
        """Return an independent deep copy of the digraph."""
        g = ArrayDiGraph(self._n)
        g._cap = self._cap
        g._out = self._out.copy()
        g._out_deg = self._out_deg.copy()
        g._in_deg = self._in_deg.copy()
        g._bits = self._bits.copy()
        g._num_edges = self._num_edges
        return g

    @classmethod
    def from_graph(cls, graph: DynamicDiGraph) -> "ArrayDiGraph":
        """Build an :class:`ArrayDiGraph` preserving per-node out-neighbour order."""
        g = cls(graph.n)
        if graph.n == 0:
            return g
        out_deg = graph.out_degrees()
        g._ensure_capacity(int(out_deg.max()) if out_deg.size else 0)
        for u in graph.nodes():
            row = graph.out_neighbors(u)
            g._out[u, : len(row)] = row
        g._out_deg = out_deg
        g._in_deg = graph.in_degrees()
        edge_arr = np.asarray(graph.edge_list(), dtype=np.int64).reshape(-1, 2)
        if edge_arr.size:
            bitset.set_bits(g._bits, edge_arr[:, 0], edge_arr[:, 1])
        g._num_edges = graph.number_of_edges()
        return g

    def to_dynamic(self) -> DynamicDiGraph:
        """Convert back to a list-backed :class:`DynamicDiGraph` (canonical order)."""
        return DynamicDiGraph(self._n, self.edge_list())

    def to_undirected(self) -> ArrayGraph:
        """Return the undirected graph obtained by forgetting edge direction."""
        g = ArrayGraph(self._n)
        g.add_edges_batch(self.edge_list())
        return g

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (ArrayDiGraph, DynamicDiGraph)):
            return self._n == other.n and self.edge_list() == other.edge_list()
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("ArrayDiGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return f"ArrayDiGraph(n={self._n}, m={self._num_edges}, cap={self._cap})"

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise IndexError(f"node {u} out of range [0, {self._n})")


GraphAny = Union[DynamicGraph, DynamicDiGraph, ArrayGraph, ArrayDiGraph]


def backend_name(graph: GraphAny) -> str:
    """Return ``"array"`` or ``"list"`` for a graph instance."""
    return "array" if isinstance(graph, (ArrayGraph, ArrayDiGraph)) else "list"


def as_backend(graph: GraphAny, backend: str) -> GraphAny:
    """Convert ``graph`` to the requested backend (no-op when it already matches).

    ``"array"`` conversion preserves per-node neighbour insertion order, so
    seeded runs are trace-identical across backends; ``"list"`` conversion
    rebuilds from the canonical edge list.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
    if backend == backend_name(graph):
        return graph
    if backend == "array":
        if graph.directed:
            return ArrayDiGraph.from_graph(graph)
        return ArrayGraph.from_graph(graph)
    return graph.to_dynamic()
