"""Dynamic adjacency structures tuned for the gossip discovery processes.

The discovery processes of the paper perform exactly two hot operations on
the evolving graph, many times per round:

* ``add_edge(u, v)`` — possibly a duplicate, in which case nothing changes;
* ``random_neighbor(u, rng)`` — sample a neighbour of ``u`` uniformly.

Both are O(1) amortised here.  Each node keeps an append-only neighbour
list (a Python ``list`` of ints — appends are amortised O(1) and uniform
sampling is a single index), and edge membership is tracked in a hash set
so duplicate additions are rejected in O(1) without scanning the list.

The classes deliberately do **not** support edge deletion: the paper's
processes only ever add edges, and the append-only restriction is what
makes the structures this simple and this fast.  (Node churn in
:mod:`repro.core.variants` is modelled by masking participation, not by
deleting edges.)

Two classes are provided:

``DynamicGraph``
    Undirected simple graph on nodes ``0 .. n-1``.

``DynamicDiGraph``
    Directed simple graph (no self loops, no parallel edges) with
    out-neighbour lists; the directed two-hop walk only ever follows and
    adds out-edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.sampling import masked_counts, uniform_indices

__all__ = ["DynamicGraph", "DynamicDiGraph"]


def _normalize_edge(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (min, max) form of an undirected edge."""
    return (u, v) if u < v else (v, u)


class DynamicGraph:
    """An undirected simple graph supporting O(1) edge-add and neighbour sampling.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are the integers ``0 .. n-1``.
    edges:
        Optional iterable of ``(u, v)`` pairs to add initially.  Duplicate
        pairs and self loops are ignored, mirroring the paper's processes
        (adding an existing edge is a no-op).

    Notes
    -----
    The structure is append-only — edges can be added but never removed.
    This matches the monotone evolution of the discovery processes and is
    what allows every operation here to be O(1) amortised.
    """

    __slots__ = ("_n", "_neighbors", "_edge_set", "_num_edges", "_degrees")

    #: backend dispatch flag: undirected graphs expose degree()/neighbors().
    directed = False

    def __init__(self, n: int, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        if n < 0:
            raise ValueError(f"number of nodes must be non-negative, got {n}")
        self._n = int(n)
        self._neighbors: List[List[int]] = [[] for _ in range(self._n)]
        self._edge_set: Set[Tuple[int, int]] = set()
        self._num_edges = 0
        self._degrees = np.zeros(self._n, dtype=np.int64)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    def number_of_nodes(self) -> int:
        """Number of nodes (alias of :attr:`n`)."""
        return self._n

    def number_of_edges(self) -> int:
        """Number of distinct undirected edges currently present."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate over node identifiers ``0 .. n-1``."""
        return range(self._n)

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        self._check_node(u)
        return int(self._degrees[u])

    def degrees(self) -> np.ndarray:
        """Return a copy of the degree vector as an ``int64`` numpy array."""
        return self._degrees.copy()

    def min_degree(self) -> int:
        """Minimum degree over all nodes (0 for an empty graph with nodes)."""
        if self._n == 0:
            return 0
        return int(self._degrees.min())

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for an empty graph with nodes)."""
        if self._n == 0:
            return 0
        return int(self._degrees.max())

    def neighbors(self, u: int) -> Sequence[int]:
        """Return the neighbour list of ``u``.

        The returned list is the live internal list — callers must not
        mutate it.  Order is insertion order, which is irrelevant for the
        uniform sampling performed by the processes.
        """
        self._check_node(u)
        return self._neighbors[u]

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the undirected edge ``(u, v)`` is present."""
        if u == v:
            return False
        return _normalize_edge(u, v) in self._edge_set

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the edges as canonical ``(min, max)`` pairs."""
        return iter(self._edge_set)

    def edge_list(self) -> List[Tuple[int, int]]:
        """Return a sorted list of canonical edges (useful for tests)."""
        return sorted(self._edge_set)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``(u, v)``.

        Returns True if a new edge was added, False if the edge already
        existed or ``u == v`` (self loops are never added, matching the
        paper's processes where connecting a node to itself is vacuous).
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return False
        key = _normalize_edge(u, v)
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._neighbors[u].append(v)
        self._neighbors[v].append(u)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self._num_edges += 1
        return True

    def add_edges_from(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many edges; return how many were actually new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def add_edges_batch(self, edges: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Add a batch of proposed edges; return the genuinely new ones in order.

        Sequential application: within the batch the *first* occurrence of
        each new edge wins, exactly as if :meth:`add_edge` were called in
        order.  The array backend implements the same contract vectorised;
        the round engine relies on both producing identical results.
        """
        return [(u, v) for u, v in edges if self.add_edge(u, v)]

    def add_edges_batch_arrays(self, us: np.ndarray, vs: np.ndarray) -> List[Tuple[int, int]]:
        """Array-argument form of :meth:`add_edges_batch` (same contract)."""
        return [
            (u, v) for u, v in zip(us.tolist(), vs.tolist()) if self.add_edge(u, v)
        ]

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def random_neighbors(self, nodes: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Sample one uniform neighbour for each node in ``nodes`` (bulk).

        Consumes exactly ``rng.random(len(nodes))`` and maps the uniforms to
        neighbour indices with :func:`repro.graphs.sampling.uniform_indices`,
        so the draw stream is identical across backends.  Entries that are
        ``-1`` or isolated yield ``-1`` (they still consume their uniform).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        u = rng.random(nodes.shape[0])
        safe, counts = masked_counts(nodes, self._degrees)
        idx = uniform_indices(u, counts)
        return self.neighbors_at(safe, idx)

    def neighbors_at(self, nodes: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Gather ``neighbors(nodes[i])[idx[i]]`` per element (``-1`` passthrough)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        idx = np.asarray(idx, dtype=np.int64)
        out = np.full(nodes.shape[0], -1, dtype=np.int64)
        sel = np.flatnonzero(idx >= 0)
        if sel.size:
            nbrs = self._neighbors
            out[sel] = [
                nbrs[node][i] for node, i in zip(nodes[sel].tolist(), idx[sel].tolist())
            ]
        return out

    def random_neighbor(self, u: int, rng: np.random.Generator) -> int:
        """Sample a uniformly random neighbour of ``u``.

        Raises ``ValueError`` if ``u`` is isolated — the paper assumes a
        connected starting graph so every node has at least one neighbour.
        """
        nbrs = self._neighbors[u]
        if not nbrs:
            raise ValueError(f"node {u} has no neighbors to sample from")
        return nbrs[int(rng.integers(len(nbrs)))]

    def random_neighbor_pair(self, u: int, rng: np.random.Generator) -> Tuple[int, int]:
        """Sample two independent uniformly random neighbours of ``u``.

        This is the triangulation (push) primitive: the two draws are with
        replacement, exactly as in the paper ("chooses two random
        neighbors"; if both draws coincide the added edge is a self loop
        and hence a no-op).
        """
        nbrs = self._neighbors[u]
        if not nbrs:
            raise ValueError(f"node {u} has no neighbors to sample from")
        k = len(nbrs)
        i = int(rng.integers(k))
        j = int(rng.integers(k))
        return nbrs[i], nbrs[j]

    # ------------------------------------------------------------------ #
    # derived quantities / conversions
    # ------------------------------------------------------------------ #
    def is_complete(self) -> bool:
        """True when every pair of distinct nodes is connected."""
        return self._num_edges == self._n * (self._n - 1) // 2

    def missing_edges(self) -> int:
        """Number of node pairs not yet connected by an edge."""
        return self._n * (self._n - 1) // 2 - self._num_edges

    def adjacency_matrix(self) -> np.ndarray:
        """Return the dense boolean adjacency matrix (symmetric, zero diagonal)."""
        mat = np.zeros((self._n, self._n), dtype=bool)
        for u, v in self._edge_set:
            mat[u, v] = True
            mat[v, u] = True
        return mat

    def copy(self) -> "DynamicGraph":
        """Return an independent deep copy of the graph."""
        g = DynamicGraph(self._n)
        g._edge_set = set(self._edge_set)
        g._neighbors = [list(nbrs) for nbrs in self._neighbors]
        g._num_edges = self._num_edges
        g._degrees = self._degrees.copy()
        return g

    def subgraph(self, nodes: Sequence[int]) -> Tuple["DynamicGraph", Dict[int, int]]:
        """Return the induced subgraph on ``nodes`` plus the relabelling map.

        The subgraph's nodes are relabelled ``0 .. k-1`` in the order given;
        the returned dict maps original labels to new labels.  Used by the
        subset/group-discovery corollary (run the process restricted to a
        connected induced subgraph).
        """
        mapping = {orig: new for new, orig in enumerate(nodes)}
        if len(mapping) != len(nodes):
            raise ValueError("duplicate nodes in subgraph selection")
        sub = DynamicGraph(len(nodes))
        node_set = set(nodes)
        # Sorted iteration keeps the subgraph's neighbour-list insertion order
        # independent of the host's edge-set hash order, so restricted runs
        # are reproducible from a seed regardless of the host graph.
        for u, v in sorted(self._edge_set):
            if u in node_set and v in node_set:
                sub.add_edge(mapping[u], mapping[v])
        return sub, mapping

    @classmethod
    def from_adjacency_matrix(cls, mat: np.ndarray) -> "DynamicGraph":
        """Build a graph from a square boolean/0-1 adjacency matrix.

        The matrix is symmetrised (an edge is added if either direction is
        set) and the diagonal is ignored.
        """
        arr = np.asarray(mat)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError(f"adjacency matrix must be square, got shape {arr.shape}")
        n = arr.shape[0]
        g = cls(n)
        us, vs = np.nonzero(arr)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u < v:
                g.add_edge(u, v)
            elif v < u:
                g.add_edge(v, u)
        return g

    @classmethod
    def from_networkx(cls, nx_graph) -> "DynamicGraph":
        """Build a DynamicGraph from a networkx graph with integer-convertible nodes.

        Nodes are relabelled to ``0 .. n-1`` in sorted order.
        """
        nodes = sorted(nx_graph.nodes())
        mapping = {node: i for i, node in enumerate(nodes)}
        g = cls(len(nodes))
        for u, v in nx_graph.edges():
            g.add_edge(mapping[u], mapping[v])
        return g

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (requires networkx)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n))
        nx_graph.add_edges_from(self._edge_set)
        return nx_graph

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return self._n == other._n and self._edge_set == other._edge_set

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable; defined for clarity
        raise TypeError("DynamicGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return f"DynamicGraph(n={self._n}, m={self._num_edges})"

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise IndexError(f"node {u} out of range [0, {self._n})")


class DynamicDiGraph:
    """A directed simple graph with O(1) edge-add and out-neighbour sampling.

    The directed two-hop walk only follows out-edges and only adds
    out-edges, so only out-neighbour lists are maintained for sampling;
    in-degrees are tracked as counters for metrics.
    """

    __slots__ = ("_n", "_out", "_edge_set", "_num_edges", "_out_degrees", "_in_degrees")

    #: backend dispatch flag: directed graphs expose out_degree()/out_neighbors().
    directed = True

    def __init__(self, n: int, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        if n < 0:
            raise ValueError(f"number of nodes must be non-negative, got {n}")
        self._n = int(n)
        self._out: List[List[int]] = [[] for _ in range(self._n)]
        self._edge_set: Set[Tuple[int, int]] = set()
        self._num_edges = 0
        self._out_degrees = np.zeros(self._n, dtype=np.int64)
        self._in_degrees = np.zeros(self._n, dtype=np.int64)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    def number_of_nodes(self) -> int:
        """Number of nodes (alias of :attr:`n`)."""
        return self._n

    def number_of_edges(self) -> int:
        """Number of distinct directed edges currently present."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate over node identifiers ``0 .. n-1``."""
        return range(self._n)

    def out_degree(self, u: int) -> int:
        """Out-degree of node ``u``."""
        self._check_node(u)
        return int(self._out_degrees[u])

    def in_degree(self, u: int) -> int:
        """In-degree of node ``u``."""
        self._check_node(u)
        return int(self._in_degrees[u])

    def out_degrees(self) -> np.ndarray:
        """Return a copy of the out-degree vector."""
        return self._out_degrees.copy()

    def in_degrees(self) -> np.ndarray:
        """Return a copy of the in-degree vector."""
        return self._in_degrees.copy()

    def out_neighbors(self, u: int) -> Sequence[int]:
        """Live out-neighbour list of ``u`` (do not mutate)."""
        self._check_node(u)
        return self._out[u]

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the directed edge ``u -> v`` is present."""
        return (u, v) in self._edge_set

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over directed edges ``(u, v)``."""
        return iter(self._edge_set)

    def edge_list(self) -> List[Tuple[int, int]]:
        """Return a sorted list of directed edges."""
        return sorted(self._edge_set)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> bool:
        """Add the directed edge ``u -> v``; returns True if it is new.

        Self loops are rejected (return False) just like duplicates.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return False
        key = (u, v)
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._out[u].append(v)
        self._out_degrees[u] += 1
        self._in_degrees[v] += 1
        self._num_edges += 1
        return True

    def add_edges_from(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many directed edges; return how many were actually new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def add_edges_batch(self, edges: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Add a batch of proposed directed edges; return the new ones in order."""
        return [(u, v) for u, v in edges if self.add_edge(u, v)]

    def add_edges_batch_arrays(self, us: np.ndarray, vs: np.ndarray) -> List[Tuple[int, int]]:
        """Array-argument form of :meth:`add_edges_batch` (same contract)."""
        return [
            (u, v) for u, v in zip(us.tolist(), vs.tolist()) if self.add_edge(u, v)
        ]

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def random_out_neighbors(self, nodes: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Sample one uniform out-neighbour per node (bulk; ``-1`` sentinel).

        Same draw-stream contract as :meth:`DynamicGraph.random_neighbors`:
        exactly ``rng.random(len(nodes))`` is consumed regardless of which
        entries are valid.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        u = rng.random(nodes.shape[0])
        safe, counts = masked_counts(nodes, self._out_degrees)
        idx = uniform_indices(u, counts)
        return self.out_neighbors_at(safe, idx)

    def out_neighbors_at(self, nodes: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Gather ``out_neighbors(nodes[i])[idx[i]]`` per element (``-1`` passthrough)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        idx = np.asarray(idx, dtype=np.int64)
        out = np.full(nodes.shape[0], -1, dtype=np.int64)
        sel = np.flatnonzero(idx >= 0)
        if sel.size:
            lists = self._out
            out[sel] = [
                lists[node][i] for node, i in zip(nodes[sel].tolist(), idx[sel].tolist())
            ]
        return out

    def random_out_neighbor(self, u: int, rng: np.random.Generator) -> int:
        """Sample a uniformly random out-neighbour of ``u``.

        Raises ``ValueError`` if ``u`` has no out-edges.
        """
        nbrs = self._out[u]
        if not nbrs:
            raise ValueError(f"node {u} has no out-neighbors to sample from")
        return nbrs[int(rng.integers(len(nbrs)))]

    # ------------------------------------------------------------------ #
    # derived quantities / conversions
    # ------------------------------------------------------------------ #
    def adjacency_matrix(self) -> np.ndarray:
        """Return the dense boolean adjacency matrix (``mat[u, v]`` iff ``u -> v``)."""
        mat = np.zeros((self._n, self._n), dtype=bool)
        for u, v in self._edge_set:
            mat[u, v] = True
        return mat

    def copy(self) -> "DynamicDiGraph":
        """Return an independent deep copy of the digraph."""
        g = DynamicDiGraph(self._n)
        g._edge_set = set(self._edge_set)
        g._out = [list(nbrs) for nbrs in self._out]
        g._num_edges = self._num_edges
        g._out_degrees = self._out_degrees.copy()
        g._in_degrees = self._in_degrees.copy()
        return g

    def to_undirected(self) -> DynamicGraph:
        """Return the undirected graph obtained by forgetting edge direction."""
        g = DynamicGraph(self._n)
        for u, v in self._edge_set:
            g.add_edge(u, v)
        return g

    @classmethod
    def from_adjacency_matrix(cls, mat: np.ndarray) -> "DynamicDiGraph":
        """Build a digraph from a square boolean/0-1 adjacency matrix."""
        arr = np.asarray(mat)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError(f"adjacency matrix must be square, got shape {arr.shape}")
        g = cls(arr.shape[0])
        us, vs = np.nonzero(arr)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u != v:
                g.add_edge(u, v)
        return g

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (requires networkx)."""
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(self._n))
        nx_graph.add_edges_from(self._edge_set)
        return nx_graph

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicDiGraph):
            return NotImplemented
        return self._n == other._n and self._edge_set == other._edge_set

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("DynamicDiGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return f"DynamicDiGraph(n={self._n}, m={self._num_edges})"

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise IndexError(f"node {u} out of range [0, {self._n})")
