"""Graph substrate for the gossip discovery processes.

This subpackage provides the dynamic graph data structures the processes
mutate (:mod:`repro.graphs.adjacency`), generators for every graph family
used in the paper's arguments and in our experiments
(:mod:`repro.graphs.generators`, :mod:`repro.graphs.directed_generators`),
structural property computations matching the paper's notation
(:mod:`repro.graphs.properties`), word-packed ``uint64`` bitset kernels for
membership/closure/convergence set algebra (:mod:`repro.graphs.bitset`),
transitive-closure utilities for the directed termination condition
(:mod:`repro.graphs.closure`), and invariant validation helpers
(:mod:`repro.graphs.validation`).
"""

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.array_adjacency import ArrayDiGraph, ArrayGraph, BACKENDS, as_backend
from repro.graphs import (
    bitset,
    generators,
    directed_generators,
    properties,
    closure,
    sampling,
    validation,
)

__all__ = [
    "DynamicGraph",
    "DynamicDiGraph",
    "ArrayGraph",
    "ArrayDiGraph",
    "BACKENDS",
    "as_backend",
    "bitset",
    "generators",
    "directed_generators",
    "properties",
    "closure",
    "sampling",
    "validation",
]
