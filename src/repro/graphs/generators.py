"""Undirected graph family generators.

Every family used by the paper's arguments or by our experiments is built
here, on top of :class:`repro.graphs.adjacency.DynamicGraph`.  All random
generators take an explicit :class:`numpy.random.Generator` so every
experiment is reproducible from a seed.

The paper-specific constructions are:

* :func:`fig1c_nonmonotone` — the 4-edge graph of Figure 1(c) whose
  expected triangulation convergence time *exceeds* that of its 3-edge
  path subgraph (:func:`fig1c_path_subgraph`).
* Sparse worst-case-ish families (path, cycle, star, binary tree,
  lollipop) used for the Ω(n log n) lower-bound experiments and the upper
  bound sweeps.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.adjacency import DynamicGraph

__all__ = [
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "grid_graph",
    "hypercube_graph",
    "binary_tree_graph",
    "caterpillar_graph",
    "lollipop_graph",
    "barbell_graph",
    "wheel_graph",
    "double_star_graph",
    "erdos_renyi_graph",
    "gnm_random_graph",
    "random_tree",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "random_regular_graph",
    "random_connected_graph",
    "complete_minus_matching",
    "complete_minus_random_edges",
    "fig1c_nonmonotone",
    "fig1c_triangle_subgraph",
    "fig1c_path_subgraph",
    "nonmonotone_supergraph_pair",
    "FAMILY_REGISTRY",
    "make_family",
    "family_names",
]


# --------------------------------------------------------------------------- #
# deterministic families
# --------------------------------------------------------------------------- #
def empty_graph(n: int) -> DynamicGraph:
    """Graph with ``n`` nodes and no edges."""
    return DynamicGraph(n)


def path_graph(n: int) -> DynamicGraph:
    """Path ``0 - 1 - ... - (n-1)``; the canonical sparse, high-diameter start."""
    if n < 1:
        raise ValueError("path graph needs at least 1 node")
    return DynamicGraph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> DynamicGraph:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("cycle graph needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return DynamicGraph(n, edges)


def star_graph(n: int) -> DynamicGraph:
    """Star with centre 0 and ``n - 1`` leaves (minimum degree 1, diameter 2)."""
    if n < 2:
        raise ValueError("star graph needs at least 2 nodes")
    return DynamicGraph(n, ((0, i) for i in range(1, n)))


def complete_graph(n: int) -> DynamicGraph:
    """Complete graph K_n — the absorbing state of the undirected processes."""
    if n < 1:
        raise ValueError("complete graph needs at least 1 node")
    return DynamicGraph(n, ((u, v) for u in range(n) for v in range(u + 1, n)))


def complete_bipartite_graph(a: int, b: int) -> DynamicGraph:
    """Complete bipartite graph K_{a,b} with parts ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise ValueError("both parts must be non-empty")
    n = a + b
    return DynamicGraph(n, ((u, a + v) for u in range(a) for v in range(b)))


def grid_graph(rows: int, cols: int) -> DynamicGraph:
    """2D grid with ``rows * cols`` nodes, 4-neighbour connectivity."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    n = rows * cols

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
    return DynamicGraph(n, edges)


def hypercube_graph(dim: int) -> DynamicGraph:
    """Boolean hypercube of dimension ``dim`` (``2**dim`` nodes)."""
    if dim < 0:
        raise ValueError("dimension must be non-negative")
    n = 1 << dim
    edges = []
    for u in range(n):
        for bit in range(dim):
            v = u ^ (1 << bit)
            if u < v:
                edges.append((u, v))
    return DynamicGraph(n, edges)


def binary_tree_graph(n: int) -> DynamicGraph:
    """Complete-ish binary tree on ``n`` nodes (node i's parent is (i-1)//2)."""
    if n < 1:
        raise ValueError("binary tree needs at least 1 node")
    return DynamicGraph(n, ((i, (i - 1) // 2) for i in range(1, n)))


def caterpillar_graph(spine: int, legs_per_node: int) -> DynamicGraph:
    """Caterpillar: a spine path with ``legs_per_node`` pendant leaves per spine node."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("spine must be positive and legs_per_node non-negative")
    n = spine * (1 + legs_per_node)
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_leaf = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, next_leaf))
            next_leaf += 1
    return DynamicGraph(n, edges)


def lollipop_graph(clique_size: int, path_length: int) -> DynamicGraph:
    """Lollipop: K_{clique_size} with a path of ``path_length`` extra nodes attached."""
    if clique_size < 1 or path_length < 0:
        raise ValueError("clique_size must be >= 1 and path_length >= 0")
    n = clique_size + path_length
    edges = [(u, v) for u in range(clique_size) for v in range(u + 1, clique_size)]
    prev = clique_size - 1
    for i in range(clique_size, n):
        edges.append((prev, i))
        prev = i
    return DynamicGraph(n, edges)


def barbell_graph(clique_size: int, path_length: int) -> DynamicGraph:
    """Two cliques of ``clique_size`` joined by a path of ``path_length`` nodes."""
    if clique_size < 1 or path_length < 0:
        raise ValueError("clique_size must be >= 1 and path_length >= 0")
    n = 2 * clique_size + path_length
    edges = [(u, v) for u in range(clique_size) for v in range(u + 1, clique_size)]
    second = list(range(clique_size + path_length, n))
    edges.extend((u, v) for i, u in enumerate(second) for v in second[i + 1:])
    chain = [clique_size - 1] + list(range(clique_size, clique_size + path_length)) + [second[0]]
    edges.extend(zip(chain[:-1], chain[1:]))
    return DynamicGraph(n, edges)


def wheel_graph(n: int) -> DynamicGraph:
    """Wheel: a cycle on nodes ``1..n-1`` all connected to hub 0 (``n >= 4``)."""
    if n < 4:
        raise ValueError("wheel graph needs at least 4 nodes")
    edges = [(0, i) for i in range(1, n)]
    rim = list(range(1, n))
    edges.extend((rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim)))
    return DynamicGraph(n, edges)


def double_star_graph(a: int, b: int) -> DynamicGraph:
    """Two star centres joined by an edge, with ``a`` and ``b`` leaves respectively."""
    if a < 0 or b < 0:
        raise ValueError("leaf counts must be non-negative")
    n = 2 + a + b
    edges = [(0, 1)]
    edges.extend((0, 2 + i) for i in range(a))
    edges.extend((1, 2 + a + i) for i in range(b))
    return DynamicGraph(n, edges)


# --------------------------------------------------------------------------- #
# paper Figure 1(c): the non-monotone example
# --------------------------------------------------------------------------- #
def fig1c_nonmonotone() -> DynamicGraph:
    """The 4-edge graph of Figure 1(c): a triangle with a pendant edge (the "paw").

    The figure's caption states that the expected convergence time for the
    4-edge graph exceeds that for its 3-edge subgraph.  The 3-edge subgraph
    is the triangle (:func:`fig1c_triangle_subgraph`), which is already a
    complete graph on its own node set and therefore converges in 0 rounds,
    whereas the 4-edge paw takes a positive expected number of rounds —
    adding an edge (and a node it brings along) *increased* the convergence
    time.  Nodes: triangle {1, 2, 3} plus pendant node 0 attached to 1.
    """
    return DynamicGraph(4, [(0, 1), (1, 2), (1, 3), (2, 3)])


def fig1c_triangle_subgraph() -> DynamicGraph:
    """The 3-edge triangle subgraph of :func:`fig1c_nonmonotone` (already complete)."""
    return DynamicGraph(3, [(0, 1), (1, 2), (0, 2)])


def fig1c_path_subgraph() -> DynamicGraph:
    """The 3-edge spanning path subgraph of :func:`fig1c_nonmonotone`.

    Kept for completeness: the path 0-1-2-3 (relabelled from the paw's
    0-1, 1-2, 2-3 edges) is the spanning 3-edge subgraph; its expected
    convergence time is *larger* than the paw's, illustrating the opposite
    direction of the same phenomenon (removing an edge can also slow the
    process down).
    """
    return DynamicGraph(4, [(0, 1), (1, 2), (2, 3)])


def nonmonotone_supergraph_pair() -> Tuple[DynamicGraph, DynamicGraph]:
    """A strict same-node-set non-monotone pair: the 4-cycle and the diamond.

    Returns ``(sparser, denser)`` where ``denser`` is the sparser graph plus
    one extra edge (the diamond ``C_4`` + chord), yet the *denser* graph has
    a strictly larger expected triangulation convergence time (≈2.53 vs
    ≈2.08 rounds, exactly computable).  This is the strongest form of the
    non-monotonicity that Figure 1(c) illustrates: adding an edge to a
    graph on the same node set slows the process down.
    """
    sparser = DynamicGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    denser = DynamicGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
    return sparser, denser


# --------------------------------------------------------------------------- #
# random families
# --------------------------------------------------------------------------- #
def _ensure_rng(
    rng: Union[np.random.Generator, np.random.SeedSequence, int, None],
) -> np.random.Generator:
    """Coerce an explicit seed source to a ``Generator``; reject ``None``.

    Random families feed seeded experiment traces, so an unseeded fallback
    here would silently void replayability (the repro-lint ``determinism``
    rule).  Callers that genuinely want fresh entropy must say so:
    ``default_rng(None)`` at the call site.
    """
    if rng is None:
        raise ValueError(
            "random graph families require an explicit rng (np.random."
            "Generator, SeedSequence or integer seed); an unseeded graph "
            "cannot be replayed"
        )
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def erdos_renyi_graph(
    n: int,
    p: float,
    rng: Optional[np.random.Generator] = None,
    ensure_connected: bool = False,
) -> DynamicGraph:
    """Erdős–Rényi G(n, p).

    With ``ensure_connected=True`` a uniform spanning-path over a random
    permutation is added first so the result is always connected (the
    paper's processes assume a connected start); the extra edges do not
    change the asymptotic density for ``p >= 2 ln n / n``.
    """
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = _ensure_rng(rng)
    g = DynamicGraph(n)
    if ensure_connected and n > 1:
        perm = rng.permutation(n)
        for i in range(n - 1):
            g.add_edge(int(perm[i]), int(perm[i + 1]))
    if p > 0.0 and n > 1:
        # Vectorised upper-triangle Bernoulli sampling.
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.shape[0]) < p
        for u, v in zip(iu[mask].tolist(), ju[mask].tolist()):
            g.add_edge(u, v)
    return g


def gnm_random_graph(
    n: int,
    m: int,
    rng: Optional[np.random.Generator] = None,
    ensure_connected: bool = False,
) -> DynamicGraph:
    """Uniform random graph with exactly ``m`` edges (plus a spanning tree if requested)."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges} for n={n}")
    rng = _ensure_rng(rng)
    g = DynamicGraph(n)
    if ensure_connected and n > 1:
        g = random_tree(n, rng)
    while g.number_of_edges() < max(m, g.number_of_edges()):
        if g.number_of_edges() >= m:
            break
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u != v:
            g.add_edge(u, v)
    return g


def random_tree(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    """Uniform-ish random labelled tree via random attachment (random recursive tree)."""
    if n < 1:
        raise ValueError("tree needs at least 1 node")
    rng = _ensure_rng(rng)
    g = DynamicGraph(n)
    for v in range(1, n):
        parent = int(rng.integers(v))
        g.add_edge(parent, v)
    return g


def barabasi_albert_graph(
    n: int, m: int, rng: Optional[np.random.Generator] = None
) -> DynamicGraph:
    """Barabási–Albert preferential attachment with ``m`` edges per new node.

    Used as the synthetic "social network" family in the evolution
    experiments (scale-free degree distribution).
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = _ensure_rng(rng)
    g = DynamicGraph(n)
    # Start from a star on the first m + 1 nodes so every node has degree >= 1.
    targets: List[int] = []
    for v in range(1, m + 1):
        g.add_edge(0, v)
        targets.extend([0, v])
    for v in range(m + 1, n):
        chosen: set = set()
        while len(chosen) < m:
            # Preferential attachment: sample an endpoint of a uniform edge stub.
            pick = targets[int(rng.integers(len(targets)))]
            chosen.add(pick)
        for t in chosen:
            g.add_edge(v, t)
            targets.extend([v, t])
    return g


def watts_strogatz_graph(
    n: int, k: int, p: float, rng: Optional[np.random.Generator] = None
) -> DynamicGraph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring probability ``p``).

    Rewiring never disconnects the original lattice here: instead of
    deleting, a rewired edge is *added* to a random target (the discovery
    processes only care about the starting edge set being connected, and
    keeping the lattice intact avoids pathological disconnections).
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be an even integer >= 2")
    if k >= n:
        raise ValueError("k must be < n")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    rng = _ensure_rng(rng)
    g = DynamicGraph(n)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            g.add_edge(u, (u + offset) % n)
    if p > 0:
        for u in range(n):
            for offset in range(1, k // 2 + 1):
                if rng.random() < p:
                    w = int(rng.integers(n))
                    if w != u:
                        g.add_edge(u, w)
    return g


def random_regular_graph(
    n: int, d: int, rng: Optional[np.random.Generator] = None, max_tries: int = 100
) -> DynamicGraph:
    """Random ``d``-regular graph via the configuration model with retries.

    Falls back to raising ``RuntimeError`` if a simple ``d``-regular graph
    is not found within ``max_tries`` attempts (vanishingly unlikely for
    the small degrees used in experiments).
    """
    if n * d % 2 != 0:
        raise ValueError("n * d must be even for a d-regular graph to exist")
    if d >= n:
        raise ValueError("d must be < n")
    if d < 1:
        raise ValueError("d must be >= 1")
    rng = _ensure_rng(rng)
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n), d)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        g = DynamicGraph(n)
        ok = True
        for u, v in pairs.tolist():
            if u == v or g.has_edge(u, v):
                ok = False
                break
            g.add_edge(u, v)
        if ok:
            return g
    raise RuntimeError(f"failed to build a simple {d}-regular graph in {max_tries} tries")


def random_connected_graph(
    n: int, extra_edge_prob: float = 0.05, rng: Optional[np.random.Generator] = None
) -> DynamicGraph:
    """A random tree plus independent extra edges — a generic connected test graph."""
    rng = _ensure_rng(rng)
    g = random_tree(n, rng)
    if extra_edge_prob > 0 and n > 2:
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.shape[0]) < extra_edge_prob
        for u, v in zip(iu[mask].tolist(), ju[mask].tolist()):
            g.add_edge(u, v)
    return g


def complete_minus_matching(n: int, k: int) -> DynamicGraph:
    """Complete graph with a matching of ``k`` disjoint edges removed.

    This is the dense starting point of the lower-bound experiments
    (Theorem 9/13: ``k`` missing edges force Ω(n log k) rounds).
    """
    if k > n // 2:
        raise ValueError(f"a matching of size {k} does not fit in {n} nodes")
    g = complete_graph(n)
    removed = {(2 * i, 2 * i + 1) for i in range(k)}
    out = DynamicGraph(n)
    for u, v in g.edges():
        if (u, v) not in removed:
            out.add_edge(u, v)
    return out


def complete_minus_random_edges(
    n: int, k: int, rng: Optional[np.random.Generator] = None
) -> DynamicGraph:
    """Complete graph with ``k`` uniformly random edges removed (kept connected by construction
    for ``k <= n(n-1)/2 - (n-1)`` with overwhelming probability; validated by callers)."""
    max_edges = n * (n - 1) // 2
    if k > max_edges:
        raise ValueError("cannot remove more edges than exist")
    rng = _ensure_rng(rng)
    all_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    remove_idx = set(rng.choice(len(all_edges), size=k, replace=False).tolist())
    g = DynamicGraph(n)
    for i, (u, v) in enumerate(all_edges):
        if i not in remove_idx:
            g.add_edge(u, v)
    return g


# --------------------------------------------------------------------------- #
# family registry — used by the experiment sweeps and the CLI
# --------------------------------------------------------------------------- #
def _er_connected(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    # Density 2 ln n / n keeps G(n, p) connected w.h.p.; the spanning path
    # backstop guarantees it for the small n used in tests.
    p = min(1.0, 2.0 * math.log(max(n, 2)) / max(n, 2))
    return erdos_renyi_graph(n, p, rng=rng, ensure_connected=True)


def _ba(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    return barabasi_albert_graph(n, m=min(3, max(1, n - 1)), rng=rng)


def _ws(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    k = 4 if n > 4 else 2
    return watts_strogatz_graph(n, k=k, p=0.1, rng=rng)


def _tree(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    return random_tree(n, rng)


def _path(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    return path_graph(n)


def _cycle(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    return cycle_graph(n)


def _star(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    return star_graph(n)


def _lollipop(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    clique = max(3, n // 2)
    return lollipop_graph(clique, n - clique)


def _grid(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    side = max(2, int(round(math.sqrt(n))))
    return grid_graph(side, side)


def _binary_tree(n: int, rng: Optional[np.random.Generator] = None) -> DynamicGraph:
    return binary_tree_graph(n)


#: Mapping from family name to a ``(n, rng) -> DynamicGraph`` factory.
#: ``grid`` rounds ``n`` to the nearest square.
FAMILY_REGISTRY: Dict[str, Callable[[int, Optional[np.random.Generator]], DynamicGraph]] = {
    "path": _path,
    "cycle": _cycle,
    "star": _star,
    "binary_tree": _binary_tree,
    "random_tree": _tree,
    "lollipop": _lollipop,
    "grid": _grid,
    "erdos_renyi": _er_connected,
    "barabasi_albert": _ba,
    "watts_strogatz": _ws,
}


def family_names() -> List[str]:
    """Names of all registered graph families."""
    return sorted(FAMILY_REGISTRY)


def make_family(
    name: str, n: int, rng: Optional[np.random.Generator] = None
) -> DynamicGraph:
    """Instantiate the registered family ``name`` at (approximately) ``n`` nodes."""
    try:
        factory = FAMILY_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown graph family {name!r}; known: {family_names()}") from None
    return factory(n, rng)
