"""Transitive closure and reachability utilities for directed termination.

The directed two-hop walk terminates when, for every ordered pair
``(u, v)`` with a ``u → v`` path in the *initial* graph ``G_0``, the edge
``(u, v)`` is present.  The target edge set is therefore the transitive
closure of ``G_0``; these helpers compute it once so the simulation engine
can track "missing closure edges" with an O(1)-per-added-edge counter.

All closure/reachability computations run on the word-packed bitset
kernels of :mod:`repro.graphs.bitset`: adjacency rows are ``uint64``
bitsets (zero-copy for the array backend, packed once for the list
backend), all-pairs reachability is Warshall elimination on packed rows,
and single-source reachability is a frontier BFS that ORs whole adjacency
rows — 64 pairs per machine-word operation instead of one queue pop per
node.  The original per-node Python BFS survives as
:func:`reachable_from_bfs` / :func:`reachability_matrix_bfs`, the oracle
the property tests check the kernels against.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple, Union

import numpy as np

from repro.graphs import bitset
from repro.graphs.adjacency import DynamicDiGraph

__all__ = [
    "adjacency_bits",
    "reachable_from",
    "reachable_from_bfs",
    "reachability_matrix",
    "reachability_matrix_bfs",
    "reachability_bits",
    "transitive_closure_edges",
    "transitive_closure_graph",
    "closure_deficit",
    "is_transitively_closed",
    "IncrementalClosure",
]

DiGraphLike = Union[DynamicDiGraph, "ArrayDiGraph"]  # noqa: F821 - doc only


def adjacency_bits(graph) -> np.ndarray:
    """Packed ``uint64`` adjacency rows of ``graph`` (bit ``v`` of row ``u``).

    Zero-copy when the graph already stores packed membership (the array
    backend's ``adjacency_bits()``); otherwise packed once from the edge
    list without materialising an n×n ``bool`` intermediate.  Callers must
    treat the result as read-only — it may alias live graph state.
    """
    native = getattr(graph, "adjacency_bits", None)
    if native is not None:
        return native()
    bits = bitset.zeros(graph.n, graph.n)
    edges = np.asarray(graph.edge_list(), dtype=np.int64).reshape(-1, 2)
    if edges.size:
        bitset.set_bits(bits, edges[:, 0], edges[:, 1])
        if not getattr(graph, "directed", False):
            bitset.set_bits(bits, edges[:, 1], edges[:, 0])
    return bits


def reachable_from(graph: DiGraphLike, source: int) -> Set[int]:
    """Nodes reachable from ``source`` along directed edges, excluding ``source``
    itself unless it lies on a directed cycle through ``source``.

    Word-parallel frontier BFS: each iteration ORs the packed adjacency
    rows of the whole frontier at once.
    """
    reach = bitset.reachable_bits(adjacency_bits(graph), source)
    return set(bitset.indices_from_bits(reach, graph.n).tolist())


def reachable_from_bfs(graph: DiGraphLike, source: int) -> Set[int]:
    """Reference implementation of :func:`reachable_from` (per-node Python BFS).

    Kept as the oracle the bitset kernel is property-tested against; not
    used on any hot path.
    """
    seen = np.zeros(graph.n, dtype=bool)
    queue = deque(graph.out_neighbors(source))
    for v in graph.out_neighbors(source):
        seen[v] = True
    result: Set[int] = set(int(v) for v in graph.out_neighbors(source))
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if not seen[v]:
                seen[v] = True
                result.add(int(v))
                queue.append(v)
    return result


def reachability_bits(graph: DiGraphLike) -> np.ndarray:
    """Packed all-pairs reachability matrix (Warshall on ``uint64`` rows).

    Bit ``v`` of row ``u`` is set iff there is a nonempty directed path
    ``u → v``; the diagonal bit is set iff ``u`` lies on a cycle.
    """
    return bitset.transitive_closure_bits(adjacency_bits(graph), graph.n)


def reachability_matrix(graph: DiGraphLike) -> np.ndarray:
    """Boolean matrix R with ``R[u, v]`` true iff there is a nonempty directed
    path from ``u`` to ``v``.  ``R[u, u]`` is true iff ``u`` lies on a cycle."""
    return bitset.unpack_bool_matrix(reachability_bits(graph), graph.n)


def reachability_matrix_bfs(graph: DiGraphLike) -> np.ndarray:
    """Reference implementation of :func:`reachability_matrix` (n Python BFS
    traversals, O(n·m)).  Kept as the property-test oracle."""
    n = graph.n
    mat = np.zeros((n, n), dtype=bool)
    for u in range(n):
        for v in reachable_from_bfs(graph, u):
            mat[u, v] = True
    return mat


def transitive_closure_edges(graph: DiGraphLike) -> Set[Tuple[int, int]]:
    """All ordered pairs ``(u, v)``, ``u != v``, with a directed path ``u → v``."""
    mat = reachability_matrix(graph)
    if mat.size:
        np.fill_diagonal(mat, False)
    us, vs = np.nonzero(mat)
    return set(zip(us.tolist(), vs.tolist()))


def transitive_closure_graph(graph: DiGraphLike) -> DynamicDiGraph:
    """The transitive closure of ``graph`` as a new :class:`DynamicDiGraph`."""
    return DynamicDiGraph(graph.n, transitive_closure_edges(graph))


def closure_deficit(graph: DiGraphLike, closure: Set[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Edges of the target closure not yet present in ``graph`` (sorted)."""
    if not closure:
        return []
    arr = np.asarray(sorted(closure), dtype=np.int64)
    present = bitset.get_bits(adjacency_bits(graph), arr[:, 0], arr[:, 1])
    missing = arr[~present]
    return [(int(u), int(v)) for u, v in missing]


class IncrementalClosure:
    """All-pairs reachability of an evolving (append-only) digraph.

    Computes the packed transitive closure once with Warshall elimination
    (:func:`repro.graphs.bitset.transitive_closure_bits`) and then keeps it
    exact under edge *batches* via row-OR propagation from each batch
    endpoint (:func:`repro.graphs.bitset.closure_add_edges`): an inserted
    edge ``u → v`` costs one column extraction plus one masked row-OR, and
    edges already implied by the closure cost O(1) amortised.  This is what
    makes closure-deficit tracking affordable for the directed sweeps at
    large ``n`` — a round's edge batch lies (mostly or entirely) inside the
    existing closure, so maintenance is O(batch) where a recompute would be
    O(n³/64).

    The diagonal follows the Warshall convention: ``reach[u, u]`` is set
    iff ``u`` lies on a directed cycle.  Property-tested equal to a full
    :func:`transitive_closure_bits` recompute under random edge batches
    (``tests/test_closure.py``).
    """

    __slots__ = ("n", "reach")

    def __init__(self, bits: np.ndarray, n_bits: int) -> None:
        self.n = int(n_bits)
        self.reach = bitset.transitive_closure_bits(bits, self.n)

    @classmethod
    def from_graph(cls, graph: DiGraphLike) -> "IncrementalClosure":
        """Seed the closure from a graph (packed zero-copy on the array backend)."""
        return cls(adjacency_bits(graph), graph.n)

    def add_edges(self, us: np.ndarray, vs: np.ndarray) -> int:
        """Fold a batch of inserted edges in; returns how many extended the closure."""
        return bitset.closure_add_edges(self.reach, us, vs)

    def add_edge(self, u: int, v: int) -> bool:
        """Scalar convenience form of :meth:`add_edges`."""
        return self.add_edges(np.array([u]), np.array([v])) > 0

    def closure_bits(self) -> np.ndarray:
        """The packed closure rows (live view — callers must not mutate)."""
        return self.reach

    def deficit_count(self, adj_bits: np.ndarray) -> int:
        """Number of off-diagonal closure pairs absent from ``adj_bits``."""
        missing = self.reach & ~adj_bits
        diag = np.arange(self.n, dtype=np.int64)
        bitset.clear_bits(missing, diag, diag)
        return bitset.count_total(missing)


def is_transitively_closed(graph: DiGraphLike) -> bool:
    """True when ``graph`` already equals its own transitive closure.

    One packed comparison: every off-diagonal closure bit must already be
    an adjacency bit.
    """
    adj = adjacency_bits(graph)
    closed = bitset.transitive_closure_bits(adj, graph.n)
    # The diagonal (cycles through u) is never an edge; mask it off.
    diag = np.arange(graph.n, dtype=np.int64)
    bitset.clear_bits(closed, diag, diag)
    return not bool((closed & ~adj).any())
