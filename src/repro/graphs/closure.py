"""Transitive closure and reachability utilities for directed termination.

The directed two-hop walk terminates when, for every ordered pair
``(u, v)`` with a ``u → v`` path in the *initial* graph ``G_0``, the edge
``(u, v)`` is present.  The target edge set is therefore the transitive
closure of ``G_0``; these helpers compute it once so the simulation engine
can track "missing closure edges" with an O(1)-per-added-edge counter.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

import numpy as np

from repro.graphs.adjacency import DynamicDiGraph

__all__ = [
    "reachable_from",
    "reachability_matrix",
    "transitive_closure_edges",
    "transitive_closure_graph",
    "closure_deficit",
    "is_transitively_closed",
]


def reachable_from(graph: DynamicDiGraph, source: int) -> Set[int]:
    """Nodes reachable from ``source`` along directed edges, excluding ``source``
    itself unless it lies on a directed cycle through ``source``."""
    seen = np.zeros(graph.n, dtype=bool)
    queue = deque(graph.out_neighbors(source))
    for v in graph.out_neighbors(source):
        seen[v] = True
    result: Set[int] = set(graph.out_neighbors(source))
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if not seen[v]:
                seen[v] = True
                result.add(v)
                queue.append(v)
    return result


def reachability_matrix(graph: DynamicDiGraph) -> np.ndarray:
    """Boolean matrix R with ``R[u, v]`` true iff there is a nonempty directed
    path from ``u`` to ``v``.  Computed by n BFS traversals (O(n·m))."""
    n = graph.n
    mat = np.zeros((n, n), dtype=bool)
    for u in range(n):
        for v in reachable_from(graph, u):
            if v != u:
                mat[u, v] = True
            else:
                mat[u, u] = True  # u lies on a cycle through itself
    return mat


def transitive_closure_edges(graph: DynamicDiGraph) -> Set[Tuple[int, int]]:
    """All ordered pairs ``(u, v)``, ``u != v``, with a directed path ``u → v``."""
    edges: Set[Tuple[int, int]] = set()
    for u in range(graph.n):
        for v in reachable_from(graph, u):
            if v != u:
                edges.add((u, v))
    return edges


def transitive_closure_graph(graph: DynamicDiGraph) -> DynamicDiGraph:
    """The transitive closure of ``graph`` as a new :class:`DynamicDiGraph`."""
    return DynamicDiGraph(graph.n, transitive_closure_edges(graph))


def closure_deficit(graph: DynamicDiGraph, closure: Set[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Edges of the target closure not yet present in ``graph`` (sorted)."""
    return sorted(e for e in closure if not graph.has_edge(*e))


def is_transitively_closed(graph: DynamicDiGraph) -> bool:
    """True when ``graph`` already equals its own transitive closure."""
    return all(graph.has_edge(u, v) for (u, v) in transitive_closure_edges(graph))
