"""The node agent: local state only.

A :class:`NetworkNode` knows nothing about the global graph — it holds an
insertion-ordered contact list (the IDs it has discovered so far, i.e. its
current neighbours) and answers protocol events.  The simulator owns
message delivery; the node only mutates its own state.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["NetworkNode"]


class NetworkNode:
    """A host participating in the discovery protocol.

    Parameters
    ----------
    node_id:
        This node's identifier (its "IP address" in the paper's P2P story).
    initial_contacts:
        The IDs of the node's neighbours in the starting graph, in
        insertion order.
    """

    __slots__ = ("node_id", "_contacts", "_contact_set")

    def __init__(self, node_id: int, initial_contacts: Iterable[int] = ()) -> None:
        self.node_id = int(node_id)
        self._contacts: List[int] = []
        self._contact_set = set()
        for c in initial_contacts:
            self.add_contact(c)

    # ------------------------------------------------------------------ #
    # contact management
    # ------------------------------------------------------------------ #
    @property
    def contacts(self) -> Sequence[int]:
        """The node's current contact list (live; do not mutate)."""
        return self._contacts

    def knows(self, other: int) -> bool:
        """True when ``other`` is already a contact."""
        return other in self._contact_set

    def add_contact(self, other: int) -> bool:
        """Record a newly discovered contact; returns True when it was new.

        Self-references are ignored (a node does not store itself).
        """
        other = int(other)
        if other == self.node_id or other in self._contact_set:
            return False
        self._contact_set.add(other)
        self._contacts.append(other)
        return True

    def remove_contact(self, other: int) -> bool:
        """Forget a contact (liveness eviction); returns True when it was known."""
        other = int(other)
        if other not in self._contact_set:
            return False
        self._contact_set.discard(other)
        self._contacts.remove(other)
        return True

    def degree(self) -> int:
        """Number of known contacts."""
        return len(self._contacts)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def random_contact(self, rng: np.random.Generator) -> int:
        """A uniformly random contact; raises if the node knows nobody."""
        if not self._contacts:
            raise ValueError(f"node {self.node_id} has no contacts to sample from")
        return self._contacts[int(rng.integers(len(self._contacts)))]

    def random_contact_pair(self, rng: np.random.Generator) -> tuple:
        """Two independent uniformly random contacts (with replacement)."""
        if not self._contacts:
            raise ValueError(f"node {self.node_id} has no contacts to sample from")
        k = len(self._contacts)
        return (
            self._contacts[int(rng.integers(k))],
            self._contacts[int(rng.integers(k))],
        )

    def __repr__(self) -> str:
        return f"NetworkNode(id={self.node_id}, contacts={len(self._contacts)})"
