"""Protocol messages and bit accounting.

The paper's model allows each node to send messages of at most
``O(log n)`` bits per round — i.e. a constant number of node IDs.  Every
message here carries an explicit payload of node IDs and knows its own
size in bits, so the simulator can verify the per-round bandwidth budget
of the gossip protocols and expose the Θ(n)-bit messages of the baselines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.core.base import id_bits

__all__ = ["MessageKind", "Message", "LocalityError", "id_bits_for"]


class LocalityError(ValueError):
    """A node addressed a message to an ID it has never been handed.

    The paper's model only lets a node contact IDs it knows: current
    contacts, nodes it just heard from, or IDs carried by a delivered
    payload.  Both simulators raise this instead of silently delivering a
    message that no real deployment could route.
    """


def id_bits_for(n: int) -> int:
    """Bits needed to name one node out of ``n`` (at least 1).

    Alias of :func:`repro.core.base.id_bits` — the single authority for the
    per-ID bit cost — kept for the network layer's historical API.
    """
    return id_bits(n)


class MessageKind(str, enum.Enum):
    """The message types used by the discovery protocols."""

    #: push: "here is the ID of a node you should connect to" (sent by the introducer).
    INTRODUCE = "introduce"
    #: pull: "please send me the ID of one of your neighbours".
    PULL_REQUEST = "pull_request"
    #: pull: the reply carrying one neighbour ID.
    PULL_REPLY = "pull_reply"
    #: pull: "I am connecting to you" notification to the discovered node.
    CONNECT = "connect"
    #: name dropper: bulk transfer of every ID the sender knows.
    KNOWLEDGE = "knowledge"
    #: async liveness probe sent to a contact (payload: ping id).
    PING = "ping"
    #: async liveness acknowledgement (payload: the echoed ping id).
    PONG = "pong"


@dataclass(frozen=True)
class Message:
    """One protocol message.

    Attributes
    ----------
    kind:
        The protocol-level message type.
    sender, receiver:
        Node IDs of the endpoints.  Sending requires that the receiver is
        a current contact of the sender *or* was just introduced to it
        (heard from it, or handed its ID in a delivered payload) — both
        simulators enforce the locality the paper's model assumes and
        raise :class:`LocalityError` on violations.
    payload:
        The node IDs carried by the message (possibly empty for requests).
    round_index:
        The round in which the message was sent.
    """

    kind: MessageKind
    sender: int
    receiver: int
    payload: Tuple[int, ...] = field(default_factory=tuple)
    round_index: int = 0

    def bits(self, n: int) -> int:
        """Payload size in bits for a network of ``n`` nodes.

        Requests with empty payloads still cost one ID's worth of bits
        (the sender must identify itself).
        """
        return max(1, len(self.payload)) * id_bits_for(n)

    def with_round(self, round_index: int) -> "Message":
        """Copy of this message stamped with a round index."""
        return Message(
            kind=self.kind,
            sender=self.sender,
            receiver=self.receiver,
            payload=self.payload,
            round_index=round_index,
        )
