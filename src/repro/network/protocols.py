"""The discovery protocols expressed as per-message state transitions.

Each protocol is split into two engine-agnostic pieces:

* :meth:`GossipProtocol.initiate_batch` — given the nodes that act in this
  activation (a synchronous round or an async tick) and a
  :class:`ProtocolContext`, sample the messages those nodes originate.
* :meth:`GossipProtocol.on_deliver` — apply one delivered message's state
  transition at the receiver and return any follow-up messages (e.g. the
  ``PULL_REPLY`` answering a ``PULL_REQUEST``).

The synchronous :class:`~repro.network.simulator.NetworkSimulator` drives
these through the default :meth:`GossipProtocol.run_round` (a FIFO
breadth-first message loop, which reproduces the classic phase structure:
all requests, then all replies, then all connects); the asynchronous
:class:`~repro.network.async_simulator.AsyncNetworkSimulator` drives the
very same transitions from timestamped delivery events.  The transitions
are therefore written once and shared between both engines.

Per-protocol shapes:

* **Push**: each acting node sends two ``INTRODUCE`` messages, one to each
  chosen neighbour, carrying the other neighbour's ID.
* **Pull**: ``PULL_REQUEST`` to a random neighbour; the delivered request
  triggers a ``PULL_REPLY`` carrying a random ID from the replier's
  reply snapshot; the delivered reply is *recorded at the requester* and
  triggers a ``CONNECT`` that informs the discovered node.  (The requester
  keeps the ID as soon as the reply arrives — an earlier implementation
  only recorded it if the outgoing ``CONNECT`` was also delivered, which
  silently discarded knowledge under message loss.)
* **Name Dropper**: each acting node sends its entire contact list (plus
  its own ID) to one random neighbour.

All sampling is done against activation-start snapshots so the protocols
match the synchronous semantics of the graph-level processes; the push
protocol draws through the same bulk convention as the vectorized round
engine (one ``rng.random(n)`` block per sampling stage, indices mapped by
:func:`repro.graphs.sampling.uniform_indices`), so it stays draw-for-draw
identical to :class:`repro.core.push.PushDiscovery` when given the same
seed and starting graph — on either graph backend, and under either
simulation engine.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graphs.sampling import uniform_indices
from repro.network.message import Message, MessageKind
from repro.network.node import NetworkNode

__all__ = [
    "ProtocolContext",
    "GossipProtocol",
    "PushProtocol",
    "PullProtocol",
    "NameDropperProtocol",
    "protocol_names",
    "resolve_protocol",
]


class ProtocolContext:
    """Engine services a protocol needs while generating/applying messages.

    Parameters
    ----------
    rng:
        The generator all protocol draws go through.
    round_index:
        The logical activation index stamped onto created messages (the
        round number for the synchronous engine, the tick index for the
        async one).
    reply_snapshots:
        Mapping of node id to the contact tuple replies are sampled from.
        The synchronous engine passes round-start snapshots (so replies
        are drawn from :math:`G_t` exactly like the graph-level two-hop
        walk); the async engine passes nothing and replies sample the
        replier's *current* contacts at delivery time.
    record_discovery:
        Callback ``(node_id, contact_id)`` invoked whenever a node stores
        a previously unknown contact.
    """

    __slots__ = ("rng", "round_index", "_reply_snapshots", "_record")

    def __init__(
        self,
        rng: np.random.Generator,
        round_index: int,
        record_discovery,
        reply_snapshots: Dict[int, Tuple[int, ...]] = None,
    ) -> None:
        self.rng = rng
        self.round_index = round_index
        self._record = record_discovery
        self._reply_snapshots = reply_snapshots

    def reply_contacts(self, node: NetworkNode) -> Sequence[int]:
        """The contact list ``node`` answers pull requests from."""
        if self._reply_snapshots is not None:
            return self._reply_snapshots[node.node_id]
        return node.contacts

    def record_discovery(self, node_id: int, contact_id: int) -> None:
        """Report a stored-for-the-first-time contact to the engine."""
        self._record(node_id, contact_id)


class GossipProtocol(abc.ABC):
    """Interface for a message-level discovery protocol."""

    #: short name used by the simulator factories and the experiments.
    name: str = "abstract"

    @abc.abstractmethod
    def initiate_batch(
        self, nodes: Sequence[NetworkNode], ctx: ProtocolContext
    ) -> List[Message]:
        """Messages originated by ``nodes`` at one activation.

        ``nodes`` is the list of currently acting nodes (all of them in the
        synchronous engine; the alive subset under churn in the async one).
        Sampling must read only activation-start state — implementations
        never apply state changes here.
        """

    @abc.abstractmethod
    def on_deliver(
        self, receiver: NetworkNode, message: Message, ctx: ProtocolContext
    ) -> List[Message]:
        """Apply ``message`` at ``receiver``; return follow-up messages.

        This is the single definition of each message kind's state
        transition, shared by both simulation engines.  Follow-ups are
        returned (not sent) so the engine controls delivery.
        """

    def run_round(self, simulator) -> None:
        """Execute one synchronous round on ``simulator``.

        A FIFO loop over the outbox: initiation messages first, then each
        delivered message's follow-ups in delivery order.  Because
        follow-ups append behind the remaining initiations, this replays
        the classic phase structure (all requests, then all replies, then
        all connects) and—under ``NoFailures``—consumes the RNG in exactly
        the order the phase-structured implementation did.  All messages
        go through ``simulator.send`` (failure model, locality check and
        accounting); transitions run only for delivered messages.
        """
        ctx = ProtocolContext(
            rng=simulator.rng,
            round_index=simulator.round_index,
            record_discovery=simulator.record_discovery,
            reply_snapshots={
                node.node_id: tuple(node.contacts) for node in simulator.nodes
            },
        )
        outbox = deque(self.initiate_batch(simulator.nodes, ctx))
        while outbox:
            message = outbox.popleft()
            if simulator.send(message):
                receiver = simulator.nodes[message.receiver]
                outbox.extend(self.on_deliver(receiver, message, ctx))


def _absorb_payload(
    receiver: NetworkNode, message: Message, ctx: ProtocolContext
) -> None:
    """Store every payload ID at ``receiver``, reporting new ones."""
    for contact in message.payload:
        if receiver.add_contact(contact):
            ctx.record_discovery(receiver.node_id, contact)


class PushProtocol(GossipProtocol):
    """Triangulation as messages: introduce two random contacts to each other."""

    name = "push"

    def initiate_batch(self, nodes, ctx):
        # Bulk draw convention: one rng.random(len(nodes)) block per chosen
        # endpoint, so this protocol consumes the same stream as
        # PushDiscovery.propose_batch on the same seed.
        rng = ctx.rng
        degrees = np.array([node.degree() for node in nodes], dtype=np.int64)
        first = uniform_indices(rng.random(len(nodes)), degrees)
        second = uniform_indices(rng.random(len(nodes)), degrees)
        messages: List[Message] = []
        for node, i, j in zip(nodes, first.tolist(), second.tolist()):
            if i < 0:
                continue
            v = node.contacts[i]
            w = node.contacts[j]
            if v == w:
                continue
            messages.append(
                Message(MessageKind.INTRODUCE, node.node_id, v, (w,), ctx.round_index)
            )
            messages.append(
                Message(MessageKind.INTRODUCE, node.node_id, w, (v,), ctx.round_index)
            )
        return messages

    def on_deliver(self, receiver, message, ctx):
        _absorb_payload(receiver, message, ctx)
        return []


class PullProtocol(GossipProtocol):
    """Two-hop walk as messages: request / reply / connect."""

    name = "pull"

    def initiate_batch(self, nodes, ctx):
        messages: List[Message] = []
        for node in nodes:
            if node.degree() == 0:
                continue
            v = node.random_contact(ctx.rng)
            messages.append(
                Message(MessageKind.PULL_REQUEST, node.node_id, v, (), ctx.round_index)
            )
        return messages

    def on_deliver(self, receiver, message, ctx):
        if message.kind is MessageKind.PULL_REQUEST:
            # Answer with a random contact from the reply snapshot.
            contacts = ctx.reply_contacts(receiver)
            if not contacts:
                return []
            w = contacts[int(ctx.rng.integers(len(contacts)))]
            return [
                Message(
                    MessageKind.PULL_REPLY,
                    receiver.node_id,
                    message.sender,
                    (w,),
                    ctx.round_index,
                )
            ]
        if message.kind is MessageKind.PULL_REPLY:
            # The requester keeps the handed ID the moment the reply lands;
            # the CONNECT below only *informs* the discovered node.  (Tying
            # the requester's record to the CONNECT's delivery made a node
            # forget an ID it had already received whenever the follow-up
            # was dropped.)
            (w,) = message.payload
            if receiver.add_contact(w):
                ctx.record_discovery(receiver.node_id, w)
            if w == receiver.node_id:
                return []
            return [
                Message(
                    MessageKind.CONNECT,
                    receiver.node_id,
                    w,
                    (receiver.node_id,),
                    ctx.round_index,
                )
            ]
        if message.kind is MessageKind.CONNECT:
            _absorb_payload(receiver, message, ctx)
            return []
        raise ValueError(f"pull protocol cannot handle {message.kind!r}")


class NameDropperProtocol(GossipProtocol):
    """Name Dropper as messages: bulk knowledge transfer to one random neighbour."""

    name = "name_dropper"

    def initiate_batch(self, nodes, ctx):
        messages: List[Message] = []
        for node in nodes:
            if node.degree() == 0:
                continue
            v = node.random_contact(ctx.rng)
            payload = tuple(node.contacts) + (node.node_id,)
            messages.append(
                Message(MessageKind.KNOWLEDGE, node.node_id, v, payload, ctx.round_index)
            )
        return messages

    def on_deliver(self, receiver, message, ctx):
        _absorb_payload(receiver, message, ctx)
        return []


_PROTOCOLS = {
    "push": PushProtocol,
    "pull": PullProtocol,
    "name_dropper": NameDropperProtocol,
}


def protocol_names() -> List[str]:
    """All registered protocol names (the CLI ``--protocol`` choices)."""
    return sorted(_PROTOCOLS)


def resolve_protocol(protocol) -> GossipProtocol:
    """Instantiate ``protocol`` when given by name; pass instances through."""
    if isinstance(protocol, GossipProtocol):
        return protocol
    try:
        return _PROTOCOLS[protocol]()
    except (KeyError, TypeError):
        raise KeyError(
            f"unknown protocol {protocol!r}; known: {sorted(_PROTOCOLS)}"
        ) from None
