"""The discovery protocols expressed as per-round message exchanges.

Each protocol implements :meth:`GossipProtocol.run_round`: given the
simulator (which owns the nodes, the RNG and the failure model), generate
this round's messages from the *round-start* local states, hand them to the
simulator for delivery, and apply the state updates of delivered messages.
The split into explicit phases mirrors what a real implementation would do
on the wire:

* **Push**: one phase — each node sends two ``INTRODUCE`` messages, one to
  each chosen neighbour, carrying the other neighbour's ID.
* **Pull**: three phases — ``PULL_REQUEST`` to a random neighbour, a
  ``PULL_REPLY`` carrying a random ID from the *round-start* contact list
  of the replier, then a ``CONNECT`` message from the requester to the
  discovered node (both endpoints record the new contact).
* **Name Dropper**: one phase — each node sends its entire contact list
  (plus its own ID) to one random neighbour.

All sampling is done against round-start snapshots so the protocols match
the synchronous semantics of the graph-level processes; the push protocol
draws through the same bulk convention as the vectorized round engine
(one ``rng.random(n)`` block per sampling stage, indices mapped by
:func:`repro.graphs.sampling.uniform_indices`), so it stays draw-for-draw
identical to :class:`repro.core.push.PushDiscovery` when given the same
seed and starting graph — on either graph backend.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.sampling import uniform_indices
from repro.network.message import Message, MessageKind

__all__ = ["GossipProtocol", "PushProtocol", "PullProtocol", "NameDropperProtocol"]


class GossipProtocol(abc.ABC):
    """Interface for a per-round message-level protocol."""

    #: short name used by the simulator factory and the experiments.
    name: str = "abstract"

    @abc.abstractmethod
    def run_round(self, simulator) -> None:
        """Execute one synchronous round on ``simulator``.

        Implementations must send all messages through
        ``simulator.send(message)`` (which applies the failure model and
        does the accounting) and apply state changes only for messages the
        simulator reports as delivered.
        """


class PushProtocol(GossipProtocol):
    """Triangulation as messages: introduce two random contacts to each other."""

    name = "push"

    def run_round(self, simulator) -> None:
        rng = simulator.rng
        round_index = simulator.round_index
        deliveries: List[Message] = []
        # Sample every node's action against the round-start contact lists,
        # using the engine's bulk draw convention: one rng.random(n) block
        # per chosen endpoint, so this protocol consumes the same stream as
        # PushDiscovery.propose_batch on the same seed.
        nodes = simulator.nodes
        degrees = np.array([node.degree() for node in nodes], dtype=np.int64)
        first = uniform_indices(rng.random(len(nodes)), degrees)
        second = uniform_indices(rng.random(len(nodes)), degrees)
        for node, i, j in zip(nodes, first.tolist(), second.tolist()):
            if i < 0:
                continue
            v = node.contacts[i]
            w = node.contacts[j]
            if v == w:
                continue
            msg_v = Message(MessageKind.INTRODUCE, node.node_id, v, (w,), round_index)
            msg_w = Message(MessageKind.INTRODUCE, node.node_id, w, (v,), round_index)
            for msg in (msg_v, msg_w):
                if simulator.send(msg):
                    deliveries.append(msg)
        # Apply all deliveries after sampling (synchronous update).
        for msg in deliveries:
            receiver = simulator.nodes[msg.receiver]
            for contact in msg.payload:
                if receiver.add_contact(contact):
                    simulator.record_discovery(msg.receiver, contact)


class PullProtocol(GossipProtocol):
    """Two-hop walk as messages: request / reply / connect."""

    name = "pull"

    def run_round(self, simulator) -> None:
        rng = simulator.rng
        round_index = simulator.round_index
        nodes = simulator.nodes
        # Snapshot round-start contact lists so replies are sampled from G_t.
        snapshots: Dict[int, Tuple[int, ...]] = {
            node.node_id: tuple(node.contacts) for node in nodes
        }

        # Phase 1: every node with contacts sends a pull request to a random neighbour.
        requests: List[Message] = []
        for node in nodes:
            if node.degree() == 0:
                continue
            v = node.random_contact(rng)
            msg = Message(MessageKind.PULL_REQUEST, node.node_id, v, (), round_index)
            if simulator.send(msg):
                requests.append(msg)

        # Phase 2: each request is answered with a random round-start contact of the replier.
        replies: List[Message] = []
        for req in requests:
            replier_contacts = snapshots[req.receiver]
            if not replier_contacts:
                continue
            w = replier_contacts[int(rng.integers(len(replier_contacts)))]
            msg = Message(MessageKind.PULL_REPLY, req.receiver, req.sender, (w,), round_index)
            if simulator.send(msg):
                replies.append(msg)

        # Phase 3: the requester connects to the discovered node (if it is not itself).
        connects: List[Message] = []
        for rep in replies:
            u = rep.receiver
            (w,) = rep.payload
            if w == u:
                continue
            msg = Message(MessageKind.CONNECT, u, w, (u,), round_index)
            if simulator.send(msg):
                connects.append(msg)

        # Apply: both endpoints of every delivered CONNECT learn each other.
        for msg in connects:
            u, w = msg.sender, msg.receiver
            if nodes[u].add_contact(w):
                simulator.record_discovery(u, w)
            if nodes[w].add_contact(u):
                simulator.record_discovery(w, u)


class NameDropperProtocol(GossipProtocol):
    """Name Dropper as messages: bulk knowledge transfer to one random neighbour."""

    name = "name_dropper"

    def run_round(self, simulator) -> None:
        rng = simulator.rng
        round_index = simulator.round_index
        nodes = simulator.nodes
        deliveries: List[Message] = []
        for node in nodes:
            if node.degree() == 0:
                continue
            v = node.random_contact(rng)
            payload = tuple(node.contacts) + (node.node_id,)
            msg = Message(MessageKind.KNOWLEDGE, node.node_id, v, payload, round_index)
            if simulator.send(msg):
                deliveries.append(msg)
        for msg in deliveries:
            receiver = simulator.nodes[msg.receiver]
            for contact in msg.payload:
                if receiver.add_contact(contact):
                    simulator.record_discovery(msg.receiver, contact)
