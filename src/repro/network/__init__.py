"""Message-passing substrate: the resource-discovery protocols as explicit messages.

The graph-level processes in :mod:`repro.core` are the mathematical
objects the paper analyses.  This subpackage re-implements them as
*distributed protocols*: every node is an agent holding only its local
neighbour table, and all information moves through explicit messages with
bit-accounted payloads, delivered by a synchronous simulator.  Tests
cross-validate that the protocol implementations induce exactly the same
random graph evolution as the graph-level processes, and experiment E10
uses the message accounting for the bandwidth comparison against Name
Dropper / flooding.
"""

from repro.network.message import Message, MessageKind, id_bits_for
from repro.network.node import NetworkNode
from repro.network.protocols import (
    GossipProtocol,
    PushProtocol,
    PullProtocol,
    NameDropperProtocol,
)
from repro.network.simulator import NetworkSimulator
from repro.network.failures import DropUniform, FailureModel, NoFailures

__all__ = [
    "Message",
    "MessageKind",
    "id_bits_for",
    "NetworkNode",
    "GossipProtocol",
    "PushProtocol",
    "PullProtocol",
    "NameDropperProtocol",
    "NetworkSimulator",
    "FailureModel",
    "NoFailures",
    "DropUniform",
]
