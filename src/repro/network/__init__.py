"""Message-passing substrate: the resource-discovery protocols as explicit messages.

The graph-level processes in :mod:`repro.core` are the mathematical
objects the paper analyses.  This subpackage re-implements them as
*distributed protocols*: every node is an agent holding only its local
neighbour table, and all information moves through explicit messages with
bit-accounted payloads.  The per-message state transitions live in
:mod:`repro.network.protocols` and are driven by two interchangeable
engines:

* :class:`NetworkSimulator` — the paper's idealization: synchronous
  lock-step rounds, optional message loss.
* :class:`AsyncNetworkSimulator` — an event-queue engine with per-message
  latency (:mod:`repro.network.events`), node churn, partitions, and
  ping-based liveness eviction; in its degenerate configuration it
  replays the synchronous engine draw for draw.

Both engines enforce the model's locality (a node can only address IDs it
was actually handed — :class:`LocalityError` otherwise) and report true
per-``(node, round)`` bandwidth.  Tests cross-validate that the protocol
implementations induce exactly the same random graph evolution as the
graph-level processes; experiment E10 uses the message accounting for the
bandwidth comparison against Name Dropper / flooding, and
``benchmarks/bench_async.py`` measures how discovery degrades when the
synchronous idealization is relaxed.
"""

from repro.network.message import LocalityError, Message, MessageKind, id_bits_for
from repro.network.node import NetworkNode
from repro.network.protocols import (
    GossipProtocol,
    ProtocolContext,
    PushProtocol,
    PullProtocol,
    NameDropperProtocol,
    resolve_protocol,
)
from repro.network.simulator import NetworkSimulator, SimulationStats
from repro.network.failures import (
    DropBurst,
    DropUniform,
    FailureModel,
    FaultInjector,
    InjectedFault,
    NoFailures,
)
from repro.network.events import (
    ChurnSchedule,
    Event,
    EventKind,
    EventQueue,
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    PartitionSchedule,
    UniformLatency,
)
from repro.network.async_simulator import AsyncNetworkSimulator, AsyncSimulationStats

__all__ = [
    "Message",
    "MessageKind",
    "LocalityError",
    "id_bits_for",
    "NetworkNode",
    "GossipProtocol",
    "ProtocolContext",
    "PushProtocol",
    "PullProtocol",
    "NameDropperProtocol",
    "resolve_protocol",
    "NetworkSimulator",
    "SimulationStats",
    "AsyncNetworkSimulator",
    "AsyncSimulationStats",
    "FailureModel",
    "NoFailures",
    "DropUniform",
    "DropBurst",
    "FaultInjector",
    "InjectedFault",
    "Event",
    "EventKind",
    "EventQueue",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "ExponentialLatency",
    "ChurnSchedule",
    "PartitionSchedule",
]
