"""The synchronous message-passing simulator.

Owns the node agents, the RNG, the failure model and all accounting.  A
round consists of asking the protocol to :meth:`run_round`; the protocol
sends messages through :meth:`NetworkSimulator.send`, which applies the
failure model and counts messages/bits, and applies the resulting state
changes itself.  The simulator additionally maintains the *global* view of
who knows whom (as a :class:`DynamicGraph`) purely for measurement — the
nodes never see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.baselines._packed import require_undirected
from repro.graphs.adjacency import DynamicGraph
from repro.network.failures import FailureModel, NoFailures
from repro.network.message import Message, id_bits_for
from repro.network.node import NetworkNode
from repro.network.protocols import (
    GossipProtocol,
    NameDropperProtocol,
    PullProtocol,
    PushProtocol,
)

__all__ = ["NetworkSimulator", "SimulationStats"]

_PROTOCOLS = {
    "push": PushProtocol,
    "pull": PullProtocol,
    "name_dropper": NameDropperProtocol,
}


@dataclass
class SimulationStats:
    """Cumulative accounting for one simulation."""

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bits_sent: int = 0
    discoveries: int = 0
    per_round_messages: List[int] = field(default_factory=list)
    per_round_bits: List[int] = field(default_factory=list)


class NetworkSimulator:
    """Synchronous round simulator for the message-level protocols.

    Parameters
    ----------
    graph:
        The starting topology.  Each node's initial contact list is its
        neighbour list in this graph (same insertion order, so the push
        protocol reproduces the graph-level process draw for draw).  The
        graph object itself is *not* mutated; the simulator keeps its own
        measurement copy.
    protocol:
        A protocol instance or one of the names ``"push"``, ``"pull"``,
        ``"name_dropper"``.
    rng:
        Seed or :class:`numpy.random.Generator`.
    failures:
        A :class:`FailureModel`; reliable delivery by default.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        protocol: Union[GossipProtocol, str] = "push",
        rng: Union[np.random.Generator, int, None] = None,
        failures: Optional[FailureModel] = None,
    ) -> None:
        # Capability check (not an isinstance against one backend class):
        # any undirected neighbour-protocol graph — list- or array-backed —
        # is a valid topology; directed graphs still raise TypeError.
        require_undirected(graph, "NetworkSimulator")
        self.n = graph.n
        self.nodes: List[NetworkNode] = [
            NetworkNode(u, list(graph.neighbors(u))) for u in graph.nodes()
        ]
        if isinstance(protocol, str):
            try:
                protocol = _PROTOCOLS[protocol]()
            except KeyError:
                raise KeyError(
                    f"unknown protocol {protocol!r}; known: {sorted(_PROTOCOLS)}"
                ) from None
        self.protocol = protocol
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.failures = failures if failures is not None else NoFailures()
        self.round_index = 0
        self.stats = SimulationStats()
        # Global measurement view of who-knows-whom (the nodes never see this).
        self.knowledge_graph = graph.copy()
        self._id_bits = id_bits_for(self.n)
        self._round_messages = 0
        self._round_bits = 0

    # ------------------------------------------------------------------ #
    # services used by the protocols
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> bool:
        """Account for ``message`` and apply the failure model; True = delivered."""
        self.stats.messages_sent += 1
        bits = message.bits(self.n)
        self.stats.bits_sent += bits
        self._round_messages += 1
        self._round_bits += bits
        if self.failures.delivered(message, self.rng):
            self.stats.messages_delivered += 1
            return True
        self.stats.messages_dropped += 1
        return False

    def record_discovery(self, node: int, contact: int) -> None:
        """Register that ``node`` learned about ``contact`` (measurement only)."""
        self.stats.discoveries += 1
        self.knowledge_graph.add_edge(node, contact)

    # ------------------------------------------------------------------ #
    # round loop
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Execute one protocol round."""
        self._round_messages = 0
        self._round_bits = 0
        self.protocol.run_round(self)
        self.round_index += 1
        self.stats.rounds += 1
        self.stats.per_round_messages.append(self._round_messages)
        self.stats.per_round_bits.append(self._round_bits)

    def is_converged(self) -> bool:
        """True when every node knows every other node."""
        return all(node.degree() == self.n - 1 for node in self.nodes)

    def run_to_convergence(self, max_rounds: int) -> SimulationStats:
        """Run rounds until full discovery or ``max_rounds``; returns the stats."""
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        while not self.is_converged() and self.stats.rounds < max_rounds:
            self.step()
        return self.stats

    # ------------------------------------------------------------------ #
    # measurement helpers
    # ------------------------------------------------------------------ #
    def contact_graph(self) -> DynamicGraph:
        """The current who-knows-whom graph reconstructed from node state."""
        g = DynamicGraph(self.n)
        for node in self.nodes:
            for c in node.contacts:
                g.add_edge(node.node_id, c)
        return g

    def max_bits_per_node_round(self) -> int:
        """Largest per-round, per-node bit budget observed so far.

        For the push/pull gossip protocols this stays O(log n); for Name
        Dropper it grows to Θ(n log n).  Computed from the per-round totals
        divided by n (an upper bound on the per-node average).
        """
        if not self.stats.per_round_bits:
            return 0
        return int(np.ceil(max(self.stats.per_round_bits) / max(self.n, 1)))

    def __repr__(self) -> str:
        return (
            f"NetworkSimulator(protocol={self.protocol.name!r}, n={self.n}, "
            f"round={self.round_index})"
        )
