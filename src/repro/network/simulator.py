"""The synchronous message-passing simulator.

Owns the node agents, the RNG, the failure model and all accounting.  A
round consists of asking the protocol to :meth:`run_round`; the protocol
sends messages through :meth:`NetworkSimulator.send`, which enforces the
paper's locality model (a node may only address IDs it knows or was just
handed — :class:`~repro.network.message.LocalityError` otherwise), applies
the failure model, and counts messages/bits both globally and per
``(node, round)``.  The simulator additionally maintains the *global* view
of who knows whom (as a :class:`DynamicGraph`) purely for measurement —
the nodes never see it.

The asynchronous counterpart (:mod:`repro.network.async_simulator`) drives
the very same protocol state transitions from timestamped delivery events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

import numpy as np

from repro.baselines._packed import require_undirected
from repro.graphs.adjacency import DynamicGraph
from repro.network.failures import FailureModel, NoFailures
from repro.network.message import LocalityError, Message, id_bits_for
from repro.network.node import NetworkNode
from repro.network.protocols import GossipProtocol, resolve_protocol

__all__ = ["NetworkSimulator", "SimulationStats"]


@dataclass
class SimulationStats:
    """Cumulative accounting for one simulation."""

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bits_sent: int = 0
    discoveries: int = 0
    per_round_messages: List[int] = field(default_factory=list)
    per_round_bits: List[int] = field(default_factory=list)
    #: largest number of bits any single node sent in each round.
    per_round_max_node_bits: List[int] = field(default_factory=list)


class NetworkSimulator:
    """Synchronous round simulator for the message-level protocols.

    Parameters
    ----------
    graph:
        The starting topology.  Each node's initial contact list is its
        neighbour list in this graph (same insertion order, so the push
        protocol reproduces the graph-level process draw for draw).  The
        graph object itself is *not* mutated; the simulator keeps its own
        measurement copy.
    protocol:
        A protocol instance or one of the names ``"push"``, ``"pull"``,
        ``"name_dropper"``.
    rng:
        Seed or :class:`numpy.random.Generator`.
    failures:
        A :class:`FailureModel`; reliable delivery by default.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        protocol: Union[GossipProtocol, str] = "push",
        rng: Union[np.random.Generator, int, None] = None,
        failures: Optional[FailureModel] = None,
    ) -> None:
        # Capability check (not an isinstance against one backend class):
        # any undirected neighbour-protocol graph — list- or array-backed —
        # is a valid topology; directed graphs still raise TypeError.
        require_undirected(graph, "NetworkSimulator")
        self.n = graph.n
        self.nodes: List[NetworkNode] = [
            NetworkNode(u, list(graph.neighbors(u))) for u in graph.nodes()
        ]
        self.protocol = resolve_protocol(protocol)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.failures = failures if failures is not None else NoFailures()
        self.round_index = 0
        self.stats = SimulationStats()
        # Global measurement view of who-knows-whom (the nodes never see this).
        self.knowledge_graph = graph.copy()
        self._id_bits = id_bits_for(self.n)
        self._round_messages = 0
        self._round_bits = 0
        self._round_node_bits = np.zeros(self.n, dtype=np.int64)
        # IDs each node was handed *this round* by delivered messages
        # (sender identity + payload IDs): the "just introduced" part of
        # the locality rule.
        self._introductions: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------ #
    # services used by the protocols
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> bool:
        """Account for ``message`` and apply the failure model; True = delivered.

        Raises :class:`LocalityError` when the sender addresses an ID it
        neither knows as a contact nor was handed this round (by a
        delivered message's sender identity or payload).
        """
        sender = self.nodes[message.sender]
        if not (
            sender.knows(message.receiver)
            or message.receiver in self._introductions.get(message.sender, ())
        ):
            raise LocalityError(
                f"node {message.sender} cannot address node {message.receiver}: "
                f"not a contact and never introduced ({message.kind.value} message)"
            )
        self.stats.messages_sent += 1
        bits = message.bits(self.n)
        self.stats.bits_sent += bits
        self._round_messages += 1
        self._round_bits += bits
        self._round_node_bits[message.sender] += bits
        if self.failures.delivered(message, self.rng):
            self.stats.messages_delivered += 1
            handed = self._introductions.setdefault(message.receiver, set())
            handed.add(message.sender)
            handed.update(message.payload)
            return True
        self.stats.messages_dropped += 1
        return False

    def record_discovery(self, node: int, contact: int) -> None:
        """Register that ``node`` learned about ``contact`` (measurement only)."""
        self.stats.discoveries += 1
        self.knowledge_graph.add_edge(node, contact)

    # ------------------------------------------------------------------ #
    # round loop
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Execute one protocol round."""
        self._round_messages = 0
        self._round_bits = 0
        self._round_node_bits[:] = 0
        self._introductions = {}
        self.protocol.run_round(self)
        self.round_index += 1
        self.stats.rounds += 1
        self.stats.per_round_messages.append(self._round_messages)
        self.stats.per_round_bits.append(self._round_bits)
        self.stats.per_round_max_node_bits.append(int(self._round_node_bits.max()))

    def is_converged(self) -> bool:
        """True when every node knows every other node."""
        return all(node.degree() == self.n - 1 for node in self.nodes)

    def run_to_convergence(self, max_rounds: int) -> SimulationStats:
        """Run until full discovery or ``max_rounds`` *additional* rounds.

        The budget is per-call: a second call runs up to ``max_rounds``
        further rounds (it used to be compared against the cumulative
        round count, which silently shrank — or zeroed — later budgets).
        """
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        rounds_run = 0
        while not self.is_converged() and rounds_run < max_rounds:
            self.step()
            rounds_run += 1
        return self.stats

    # ------------------------------------------------------------------ #
    # measurement helpers
    # ------------------------------------------------------------------ #
    def contact_graph(self) -> DynamicGraph:
        """The current who-knows-whom graph reconstructed from node state."""
        g = DynamicGraph(self.n)
        for node in self.nodes:
            for c in node.contacts:
                g.add_edge(node.node_id, c)
        return g

    def max_bits_per_node_round(self) -> int:
        """Largest bits any *single* node sent in any single round.

        This is the quantity the paper's per-node bandwidth claims are
        about: for the push protocol it stays ``O(log n)`` (two IDs per
        round); for Name Dropper it grows to ``Θ(n log n)``.  For pull it
        can exceed the requester-side budget because one node may answer
        every request that lands on it in a round.  (An earlier version
        returned the per-node *average* under this name; that average is
        still available as :meth:`max_round_mean_bits_per_node`.)
        """
        if not self.stats.per_round_max_node_bits:
            return 0
        return max(self.stats.per_round_max_node_bits)

    def max_round_mean_bits_per_node(self) -> int:
        """Largest per-round *average* bits per node (total bits / n).

        A smoother load measure than :meth:`max_bits_per_node_round`: it
        bounds the mean per-node traffic of the busiest round, not the
        busiest node's.
        """
        if not self.stats.per_round_bits:
            return 0
        return int(np.ceil(max(self.stats.per_round_bits) / max(self.n, 1)))

    def __repr__(self) -> str:
        return (
            f"NetworkSimulator(protocol={self.protocol.name!r}, n={self.n}, "
            f"round={self.round_index})"
        )
