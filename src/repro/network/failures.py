"""Message and worker failure models for robustness experiments.

The simulator asks the failure model whether each message is delivered.
:class:`NoFailures` is the paper's (reliable, synchronous) model;
:class:`DropUniform` drops each message independently with a fixed
probability, supporting the robustness experiments (E11) at the protocol
level; :class:`DropBurst` is its correlated counterpart — a two-state
Gilbert–Elliott channel whose bad state drops whole runs of consecutive
messages, modelling the bursty losses a flaky link actually produces.

:class:`FaultInjector` targets a different layer entirely: it kills
*worker processes* (the trial pool in :mod:`repro.simulation.runner`, the
shard pool in :mod:`repro.simulation.sharding`) at deterministic,
pre-registered points so the crash-tolerance machinery — pool rebuild,
retry with backoff, degradation to in-process execution, shared-memory
cleanup — can be exercised reproducibly in tests.
"""

from __future__ import annotations

import abc
import os
from typing import Dict, Tuple

import numpy as np

from repro.network.message import Message

__all__ = [
    "FailureModel",
    "NoFailures",
    "DropUniform",
    "DropBurst",
    "FaultInjector",
    "InjectedFault",
]


class FailureModel(abc.ABC):
    """Decides, per message, whether delivery succeeds."""

    @abc.abstractmethod
    def delivered(self, message: Message, rng: np.random.Generator) -> bool:
        """Return True when ``message`` reaches its receiver."""


class NoFailures(FailureModel):
    """Reliable delivery — the paper's standing assumption."""

    def delivered(self, message: Message, rng: np.random.Generator) -> bool:
        return True


class DropUniform(FailureModel):
    """Drop each message independently with probability ``drop_prob``."""

    def __init__(self, drop_prob: float) -> None:
        if not (0.0 <= drop_prob < 1.0):
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.drop_prob = drop_prob

    def delivered(self, message: Message, rng: np.random.Generator) -> bool:
        return float(rng.random()) >= self.drop_prob


class DropBurst(FailureModel):
    """Correlated (bursty) loss: a two-state Gilbert–Elliott channel.

    The channel is either *good* (every message delivered) or *bad* (every
    message dropped) and flips state between messages: good → bad with
    probability ``p_bad`` and bad → good with probability ``p_recover``.
    The stationary loss rate is ``p_bad / (p_bad + p_recover)`` with mean
    burst length ``1 / p_recover`` — unlike :class:`DropUniform`, losses
    arrive in runs, which is what overload and route flaps look like.
    """

    def __init__(self, p_bad: float, p_recover: float) -> None:
        if not (0.0 <= p_bad < 1.0):
            raise ValueError(f"p_bad must be in [0, 1), got {p_bad}")
        if not (0.0 < p_recover <= 1.0):
            raise ValueError(f"p_recover must be in (0, 1], got {p_recover}")
        self.p_bad = p_bad
        self.p_recover = p_recover
        self._bad = False

    def delivered(self, message: Message, rng: np.random.Generator) -> bool:
        flip = self.p_recover if self._bad else self.p_bad
        if float(rng.random()) < flip:
            self._bad = not self._bad
        return not self._bad


class FaultInjector:
    """Deterministic worker-death schedule for crash-tolerance tests.

    An injector is handed to a pool-running entry point
    (``run_trials(fault_injector=...)`` or
    ``ShardedProcess(fault_injector=...)``).  The schedule is consumed in
    the **parent** at submit time — :meth:`take_trial` /
    :meth:`take_shard_round` return the fault *directive* (``"exit"`` /
    ``"raise"``) exactly ``times`` times per scheduled coordinate, and
    ``None`` thereafter — and only the directive travels in the task
    payload.  (Consuming worker-side would re-fire on every retry: each
    resubmission pickles a fresh copy of the parent's counters.)  The
    worker executes its directive via :meth:`execute` before any real
    work runs, so an injected death costs no partial state.

    ``mode="exit"`` (the default) has the worker call ``os._exit(1)`` so
    the pool sees genuine worker death (``BrokenProcessPool``), exactly
    what a crash or an OOM kill produces; ``mode="raise"`` raises
    :class:`InjectedFault` instead, modelling a deterministic in-task
    error that must *not* be retried.

    Because the schedule is attempt-aware, ``times=1`` kills only the
    first attempt: the retry draws directive ``None``, succeeds, and the
    test can assert the recovered results equal an uninjected run's.
    """

    def __init__(self, mode: str = "exit") -> None:
        if mode not in ("exit", "raise"):
            raise ValueError(f"mode must be 'exit' or 'raise', got {mode!r}")
        self.mode = mode
        self._trials: Dict[int, int] = {}
        self._shard_rounds: Dict[Tuple[int, int], int] = {}

    def kill_trial(self, trial_index: int, times: int = 1) -> "FaultInjector":
        """Schedule death of the worker running ``trial_index`` (first ``times`` attempts)."""
        self._trials[int(trial_index)] = int(times)
        return self

    def kill_shard_round(self, round_index: int, shard: int = 0, times: int = 1) -> "FaultInjector":
        """Schedule death of shard ``shard``'s worker in round ``round_index``."""
        self._shard_rounds[(int(round_index), int(shard))] = int(times)
        return self

    def _consume(self, table: Dict, key) -> bool:
        remaining = table.get(key, 0)
        if remaining <= 0:
            return False
        table[key] = remaining - 1
        return True

    def take_trial(self, trial_index: int) -> "str | None":
        """Parent-side: consume one scheduled attempt for ``trial_index``."""
        if self._consume(self._trials, int(trial_index)):
            return self.mode
        return None

    def take_shard_round(self, round_index: int, shard: int) -> "str | None":
        """Parent-side: consume one scheduled attempt for ``(round, shard)``."""
        if self._consume(self._shard_rounds, (int(round_index), int(shard))):
            return self.mode
        return None

    @staticmethod
    def execute(directive: "str | None", where: str) -> None:
        """Worker-side: act on a directive taken by the parent (no-op on ``None``)."""
        if directive == "exit":
            os._exit(1)
        if directive == "raise":
            raise InjectedFault(f"injected fault at {where}")


class InjectedFault(RuntimeError):
    """Raised by a ``mode='raise'`` :class:`FaultInjector` in place of worker death."""
