"""Message failure models for the network simulator.

The simulator asks the failure model whether each message is delivered.
:class:`NoFailures` is the paper's (reliable, synchronous) model;
:class:`DropUniform` drops each message independently with a fixed
probability, supporting the robustness experiments (E11) at the protocol
level.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.network.message import Message

__all__ = ["FailureModel", "NoFailures", "DropUniform"]


class FailureModel(abc.ABC):
    """Decides, per message, whether delivery succeeds."""

    @abc.abstractmethod
    def delivered(self, message: Message, rng: np.random.Generator) -> bool:
        """Return True when ``message`` reaches its receiver."""


class NoFailures(FailureModel):
    """Reliable delivery — the paper's standing assumption."""

    def delivered(self, message: Message, rng: np.random.Generator) -> bool:
        return True


class DropUniform(FailureModel):
    """Drop each message independently with probability ``drop_prob``."""

    def __init__(self, drop_prob: float) -> None:
        if not (0.0 <= drop_prob < 1.0):
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.drop_prob = drop_prob

    def delivered(self, message: Message, rng: np.random.Generator) -> bool:
        return float(rng.random()) >= self.drop_prob
