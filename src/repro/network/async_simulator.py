"""The asynchronous event-driven network simulator.

Where :class:`~repro.network.simulator.NetworkSimulator` advances in
lock-step rounds, this engine advances a virtual clock through a
deterministic event heap (:mod:`repro.network.events`): nodes originate
protocol messages at periodic *ticks*, every message is delivered by its
own timestamped event after a latency drawn from a pluggable
:class:`~repro.network.events.LatencyModel`, and faults are first-class
events — message loss (the same :class:`~repro.network.failures.FailureModel`
objects the sync engine uses), node leave/join churn, and
partition/heal.  Dead contacts are detected and evicted through periodic
liveness pings.

Both engines drive the *same* per-message protocol state transitions
(:meth:`~repro.network.protocols.GossipProtocol.initiate_batch` /
:meth:`~repro.network.protocols.GossipProtocol.on_deliver`), so the async
engine is not a reimplementation of the protocols but a different
scheduler for them.  In the degenerate configuration — constant latency
below the tick interval, no churn, no partitions, ``NoFailures`` — a tick
is exactly a synchronous round: the engine consumes the identical random
stream and reproduces the synchronous discovery trajectory draw for draw
(pinned by ``tests/test_async_network.py``).

Event ordering is deterministic per seed: the heap breaks time ties by
insertion sequence, all protocol randomness flows through one generator,
and churn/ping randomness comes from separate seeded generators so fault
machinery never perturbs protocol draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.baselines._packed import require_undirected
from repro.graphs.adjacency import DynamicGraph
from repro.network.events import (
    ChurnSchedule,
    Event,
    EventKind,
    EventQueue,
    FixedLatency,
    LatencyModel,
    PartitionSchedule,
)
from repro.network.failures import FailureModel, NoFailures
from repro.network.message import LocalityError, Message, MessageKind
from repro.network.node import NetworkNode
from repro.network.protocols import GossipProtocol, ProtocolContext, resolve_protocol

__all__ = ["AsyncNetworkSimulator", "AsyncSimulationStats"]

#: message kinds that belong to the liveness machinery, not the protocol.
_LIVENESS_KINDS = (MessageKind.PING, MessageKind.PONG)


@dataclass
class AsyncSimulationStats:
    """Cumulative accounting for one asynchronous simulation."""

    time: float = 0.0
    ticks: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    #: delivered to a node that was down at delivery time.
    messages_lost_dead: int = 0
    #: cut by an active partition at delivery time.
    messages_lost_partition: int = 0
    bits_sent: int = 0
    discoveries: int = 0
    joins: int = 0
    leaves: int = 0
    pings_sent: int = 0
    pongs_received: int = 0
    evictions: int = 0


class AsyncNetworkSimulator:
    """Event-queue simulator for the message-level discovery protocols.

    Parameters
    ----------
    graph:
        Starting topology; node ``u``'s initial contact list is its
        neighbour list (insertion order preserved, exactly like the
        synchronous engine).
    protocol:
        A :class:`GossipProtocol` instance or one of ``"push"``,
        ``"pull"``, ``"name_dropper"``.
    rng:
        Seed or generator for all *protocol* randomness.
    failures:
        Per-message loss model applied at send time (default: reliable).
    latency:
        Per-message delivery delay (default ``FixedLatency(0.5)``).
    tick_interval:
        Virtual time between activations.  For tick-vs-round comparisons
        keep all latencies below this (below a third of it for pull,
        whose rounds are three message hops deep).
    churn:
        Optional :class:`ChurnSchedule` of leave/join events.
    partitions:
        Optional :class:`PartitionSchedule` of partition/heal events.
    ping_interval, ping_timeout, ping_misses:
        Enable liveness probing by passing ``ping_interval``: every alive
        node pings one random contact each interval and evicts it after
        ``ping_misses`` *consecutive* probes go unanswered for
        ``ping_timeout`` each (a single miss is not proof of death when
        the failure model also drops pings).  Ping target/loss/latency
        randomness uses a generator seeded with ``liveness_seed`` so the
        protocol stream is untouched.
    record_events:
        Keep a log of processed events (``event_log``) for determinism
        tests and debugging.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        protocol: Union[GossipProtocol, str] = "push",
        rng: Union[np.random.Generator, int, None] = None,
        failures: Optional[FailureModel] = None,
        latency: Optional[LatencyModel] = None,
        tick_interval: float = 1.0,
        churn: Optional[ChurnSchedule] = None,
        partitions: Optional[PartitionSchedule] = None,
        ping_interval: Optional[float] = None,
        ping_timeout: float = 2.0,
        ping_misses: int = 3,
        liveness_seed: int = 0x5EED,
        record_events: bool = False,
    ) -> None:
        require_undirected(graph, "AsyncNetworkSimulator")
        if tick_interval <= 0.0:
            raise ValueError(f"tick_interval must be positive, got {tick_interval}")
        if ping_interval is not None and ping_interval <= 0.0:
            raise ValueError(f"ping_interval must be positive, got {ping_interval}")
        if ping_misses < 1:
            raise ValueError(f"ping_misses must be at least 1, got {ping_misses}")
        self.n = graph.n
        self.nodes: List[NetworkNode] = [
            NetworkNode(u, list(graph.neighbors(u))) for u in graph.nodes()
        ]
        self.protocol = resolve_protocol(protocol)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.failures = failures if failures is not None else NoFailures()
        self.latency = latency if latency is not None else FixedLatency(0.5)
        self.tick_interval = float(tick_interval)
        self.ping_interval = None if ping_interval is None else float(ping_interval)
        self.ping_timeout = float(ping_timeout)
        self.ping_misses = int(ping_misses)
        self.stats = AsyncSimulationStats()
        self.knowledge_graph = graph.copy()
        self.event_log: Optional[List[Tuple[float, int, str, object]]] = (
            [] if record_events else None
        )

        self._alive = [True] * self.n
        self._clock = 0.0
        self._queue = EventQueue()
        self._heard_of: Dict[int, Set[int]] = {}
        self._group_of: Optional[Dict[int, int]] = None
        self._liveness_rng = np.random.default_rng(liveness_seed)
        self._pending_pings: Dict[int, Tuple[int, int]] = {}
        self._miss_counts: Dict[Tuple[int, int], int] = {}
        self._next_ping_id = 0
        self._ctx = self._make_ctx(0)

        # Fault schedules go on the heap first so a fault at time t takes
        # effect before the tick at t (ticks are pushed lazily, with later
        # sequence numbers).
        for entry in (churn.entries if churn is not None else ()):
            if not (0 <= entry.node < self.n):
                raise ValueError(f"churn node {entry.node} out of range for n={self.n}")
            kind = EventKind.LEAVE if entry.kind == "leave" else EventKind.JOIN
            self._queue.push(entry.time, kind, entry.node)
        for entry in (partitions.entries if partitions is not None else ()):
            kind = EventKind.HEAL if entry.groups is None else EventKind.PARTITION
            self._queue.push(entry.time, kind, entry.groups)
        if self.ping_interval is not None:
            for u in range(self.n):
                self._queue.push(self.ping_interval, EventKind.PING_TIMER, u)
        self._queue.push(0.0, EventKind.TICK)

    # ------------------------------------------------------------------ #
    # services used by the protocols
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> bool:
        """Dispatch ``message`` at the current virtual time.

        Enforces the locality model (:class:`LocalityError` when the
        sender addresses an ID it neither holds as a contact nor ever
        heard of), applies the failure model at send time, and — when the
        message survives — schedules its delivery event after a latency
        drawn from the latency model.  Returns True when delivery was
        scheduled (the message may still be lost to churn or a partition
        when it arrives).
        """
        sender = self.nodes[message.sender]
        if not (
            sender.knows(message.receiver)
            or message.receiver in self._heard_of.get(message.sender, ())
        ):
            raise LocalityError(
                f"node {message.sender} cannot address node {message.receiver}: "
                f"not a contact and never heard of ({message.kind.value} message)"
            )
        liveness = message.kind in _LIVENESS_KINDS
        rng = self._liveness_rng if liveness else self.rng
        if liveness:
            if message.kind is MessageKind.PING:
                self.stats.pings_sent += 1
        else:
            self.stats.messages_sent += 1
            self.stats.bits_sent += message.bits(self.n)
        if not self.failures.delivered(message, rng):
            if not liveness:
                self.stats.messages_dropped += 1
            return False
        delay = self.latency.sample(message, rng)
        self._queue.push(self._clock + delay, EventKind.MESSAGE, message)
        return True

    def record_discovery(self, node: int, contact: int) -> None:
        """Register that ``node`` learned about ``contact`` (measurement only)."""
        self.stats.discoveries += 1
        self.knowledge_graph.add_edge(node, contact)

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #
    def run_ticks(self, ticks: int) -> AsyncSimulationStats:
        """Advance through ``ticks`` further activations.

        Processes every event scheduled before the tick *after* the last
        requested one, so with latencies below the tick interval the
        post-call state is directly comparable to the synchronous engine
        after the same number of rounds.
        """
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        target = self.stats.ticks + ticks
        while self._queue:
            head = self._queue.peek()
            if head.kind is EventKind.TICK and self.stats.ticks >= target:
                break
            event = self._queue.pop()
            self._clock = event.time
            self.stats.time = event.time
            self._handle(event)
        return self.stats

    def run_to_convergence(self, max_ticks: int) -> AsyncSimulationStats:
        """Run until every alive node knows every other alive node.

        The ``max_ticks`` budget is per-call, mirroring the synchronous
        engine's per-call round budget.
        """
        if max_ticks < 0:
            raise ValueError("max_ticks must be non-negative")
        ticks_run = 0
        while not self.is_converged() and ticks_run < max_ticks:
            self.run_ticks(1)
            ticks_run += 1
        return self.stats

    def _handle(self, event: Event) -> None:
        if self.event_log is not None:
            self.event_log.append(
                (event.time, event.seq, event.kind.value, self._log_data(event))
            )
        if event.kind is EventKind.TICK:
            self._handle_tick()
        elif event.kind is EventKind.MESSAGE:
            self._handle_message(event.data)
        elif event.kind is EventKind.LEAVE:
            if self._alive[event.data]:
                self._alive[event.data] = False
                self.stats.leaves += 1
        elif event.kind is EventKind.JOIN:
            if not self._alive[event.data]:
                self._alive[event.data] = True
                self.stats.joins += 1
        elif event.kind is EventKind.PARTITION:
            self._group_of = {
                u: i for i, group in enumerate(event.data) for u in group
            }
        elif event.kind is EventKind.HEAL:
            self._group_of = None
        elif event.kind is EventKind.PING_TIMER:
            self._handle_ping_timer(event.data)
        elif event.kind is EventKind.PING_TIMEOUT:
            self._handle_ping_timeout(event.data)

    def _handle_tick(self) -> None:
        self._ctx = self._make_ctx(self.stats.ticks)
        active = [node for node in self.nodes if self._alive[node.node_id]]
        for message in self.protocol.initiate_batch(active, self._ctx):
            self.send(message)
        self.stats.ticks += 1
        self._queue.push(self._clock + self.tick_interval, EventKind.TICK)

    def _handle_message(self, message: Message) -> None:
        liveness = message.kind in _LIVENESS_KINDS
        if not self._alive[message.receiver]:
            if not liveness:
                self.stats.messages_lost_dead += 1
            return
        if self._partition_cuts(message.sender, message.receiver):
            if not liveness:
                self.stats.messages_lost_partition += 1
            return
        heard = self._heard_of.setdefault(message.receiver, set())
        heard.add(message.sender)
        heard.update(message.payload)
        if message.kind is MessageKind.PING:
            (ping_id,) = message.payload
            self.send(
                Message(
                    MessageKind.PONG,
                    message.receiver,
                    message.sender,
                    (ping_id,),
                    message.round_index,
                )
            )
            return
        if message.kind is MessageKind.PONG:
            (ping_id,) = message.payload
            pending = self._pending_pings.pop(ping_id, None)
            if pending is not None:
                self.stats.pongs_received += 1
                self._miss_counts.pop(pending, None)
            return
        self.stats.messages_delivered += 1
        receiver = self.nodes[message.receiver]
        for follow_up in self.protocol.on_deliver(receiver, message, self._ctx):
            self.send(follow_up)

    def _handle_ping_timer(self, u: int) -> None:
        node = self.nodes[u]
        if self._alive[u] and node.degree() > 0:
            contact = node.contacts[int(self._liveness_rng.integers(node.degree()))]
            ping_id = self._next_ping_id
            self._next_ping_id += 1
            self._pending_pings[ping_id] = (u, contact)
            self.send(Message(MessageKind.PING, u, contact, (ping_id,), self.stats.ticks))
            self._queue.push(
                self._clock + self.ping_timeout, EventKind.PING_TIMEOUT, ping_id
            )
        # Reschedule even while down — the node may rejoin.
        self._queue.push(self._clock + self.ping_interval, EventKind.PING_TIMER, u)

    def _handle_ping_timeout(self, ping_id: int) -> None:
        pending = self._pending_pings.pop(ping_id, None)
        if pending is None:
            return
        u, contact = pending
        if not self._alive[u]:
            self._miss_counts.pop(pending, None)
            return
        misses = self._miss_counts.get(pending, 0) + 1
        if misses < self.ping_misses:
            self._miss_counts[pending] = misses
            return
        self._miss_counts.pop(pending, None)
        if self.nodes[u].remove_contact(contact):
            self.stats.evictions += 1

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _make_ctx(self, tick: int) -> ProtocolContext:
        # No reply snapshots: async replies sample the replier's *current*
        # contacts at delivery time (there is no global round to freeze).
        return ProtocolContext(
            rng=self.rng,
            round_index=tick,
            record_discovery=self.record_discovery,
            reply_snapshots=None,
        )

    def _partition_cuts(self, a: int, b: int) -> bool:
        if self._group_of is None:
            return False
        return self._group_of.get(a, -1) != self._group_of.get(b, -1)

    @staticmethod
    def _log_data(event: Event) -> object:
        if event.kind is EventKind.MESSAGE:
            msg = event.data
            return (msg.kind.value, msg.sender, msg.receiver, msg.payload)
        return event.data

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    def is_alive(self, node_id: int) -> bool:
        """True while ``node_id`` is up."""
        return self._alive[node_id]

    def alive_nodes(self) -> List[int]:
        """IDs of the currently-up nodes."""
        return [u for u in range(self.n) if self._alive[u]]

    def is_converged(self) -> bool:
        """True when every alive node knows every *other alive* node.

        Dead contacts may linger in lists (until pings evict them) — they
        do not block convergence; neither do down nodes' stale views.
        """
        alive = [self.nodes[u] for u in range(self.n) if self._alive[u]]
        return all(
            node.knows(other.node_id)
            for node in alive
            for other in alive
            if other is not node
        )

    def contact_graph(self) -> DynamicGraph:
        """The current who-knows-whom graph reconstructed from node state."""
        g = DynamicGraph(self.n)
        for node in self.nodes:
            for c in node.contacts:
                g.add_edge(node.node_id, c)
        return g

    def __repr__(self) -> str:
        return (
            f"AsyncNetworkSimulator(protocol={self.protocol.name!r}, n={self.n}, "
            f"time={self._clock:.2f}, ticks={self.stats.ticks}, "
            f"alive={sum(self._alive)})"
        )
