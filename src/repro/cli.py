"""Command-line interface: run any experiment from the shell.

Usage examples::

    repro-gossip run --process push --family cycle --n 64 --trials 3 --seed 1
    repro-gossip scaling --process pull --family erdos_renyi --sizes 16 32 64
    repro-gossip nonmonotone
    repro-gossip group --host-n 256 --k 24 --process push
    repro-gossip directed --family thm15_strong --sizes 8 16 24
    repro-gossip async --protocol push --n 64 --jitter 1.5 --drop 0.1 --compare-sync
    repro-gossip run --process push --n 256 --checkpoint-every 10 --checkpoint-dir ckpt
    repro-gossip resume ckpt/trial_0000

Every subcommand prints a small aligned table to stdout; the benchmark
harnesses under ``benchmarks/`` use the same underlying functions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.nonmonotonicity import (
    exact_expected_convergence_time,
    monte_carlo_expected_convergence_time,
)
from repro.analysis.scaling import measure_scaling
from repro.graphs import generators
from repro.graphs.directed_generators import directed_family_names
from repro.graphs.generators import family_names
from repro.network.protocols import protocol_names
from repro.simulation import io as sim_io
from repro.simulation.engine import process_names
from repro.simulation.experiment import ExperimentSpec
from repro.simulation.runner import run_trials, summarize_trials
from repro.social.group_discovery import discover_group

__all__ = ["main", "build_parser"]


def _print_table(rows: Sequence[Dict[str, object]], columns: Optional[List[str]] = None) -> None:
    """Print a list of row dicts as an aligned plain-text table."""
    if not rows:
        print("(no results)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    formatted: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        formatted.append(
            [
                f"{row.get(c, ''):.4g}" if isinstance(row.get(c), float) else str(row.get(c, ""))
                for c in columns
            ]
        )
    widths = [max(len(r[i]) for r in formatted) for i in range(len(columns))]
    for r in formatted:
        print("  ".join(cell.ljust(width) for cell, width in zip(r, widths)))


def _save_rows(rows, args) -> None:
    """Persist result rows when ``--save`` was given (format chosen by extension)."""
    path = getattr(args, "save", None)
    if not path:
        return
    metadata = {
        "command": args.command,
        "seed": getattr(args, "seed", None),
        "process": getattr(args, "process", None),
    }
    if str(path).endswith(".csv"):
        sim_io.save_rows_csv(rows, path)
    else:
        sim_io.save_rows_json(rows, path, metadata=metadata)
    print(f"\nsaved {len(rows)} rows to {path}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.checkpoint_every and not args.checkpoint_dir:
        print("--checkpoint-every requires --checkpoint-dir", file=sys.stderr)
        return 2
    spec = ExperimentSpec(
        process=args.process,
        family=args.family,
        n=args.n,
        trials=args.trials,
        directed=args.directed,
        backend=args.backend,
        shards=args.shards,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
    )
    trials = run_trials(
        spec, root_seed=args.seed, processes=args.processes, retries=args.retries
    )
    for trial in trials:
        if trial.failed:
            print(f"FAILED: {trial.error}", file=sys.stderr)
    summary = summarize_trials(trials)
    summary_row = {"process": args.process, "family": args.family}
    summary_row.update(summary)
    _print_table([summary_row])
    _save_rows([summary_row], args)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.simulation.checkpoint import (
        latest_checkpoint,
        load_checkpoint,
        resume_from_checkpoint,
    )

    path = Path(args.checkpoint)
    if path.is_dir():
        path = latest_checkpoint(path)
    checkpoint = load_checkpoint(path)
    result = resume_from_checkpoint(
        path,
        max_rounds=args.max_rounds,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir
        or (str(Path(path).parent) if args.checkpoint_every else None),
    )
    row = {
        "process": checkpoint.process_name,
        "resumed_at_round": checkpoint.round_index,
        "rounds": result.rounds,
        "converged": result.converged,
        "edges_added": result.total_edges_added,
        "messages": result.total_messages,
        "bits": result.total_bits,
    }
    _print_table([row])
    _save_rows([row], args)
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    measurement = measure_scaling(
        process=args.process,
        family=args.family,
        sizes=args.sizes,
        trials=args.trials,
        seed=args.seed,
        directed=args.directed,
        poly_exponent=args.poly_exponent,
        backend=args.backend,
        shards=args.shards,
    )
    _print_table(measurement.as_rows())
    _save_rows(measurement.as_rows(), args)
    print()
    print(
        f"power-law fit:     rounds ~ {measurement.power_fit.coefficient:.3g} "
        f"* n^{measurement.power_fit.exponent:.3f} (R^2={measurement.power_fit.r_squared:.3f})"
    )
    print(
        f"theorem-shape fit: rounds ~ {measurement.power_log_fit.coefficient:.3g} "
        f"* n^{measurement.power_log_fit.poly_exponent:.1f} "
        f"* (ln n)^{measurement.power_log_fit.log_exponent:.3f} "
        f"(R^2={measurement.power_log_fit.r_squared:.3f})"
    )
    return 0


def _cmd_nonmonotone(args: argparse.Namespace) -> int:
    paw = generators.fig1c_nonmonotone()
    triangle = generators.fig1c_triangle_subgraph()
    cycle4, diamond = generators.nonmonotone_supergraph_pair()
    rows = []
    for name, graph in [
        ("fig1c 4-edge (triangle+pendant)", paw),
        ("fig1c 3-edge subgraph (triangle)", triangle),
        ("cycle C4 (4 edges)", cycle4),
        ("diamond = C4 + chord (5 edges)", diamond),
    ]:
        exact = exact_expected_convergence_time(graph, process=args.process)
        mc, sem = monte_carlo_expected_convergence_time(
            graph, process=args.process, trials=args.trials, seed=args.seed
        )
        rows.append(
            {"graph": name, "exact_E[T]": exact, "monte_carlo_E[T]": mc, "mc_stderr": sem}
        )
    _print_table(rows)
    print()
    fig_gap = rows[0]["exact_E[T]"] - rows[1]["exact_E[T]"]
    pair_gap = rows[3]["exact_E[T]"] - rows[2]["exact_E[T]"]
    verdict_fig = "reproduced" if fig_gap > 0 else "NOT reproduced"
    verdict_pair = "reproduced" if pair_gap > 0 else "NOT reproduced"
    print(f"fig1c gap (4-edge minus 3-edge subgraph) = {fig_gap:.4f}  -> {verdict_fig}")
    print(f"same-node-set gap (diamond minus C4)      = {pair_gap:.4f}  -> {verdict_pair}")
    return 0


def _cmd_group(args: argparse.Namespace) -> int:
    import numpy as np

    # The host graph draws from its own seeded generator so a fixed --seed
    # reproduces the whole scenario (host, group and restricted run alike)
    # on either backend; an unseeded host made --seed meaningless.
    host = generators.make_family(
        args.host_family, args.host_n, np.random.default_rng(args.seed)
    )
    result = discover_group(
        host, k=args.k, process=args.process, seed=args.seed, backend=args.backend
    )
    _print_table(
        [
            {
                "host_n": result.host_size,
                "group_k": result.group_size,
                "rounds": result.rounds,
                "converged": result.converged,
                "rounds/(k ln^2 k)": result.rounds_over_k_log2_k,
            }
        ]
    )
    return 0


def _cmd_directed(args: argparse.Namespace) -> int:
    measurement = measure_scaling(
        process="directed_pull",
        family=args.family,
        sizes=args.sizes,
        trials=args.trials,
        seed=args.seed,
        directed=True,
        poly_exponent=2.0,
        backend=args.backend,
        shards=args.shards,
    )
    _print_table(measurement.as_rows())
    print()
    print(
        f"power-law fit: rounds ~ {measurement.power_fit.coefficient:.3g} "
        f"* n^{measurement.power_fit.exponent:.3f} (R^2={measurement.power_fit.r_squared:.3f})"
    )
    return 0


def _cmd_async(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.network import (
        AsyncNetworkSimulator,
        ChurnSchedule,
        DropUniform,
        FixedLatency,
        NetworkSimulator,
        UniformLatency,
    )

    if args.jitter > 0:
        latency = UniformLatency(max(args.latency - args.jitter, 0.0), args.latency + args.jitter)
    else:
        latency = FixedLatency(args.latency)
    failures = DropUniform(args.drop) if args.drop > 0 else None
    churn = None
    ping_interval = args.ping_interval if args.ping_interval > 0 else None
    if args.churn_rate > 0:
        churn = ChurnSchedule.poisson(
            args.n,
            rate=args.churn_rate,
            horizon=float(args.max_ticks),
            seed=(args.seed or 0) + 1,
            downtime=args.churn_downtime,
        )
        if ping_interval is None:
            # Churned-out contacts must be evictable or convergence stalls.
            ping_interval = 1.0

    sim = AsyncNetworkSimulator(
        generators.make_family(args.family, args.n, np.random.default_rng(args.seed)),
        protocol=args.protocol,
        rng=np.random.default_rng(args.seed),
        latency=latency,
        failures=failures,
        churn=churn,
        partitions=None,
        ping_interval=ping_interval,
        # A round trip can take 2*(latency+jitter); a shorter timeout would
        # evict live contacts on latency alone.
        ping_timeout=max(2.0, 2.5 * (args.latency + args.jitter)),
    )
    sim.run_to_convergence(max_ticks=args.max_ticks)
    row = {
        "protocol": args.protocol,
        "family": args.family,
        "n": args.n,
        "ticks": sim.stats.ticks,
        "converged": sim.is_converged(),
        "messages_sent": sim.stats.messages_sent,
        "dropped": sim.stats.messages_dropped,
        "lost_dead": sim.stats.messages_lost_dead,
        "discoveries": sim.stats.discoveries,
        "evictions": sim.stats.evictions,
    }
    if args.compare_sync:
        sync = NetworkSimulator(
            generators.make_family(args.family, args.n, np.random.default_rng(args.seed)),
            protocol=args.protocol,
            rng=np.random.default_rng(args.seed),
        )
        sync.run_to_convergence(max_rounds=args.max_ticks)
        row["sync_rounds"] = sync.stats.rounds
        row["inflation"] = sim.stats.ticks / sync.stats.rounds if sync.stats.rounds else float("nan")
    _print_table([row])
    _save_rows([row], args)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.quality import main as lint_main

    argv: List[str] = list(args.paths)
    if args.rules:
        argv += ["--rules", *args.rules]
    if args.no_registry:
        argv.append("--no-registry")
    if args.list_rules:
        argv.append("--list-rules")
    argv += ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.changed_only:
        argv.append("--changed-only")
    if args.no_summaries:
        argv.append("--no-summaries")
    if args.summary_cache:
        argv += ["--summary-cache", args.summary_cache]
    for pattern in args.exclude or []:
        argv += ["--exclude", pattern]
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests).

    Every ``--process``/``--family``/``--protocol`` option derives its
    ``choices=`` from the live registries, so registering a new process or
    family surfaces it here automatically — and the repro-lint
    ``registry-consistency`` checker cross-checks exactly that coupling.
    """
    all_families = sorted(set(family_names()) | set(directed_family_names()))
    parser = argparse.ArgumentParser(
        prog="repro-gossip",
        description="Run the 'Discovery through Gossip' reproduction experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one process on one graph family")
    p_run.add_argument("--process", default="push", choices=process_names())
    p_run.add_argument("--family", default="cycle", choices=all_families)
    p_run.add_argument("--n", type=int, default=64)
    p_run.add_argument("--trials", type=int, default=3)
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--directed", action="store_true")
    p_run.add_argument(
        "--backend",
        choices=["list", "array"],
        default="list",
        help="graph backend: list (default) or the vectorized array fast path "
        "(supported by every process, baselines included)",
    )
    p_run.add_argument(
        "--shards",
        type=int,
        default=1,
        help="row-shard count for the round engine (>1 requires --backend array; "
        "every registered process is shardable)",
    )
    p_run.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes for trial fan-out (1 = serial); worker death is "
        "survived by pool rebuild + retry, then in-process degradation",
    )
    p_run.add_argument(
        "--retries",
        type=int,
        default=3,
        help="worker-pool failures tolerated before degrading to in-process runs",
    )
    p_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="write an exact per-trial checkpoint every N rounds "
        "(requires --checkpoint-dir; resume with the 'resume' subcommand)",
    )
    p_run.add_argument(
        "--checkpoint-dir",
        default=None,
        help="root directory for per-trial checkpoints (trial_<i>/round_<r> stems)",
    )
    p_run.add_argument("--save", default=None, help="write results to a .json or .csv file")
    p_run.set_defaults(func=_cmd_run)

    p_resume = sub.add_parser(
        "resume",
        help="resume an interrupted run from a checkpoint, draw-for-draw identical",
    )
    p_resume.add_argument(
        "checkpoint",
        help="checkpoint stem/.json, or a directory holding round_* checkpoints "
        "(the latest round is resumed)",
    )
    p_resume.add_argument("--max-rounds", type=int, default=None)
    p_resume.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="keep checkpointing every N rounds while resuming "
        "(defaults to writing beside the source checkpoint)",
    )
    p_resume.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for the resumed run's checkpoints",
    )
    p_resume.add_argument("--save", default=None, help="write results to a .json or .csv file")
    p_resume.set_defaults(func=_cmd_resume)

    p_scaling = sub.add_parser("scaling", help="convergence-time scaling sweep and fit")
    p_scaling.add_argument("--process", default="push", choices=process_names())
    p_scaling.add_argument("--family", default="cycle", choices=all_families)
    p_scaling.add_argument("--sizes", type=int, nargs="+", default=[16, 32, 64])
    p_scaling.add_argument("--trials", type=int, default=3)
    p_scaling.add_argument("--seed", type=int, default=None)
    p_scaling.add_argument("--directed", action="store_true")
    p_scaling.add_argument("--poly-exponent", type=float, default=1.0)
    p_scaling.add_argument(
        "--backend",
        choices=["list", "array"],
        default="list",
        help="graph backend: list (default) or the vectorized array fast path "
        "(supported by every process, baselines included)",
    )
    p_scaling.add_argument(
        "--shards",
        type=int,
        default=1,
        help="row-shard count for the round engine (>1 requires --backend array; "
        "every registered process is shardable)",
    )
    p_scaling.add_argument("--save", default=None, help="write results to a .json or .csv file")
    p_scaling.set_defaults(func=_cmd_scaling)

    p_nm = sub.add_parser("nonmonotone", help="Figure 1(c) non-monotonicity check")
    # The exact-E[T] Markov computation is implemented for push and pull only.
    p_nm.add_argument("--process", default="push", choices=["push", "pull"])
    p_nm.add_argument("--trials", type=int, default=2000)
    p_nm.add_argument("--seed", type=int, default=None)
    p_nm.set_defaults(func=_cmd_nonmonotone)

    p_group = sub.add_parser("group", help="group (subset) discovery scenario")
    p_group.add_argument("--host-family", default="barabasi_albert", choices=family_names())
    p_group.add_argument("--host-n", type=int, default=256)
    p_group.add_argument("--k", type=int, default=24)
    p_group.add_argument("--process", default="push", choices=process_names())
    p_group.add_argument("--seed", type=int, default=None)
    p_group.add_argument(
        "--backend",
        choices=["list", "array"],
        default="list",
        help="graph backend for the restricted group run (identical seeded result)",
    )
    p_group.set_defaults(func=_cmd_group)

    p_dir = sub.add_parser("directed", help="directed two-hop walk scaling sweep")
    p_dir.add_argument("--family", default="random_strong", choices=directed_family_names())
    p_dir.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 24])
    p_dir.add_argument("--trials", type=int, default=3)
    p_dir.add_argument("--seed", type=int, default=None)
    p_dir.add_argument(
        "--backend",
        choices=["list", "array"],
        default="list",
        help="graph backend: list (default) or the vectorized array fast path "
        "(supported by every process, baselines included)",
    )
    p_dir.add_argument(
        "--shards",
        type=int,
        default=1,
        help="row-shard count for the directed walk's rounds "
        "(>1 requires --backend array)",
    )
    p_dir.set_defaults(func=_cmd_directed)

    p_async = sub.add_parser(
        "async",
        help="event-driven run: per-message latency, loss, churn, liveness pings",
    )
    p_async.add_argument("--protocol", default="push", choices=protocol_names())
    p_async.add_argument("--family", default="cycle", choices=family_names())
    p_async.add_argument("--n", type=int, default=64)
    p_async.add_argument("--seed", type=int, default=None)
    p_async.add_argument("--max-ticks", type=int, default=5000)
    p_async.add_argument(
        "--latency", type=float, default=0.45, help="mean one-way message latency (ticks)"
    )
    p_async.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="half-width of the uniform latency window around --latency (0 = deterministic)",
    )
    p_async.add_argument("--drop", type=float, default=0.0, help="iid message-loss probability")
    p_async.add_argument(
        "--churn-rate", type=float, default=0.0, help="Poisson node-leave rate (events per tick)"
    )
    p_async.add_argument(
        "--churn-downtime", type=float, default=5.0, help="ticks a churned node stays down"
    )
    p_async.add_argument(
        "--ping-interval",
        type=float,
        default=0.0,
        help="liveness ping period (0 = off; forced on when --churn-rate > 0)",
    )
    p_async.add_argument(
        "--compare-sync",
        action="store_true",
        help="also run the synchronous simulator on the same seed and report the tick inflation",
    )
    p_async.add_argument("--save", default=None, help="write results to a .json or .csv file")
    p_async.set_defaults(func=_cmd_async)

    p_lint = sub.add_parser(
        "lint",
        help="repro-lint: determinism & resource-safety static analysis",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--rules", nargs="+", default=None, help="run only these rule ids"
    )
    p_lint.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the registry-consistency cross-check",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    p_lint.add_argument(
        "--format", choices=["text", "json", "github"], default="text"
    )
    p_lint.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write a JSON findings report to PATH (atomically)",
    )
    p_lint.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed vs. the merge-base with main (plus untracked)",
    )
    p_lint.add_argument(
        "--no-summaries",
        action="store_true",
        help="disable interprocedural function summaries (intraprocedural only)",
    )
    p_lint.add_argument(
        "--summary-cache",
        default=None,
        metavar="PATH",
        help="persist function summaries to PATH keyed by file sha256",
    )
    p_lint.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="GLOB",
        help="skip files matching GLOB (repeatable)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
