"""repro — a reproduction of "Discovery through Gossip" (SPAA 2012).

The package implements the paper's two gossip-based discovery processes
(push/triangulation and pull/two-hop walk), their directed variant, the
baseline resource-discovery algorithms they are compared against, and the
full experiment harness that reproduces every theorem's empirical shape.

Quickstart
----------
>>> from repro import PushDiscovery, generators
>>> graph = generators.cycle_graph(32)
>>> process = PushDiscovery(graph, rng=0)
>>> result = process.run_to_convergence()
>>> result.converged, graph.is_complete()
(True, True)

Subpackages
-----------
``repro.graphs``      dynamic graph substrate and generators
``repro.core``        the paper's processes (push, pull, directed)
``repro.baselines``   Name Dropper, Random Pointer Jump, flooding
``repro.network``     message-passing protocol implementations
``repro.simulation``  experiment specs, runners, statistics, bounds
``repro.analysis``    scaling fits, non-monotonicity, degree growth
``repro.social``      social-evolution and group-discovery scenarios
"""

from repro.core.push import PushDiscovery
from repro.core.pull import PullDiscovery
from repro.core.directed import DirectedTwoHopWalk
from repro.core.base import DiscoveryProcess, RoundResult, RunResult, UpdateSemantics
from repro.core.subset import SubsetDiscovery
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs import generators, directed_generators, properties
from repro.baselines import NameDropper, RandomPointerJump, NeighborhoodFlooding
from repro.simulation.engine import make_process, measure_convergence_rounds

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PushDiscovery",
    "PullDiscovery",
    "DirectedTwoHopWalk",
    "SubsetDiscovery",
    "DiscoveryProcess",
    "RoundResult",
    "RunResult",
    "UpdateSemantics",
    "DynamicGraph",
    "DynamicDiGraph",
    "generators",
    "directed_generators",
    "properties",
    "NameDropper",
    "RandomPointerJump",
    "NeighborhoodFlooding",
    "make_process",
    "measure_convergence_rounds",
]
