"""repro — a reproduction of "Discovery through Gossip" (SPAA 2012).

The package implements the paper's two gossip-based discovery processes
(push/triangulation and pull/two-hop walk), their directed variant, the
baseline resource-discovery algorithms they are compared against, and the
full experiment harness that reproduces every theorem's empirical shape.

Quickstart
----------
>>> from repro import PushDiscovery, generators
>>> graph = generators.cycle_graph(32)
>>> process = PushDiscovery(graph, rng=0)
>>> result = process.run_to_convergence()
>>> result.converged, graph.is_complete()
(True, True)

Backends
--------
The round engine runs on one of two interchangeable graph substrates,
selected with ``backend="list"`` (default) or ``backend="array"`` on any
process constructor, :func:`make_process`, the experiment specs, and the
CLI (``--backend array``):

``list``
    :class:`DynamicGraph` / :class:`DynamicDiGraph` — per-node Python
    lists plus a hash set; O(1) scalar operations, minimal memory.
``array``
    :class:`ArrayGraph` / :class:`ArrayDiGraph` — preallocated NumPy
    neighbour arrays (amortized doubling) plus a dense membership matrix;
    whole rounds execute as a handful of bulk array operations, several
    times faster at experiment scale.

Both backends consume the same RNG stream through the shared bulk
sampling rules in :mod:`repro.graphs.sampling`, so for a fixed seed they
produce **identical traces** (per-round added edges, round counts,
message/bit totals) under synchronous semantics —
``tests/test_backend_equivalence.py`` pins this contract.  The array
backend is also the substrate on which future sharded / multiprocess
round execution will be built.

>>> fast = PushDiscovery(generators.cycle_graph(32), rng=0, backend="array")
>>> fast.run_to_convergence().rounds == result.rounds
True

Subpackages
-----------
``repro.graphs``      dynamic graph substrates (list + array) and generators
``repro.core``        the paper's processes (push, pull, directed)
``repro.baselines``   Name Dropper, Random Pointer Jump, flooding
``repro.network``     message-passing protocol implementations
``repro.simulation``  experiment specs, runners, statistics, bounds
``repro.analysis``    scaling fits, non-monotonicity, degree growth
``repro.social``      social-evolution and group-discovery scenarios
"""

from repro.core.push import PushDiscovery
from repro.core.pull import PullDiscovery
from repro.core.directed import DirectedTwoHopWalk
from repro.core.base import (
    BatchProposals,
    DiscoveryProcess,
    RoundResult,
    RunResult,
    UpdateSemantics,
    id_bits,
)
from repro.core.subset import SubsetDiscovery
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.array_adjacency import ArrayDiGraph, ArrayGraph, as_backend
from repro.graphs import generators, directed_generators, properties
from repro.baselines import NameDropper, RandomPointerJump, NeighborhoodFlooding
from repro.simulation.engine import make_process, measure_convergence_rounds

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "PushDiscovery",
    "PullDiscovery",
    "DirectedTwoHopWalk",
    "SubsetDiscovery",
    "DiscoveryProcess",
    "BatchProposals",
    "RoundResult",
    "RunResult",
    "UpdateSemantics",
    "id_bits",
    "DynamicGraph",
    "DynamicDiGraph",
    "ArrayGraph",
    "ArrayDiGraph",
    "as_backend",
    "generators",
    "directed_generators",
    "properties",
    "NameDropper",
    "RandomPointerJump",
    "NeighborhoodFlooding",
    "make_process",
    "measure_convergence_rounds",
]
