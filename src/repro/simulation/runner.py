"""Trial runner: execute experiment specs, aggregate results into tables.

The runner executes each trial with an independent RNG stream spawned
from the experiment's root seed, so every table in EXPERIMENTS.md can be
regenerated bit-for-bit from one integer.  A ``processes=`` argument
enables multiprocessing fan-out across trials for the larger sweeps;
benchmarks use the default serial path for determinism.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.engine import measure_convergence_rounds
from repro.simulation.experiment import ExperimentSpec
from repro.simulation.rng import SeedSequenceFactory
from repro.simulation import stats

__all__ = ["TrialResult", "run_trials", "run_sweep", "summarize_trials", "sweep_table"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial of one experiment spec."""

    spec: ExperimentSpec
    trial_index: int
    rounds: int
    converged: bool
    edges_added: int
    messages: int
    bits: int


def _run_single_trial(args: Tuple[ExperimentSpec, int, Optional[int]]) -> TrialResult:
    """Module-level worker so it can cross a multiprocessing boundary."""
    spec, trial_index, root_seed = args
    factory = SeedSequenceFactory(root_seed)
    trial_seed = factory.seed_for_index(trial_index)
    rng = np.random.default_rng(trial_seed)
    graph = spec.build_graph(rng)
    # The sharded engine's per-round shard streams are spawned from the
    # trial's own SeedSequence (spawning does not perturb ``rng``'s stream,
    # so shards=1 trials are byte-identical to pre-sharding runs).
    shard_seed = trial_seed.spawn(1)[0] if spec.shards > 1 else None
    result = measure_convergence_rounds(
        spec.process,
        graph,
        rng=rng,
        max_rounds=spec.max_rounds,
        copy_graph=False,
        backend=spec.backend,
        shards=spec.shards,
        shard_seed=shard_seed,
        shard_parallel=spec.shard_parallel,
        **spec.process_kwargs,
    )
    return TrialResult(
        spec=spec,
        trial_index=trial_index,
        rounds=result.rounds,
        converged=result.converged,
        edges_added=result.total_edges_added,
        messages=result.total_messages,
        bits=result.total_bits,
    )


def run_trials(
    spec: ExperimentSpec,
    root_seed: Optional[int] = None,
    processes: int = 1,
) -> List[TrialResult]:
    """Run all trials of one experiment spec.

    Parameters
    ----------
    spec:
        The experiment configuration.
    root_seed:
        Root seed from which each trial's independent stream is derived.
        Trial ``i`` always gets stream ``i``, so adding trials never
        changes earlier ones.
    processes:
        Number of worker processes (1 = run serially in this process).
    """
    jobs = [(spec, i, root_seed) for i in range(spec.trials)]
    if processes <= 1 or spec.trials <= 1:
        return [_run_single_trial(job) for job in jobs]
    with multiprocessing.Pool(processes=processes) as pool:
        return list(pool.map(_run_single_trial, jobs))


def run_sweep(
    specs: Sequence[ExperimentSpec],
    root_seed: Optional[int] = None,
    processes: int = 1,
) -> Dict[ExperimentSpec, List[TrialResult]]:
    """Run every spec in a sweep; returns results keyed by spec."""
    results: Dict[ExperimentSpec, List[TrialResult]] = {}
    for spec in specs:
        results[spec] = run_trials(spec, root_seed=root_seed, processes=processes)
    return results


def summarize_trials(trials: Sequence[TrialResult]) -> Dict[str, float]:
    """Aggregate one spec's trials into summary statistics.

    Returns mean/median/std/min/max of rounds, the fraction converged, and
    mean message/bit totals.
    """
    if not trials:
        raise ValueError("cannot summarize an empty trial list")
    rounds = np.array([t.rounds for t in trials], dtype=float)
    return {
        "n": float(trials[0].spec.n),
        "trials": float(len(trials)),
        "rounds_mean": float(rounds.mean()),
        "rounds_median": float(np.median(rounds)),
        "rounds_std": float(rounds.std(ddof=1)) if len(rounds) > 1 else 0.0,
        "rounds_min": float(rounds.min()),
        "rounds_max": float(rounds.max()),
        "rounds_ci95": stats.ci95_halfwidth(rounds),
        "converged_fraction": float(np.mean([t.converged for t in trials])),
        "messages_mean": float(np.mean([t.messages for t in trials])),
        "bits_mean": float(np.mean([t.bits for t in trials])),
        "edges_added_mean": float(np.mean([t.edges_added for t in trials])),
    }


def sweep_table(
    results: Dict[ExperimentSpec, List[TrialResult]]
) -> List[Dict[str, object]]:
    """Flatten sweep results into a list of row dicts (one per spec).

    Each row carries the spec identity (process, family, n, label) plus the
    summary statistics — the exact rows the benchmark harnesses print.
    """
    rows: List[Dict[str, object]] = []
    for spec, trials in results.items():
        row: Dict[str, object] = {
            "process": spec.process,
            "family": spec.family,
            "label": spec.label,
        }
        row.update(summarize_trials(trials))
        rows.append(row)
    rows.sort(key=lambda r: (str(r["process"]), str(r["family"]), float(r["n"])))
    return rows
