"""Trial runner: execute experiment specs, aggregate results into tables.

The runner executes each trial with an independent RNG stream spawned
from the experiment's root seed, so every table in EXPERIMENTS.md can be
regenerated bit-for-bit from one integer.  A ``processes=`` argument
enables multiprocessing fan-out across trials for the larger sweeps;
benchmarks use the default serial path for determinism.

The pooled path is crash-tolerant.  Worker death
(:class:`~concurrent.futures.process.BrokenProcessPool` — a crash, an OOM
kill, an injected fault) does not abort the sweep: the pool is rebuilt
and the unfinished trials are resubmitted with capped exponential
backoff; after ``retries`` consecutive pool failures the runner degrades
to in-process execution and finishes the remaining trials serially.
Because every trial draws from its own ``SeedSequence`` stream, a retried
trial reproduces the crashed attempt draw-for-draw — retrying never
changes results.  A trial that *raises* (deterministic error, not worker
death) is not retried; it is recorded as a failed :class:`TrialResult`
carrying a :class:`TrialExecutionError` tagged with the spec label, trial
index and derived seed, and its completed siblings are kept.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.engine import measure_convergence_rounds
from repro.simulation.experiment import ExperimentSpec
from repro.simulation.rng import SeedSequenceFactory
from repro.simulation import stats

__all__ = [
    "TrialResult",
    "TrialExecutionError",
    "run_trials",
    "run_sweep",
    "summarize_trials",
    "sweep_table",
]

#: consecutive pool failures tolerated before degrading to in-process runs
DEFAULT_TRIAL_RETRIES = 3

#: backoff after the k-th pool failure is BACKOFF_BASE * 2**k, capped
BACKOFF_BASE_SECONDS = 0.05
BACKOFF_CAP_SECONDS = 2.0


class TrialExecutionError(RuntimeError):
    """A trial raised inside a worker; carries the coordinates to reproduce it.

    All constructor arguments live in ``args`` so the exception pickles
    across the process boundary intact.
    """

    def __init__(self, label: str, trial_index: int, root_seed: Optional[int], cause: str):
        super().__init__(label, trial_index, root_seed, cause)
        self.label = label
        self.trial_index = trial_index
        self.root_seed = root_seed
        self.cause = cause

    def __str__(self) -> str:
        return (
            f"trial {self.trial_index} of {self.label!r} "
            f"(root_seed={self.root_seed}) failed: {self.cause}"
        )


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial of one experiment spec.

    ``error`` is ``None`` for a successful trial; a failed trial records
    the :class:`TrialExecutionError` here (with zeroed metrics) instead of
    aborting the sweep and losing its siblings.
    """

    spec: ExperimentSpec
    trial_index: int
    rounds: int
    converged: bool
    edges_added: int
    messages: int
    bits: int
    error: Optional[TrialExecutionError] = field(default=None, compare=False)

    @property
    def failed(self) -> bool:
        return self.error is not None


def _run_single_trial(args) -> TrialResult:
    """Module-level worker so it can cross a multiprocessing boundary.

    Accepts ``(spec, trial_index, root_seed)`` plus an optional trailing
    fault *directive* (test-only, taken parent-side from a
    :class:`~repro.network.failures.FaultInjector` at submit): it executes
    *before* the trial body, so an injected death costs no partial work.
    """
    spec, trial_index, root_seed = args[:3]
    factory = SeedSequenceFactory(root_seed)
    trial_seed = factory.seed_for_index(trial_index)
    rng = np.random.default_rng(trial_seed)
    try:
        if len(args) > 3 and args[3] is not None:
            # "exit" kills the worker outright; "raise" lands in the except
            # below and is recorded as a failed trial (never retried).
            from repro.network.failures import FaultInjector

            FaultInjector.execute(args[3], f"trial {trial_index}")
        graph = spec.build_graph(rng)
        # The sharded engine's per-round shard streams are spawned from the
        # trial's own SeedSequence (spawning does not perturb ``rng``'s stream,
        # so shards=1 trials are byte-identical to pre-sharding runs).
        shard_seed = trial_seed.spawn(1)[0] if spec.shards > 1 else None
        checkpoint_dir = None
        if spec.checkpoint_every and spec.checkpoint_dir is not None:
            checkpoint_dir = f"{spec.checkpoint_dir}/trial_{trial_index:04d}"
        result = measure_convergence_rounds(
            spec.process,
            graph,
            rng=rng,
            max_rounds=spec.max_rounds,
            copy_graph=False,
            backend=spec.backend,
            shards=spec.shards,
            shard_seed=shard_seed,
            shard_parallel=spec.shard_parallel,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            **spec.process_kwargs,
        )
    except Exception as exc:
        error = TrialExecutionError(
            label=spec.describe(),
            trial_index=trial_index,
            root_seed=root_seed,
            cause=f"{type(exc).__name__}: {exc}",
        )
        return TrialResult(
            spec=spec,
            trial_index=trial_index,
            rounds=0,
            converged=False,
            edges_added=0,
            messages=0,
            bits=0,
            error=error,
        )
    return TrialResult(
        spec=spec,
        trial_index=trial_index,
        rounds=result.rounds,
        converged=result.converged,
        edges_added=result.total_edges_added,
        messages=result.total_messages,
        bits=result.total_bits,
    )


def _backoff_sleep(failure_count: int) -> None:
    delay = min(BACKOFF_BASE_SECONDS * (2 ** (failure_count - 1)), BACKOFF_CAP_SECONDS)
    time.sleep(delay)


def _run_trials_pooled(
    jobs: List[tuple],
    processes: int,
    retries: int,
    fault_injector=None,
) -> Dict[int, TrialResult]:
    """Run ``jobs`` in a worker pool, surviving worker death.

    Returns results keyed by trial index.  Unfinished jobs after a
    ``BrokenProcessPool`` are resubmitted to a fresh pool (with backoff);
    after ``retries`` consecutive pool failures the remaining jobs are
    run in-process.  Deterministic in-trial errors come back as failed
    :class:`TrialResult` rows, never as retries.
    """
    done: Dict[int, TrialResult] = {}
    pending = list(jobs)
    pool_failures = 0
    while pending and pool_failures <= retries:
        pool = ProcessPoolExecutor(max_workers=min(processes, len(pending)))
        futures = {}
        broken = False
        try:
            # Submitting inside the try keeps the pool covered by the
            # finally: a raising fault-injector or submit() must not leak
            # worker processes.
            for job in pending:
                directive = (
                    fault_injector.take_trial(job[1]) if fault_injector is not None else None
                )
                payload = job if directive is None else (*job, directive)
                futures[job[1]] = pool.submit(_run_single_trial, payload)
            # Keep draining after a break: futures that completed before the
            # pool died still hold results, and siblings must not be lost.
            for trial_index, future in futures.items():
                try:
                    done[trial_index] = future.result()
                except BrokenProcessPool:
                    broken = True
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        pending = [job for job in pending if job[1] not in done]
        if not broken:
            break
        pool_failures += 1
        if pool_failures <= retries and pending:
            _backoff_sleep(pool_failures)
    # Degraded path: finish what the pool could not.  The serial fallback
    # never consults the fault injector (workers are what die, not us).
    for job in pending:
        done[job[1]] = _run_single_trial(job)
    return done


def run_trials(
    spec: ExperimentSpec,
    root_seed: Optional[int] = None,
    processes: int = 1,
    retries: int = DEFAULT_TRIAL_RETRIES,
    fault_injector=None,
) -> List[TrialResult]:
    """Run all trials of one experiment spec.

    Parameters
    ----------
    spec:
        The experiment configuration.
    root_seed:
        Root seed from which each trial's independent stream is derived.
        Trial ``i`` always gets stream ``i``, so adding trials never
        changes earlier ones.
    processes:
        Number of worker processes (1 = run serially in this process).
    retries:
        Consecutive worker-pool failures tolerated before the remaining
        trials degrade to in-process execution.  Retried trials replay
        their own seed stream, so crash recovery never changes results.
    fault_injector:
        Test hook: a :class:`repro.network.failures.FaultInjector` whose
        scheduled trial faults fire inside pool workers.  Never consulted
        on the serial or degraded path.
    """
    jobs: List[tuple] = [(spec, i, root_seed) for i in range(spec.trials)]
    if processes <= 1 or spec.trials <= 1:
        return [_run_single_trial(job) for job in jobs]
    done = _run_trials_pooled(
        jobs, processes=processes, retries=retries, fault_injector=fault_injector
    )
    return [done[i] for i in range(spec.trials)]


def run_sweep(
    specs: Sequence[ExperimentSpec],
    root_seed: Optional[int] = None,
    processes: int = 1,
    retries: int = DEFAULT_TRIAL_RETRIES,
) -> Dict[ExperimentSpec, List[TrialResult]]:
    """Run every spec in a sweep; returns results keyed by spec."""
    results: Dict[ExperimentSpec, List[TrialResult]] = {}
    for spec in specs:
        results[spec] = run_trials(
            spec, root_seed=root_seed, processes=processes, retries=retries
        )
    return results


def summarize_trials(trials: Sequence[TrialResult]) -> Dict[str, float]:
    """Aggregate one spec's trials into summary statistics.

    Returns mean/median/std/min/max of rounds, the fraction converged, and
    mean message/bit totals.  Failed trials (``error`` set) are excluded
    from the statistics and counted in ``failed``; a batch with no
    successful trial raises ``ValueError``.
    """
    if not trials:
        raise ValueError("cannot summarize an empty trial list")
    failed = [t for t in trials if t.failed]
    ok = [t for t in trials if not t.failed]
    if not ok:
        causes = "; ".join(str(t.error) for t in failed[:3])
        raise ValueError(f"all {len(trials)} trials failed ({causes})")
    rounds = np.array([t.rounds for t in ok], dtype=float)
    return {
        "n": float(ok[0].spec.n),
        "trials": float(len(ok)),
        "failed": float(len(failed)),
        "rounds_mean": float(rounds.mean()),
        "rounds_median": float(np.median(rounds)),
        "rounds_std": float(rounds.std(ddof=1)) if len(rounds) > 1 else 0.0,
        "rounds_min": float(rounds.min()),
        "rounds_max": float(rounds.max()),
        "rounds_ci95": stats.ci95_halfwidth(rounds),
        "converged_fraction": float(np.mean([t.converged for t in ok])),
        "messages_mean": float(np.mean([t.messages for t in ok])),
        "bits_mean": float(np.mean([t.bits for t in ok])),
        "edges_added_mean": float(np.mean([t.edges_added for t in ok])),
    }


def sweep_table(
    results: Dict[ExperimentSpec, List[TrialResult]]
) -> List[Dict[str, object]]:
    """Flatten sweep results into a list of row dicts (one per spec).

    Each row carries the spec identity (process, family, n, label) plus the
    summary statistics — the exact rows the benchmark harnesses print.
    """
    rows: List[Dict[str, object]] = []
    for spec, trials in results.items():
        row: Dict[str, object] = {
            "process": spec.process,
            "family": spec.family,
            "label": spec.label,
        }
        row.update(summarize_trials(trials))
        rows.append(row)
    rows.sort(key=lambda r: (str(r["process"]), str(r["family"]), float(r["n"])))
    return rows
