"""Process construction and single-run measurement helpers.

The experiment layer refers to processes by short string names
(``"push"``, ``"pull"``, ``"directed_pull"``, ``"name_dropper"``,
``"pointer_jump"``, ``"flooding"``) so that sweeps, benchmarks and the CLI
can be configured declaratively.  :func:`make_process` resolves a name to
a configured process instance; :func:`measure_convergence_rounds` is the
one-call entry point used by most experiments.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.base import DiscoveryProcess, RunResult, UpdateSemantics
from repro.core.directed import DirectedTwoHopWalk
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.core.variants import FaultyPullDiscovery, FaultyPushDiscovery
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.array_adjacency import ArrayDiGraph, ArrayGraph, as_backend, backend_name

__all__ = [
    "PROCESS_REGISTRY",
    "ARRAY_BACKEND_PROCESSES",
    "make_process",
    "run_process",
    "measure_convergence_rounds",
    "process_names",
]

GraphLike = Union[DynamicGraph, DynamicDiGraph, ArrayGraph, ArrayDiGraph]

#: name -> (constructor, requires_directed_graph)
PROCESS_REGISTRY: Dict[str, Tuple[Callable[..., DiscoveryProcess], bool]] = {
    "push": (PushDiscovery, False),
    "pull": (PullDiscovery, False),
    "directed_pull": (DirectedTwoHopWalk, True),
    "name_dropper": (NameDropper, False),
    "pointer_jump": (RandomPointerJump, False),
    "pointer_jump_directed": (RandomPointerJump, True),
    "flooding": (NeighborhoodFlooding, False),
    "faulty_push": (FaultyPushDiscovery, False),
    "faulty_pull": (FaultyPullDiscovery, False),
}

#: processes that accept the NumPy array backend.  Since the baselines
#: were ported onto the packed bitset substrate (payloads as membership
#: rows, deliveries as row unions) every registered process qualifies;
#: the set is kept as the explicit opt-in list for future processes.
ARRAY_BACKEND_PROCESSES = frozenset(PROCESS_REGISTRY)


def process_names() -> Sequence[str]:
    """All registered process names."""
    return sorted(PROCESS_REGISTRY)


def make_process(
    name: str,
    graph: GraphLike,
    rng: Union[np.random.Generator, int, None] = None,
    semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    backend: Optional[str] = None,
    shards: int = 1,
    shard_seed: Union[int, np.random.SeedSequence, None] = None,
    shard_parallel: Optional[bool] = None,
    **kwargs,
) -> DiscoveryProcess:
    """Build a process by registry name over ``graph``.

    ``backend`` selects the graph substrate: ``"list"`` (default behaviour)
    or ``"array"`` (the vectorized fast path — supported by every
    registered process, baselines included; see
    :data:`ARRAY_BACKEND_PROCESSES`).  The graph is converted as needed.

    ``shards > 1`` wraps the process in
    :class:`repro.simulation.sharding.ShardedProcess`, which runs each
    round's propose phase over contiguous row shards and OR-merges the
    packed deltas (requires ``backend="array"``; every registered process
    is shardable — see
    :data:`repro.simulation.sharding.SHARDABLE_PROCESSES`, which covers
    the gossip processes, the directed two-hop walk and the payload
    baselines).  ``shard_seed`` feeds the per-round shard
    streams (e.g. the trial's ``SeedSequence``); ``shard_parallel``
    selects the process-pool path (``None`` = auto by size).  ``shards=1``
    returns the plain process — draw-for-draw identical to not passing
    ``shards`` at all.

    Raises ``KeyError`` for unknown names and ``TypeError`` when the graph
    kind does not match the process (e.g. an undirected graph passed to
    ``"directed_pull"``).
    """
    try:
        ctor, needs_directed = PROCESS_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown process {name!r}; known: {list(process_names())}") from None
    directed_graph = bool(getattr(graph, "directed", False))
    if needs_directed and not directed_graph:
        raise TypeError(f"process {name!r} requires a directed graph")
    if not needs_directed and directed_graph and name != "pointer_jump_directed":
        # pointer_jump accepts both kinds; all other undirected processes do not.
        if name != "pointer_jump":
            raise TypeError(f"process {name!r} requires an undirected graph")
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if backend is not None:
        if backend == "array" and name not in ARRAY_BACKEND_PROCESSES:
            raise ValueError(
                f"process {name!r} does not support the array backend; "
                f"array-capable: {sorted(ARRAY_BACKEND_PROCESSES)}"
            )
        graph = as_backend(graph, backend)
    process = ctor(graph, rng=rng, semantics=semantics, **kwargs)
    if shards > 1:
        if backend_name(process.graph) != "array":
            raise ValueError(
                f"shards={shards} requires backend='array' (the sharded engine "
                "partitions the packed membership rows)"
            )
        # Imported here: sharding sits one layer above the engine registry.
        from repro.simulation.sharding import ShardedProcess

        return ShardedProcess(process, shards=shards, seed=shard_seed, parallel=shard_parallel)
    return process


def run_process(
    process: DiscoveryProcess,
    max_rounds: Optional[int] = None,
    callbacks: Sequence[Callable] = (),
    record_history: bool = False,
) -> RunResult:
    """Run ``process`` to convergence with a safety cap (thin wrapper)."""
    return process.run_to_convergence(
        max_rounds=max_rounds, callbacks=callbacks, record_history=record_history
    )


def measure_convergence_rounds(
    name: str,
    graph: GraphLike,
    rng: Union[np.random.Generator, int, None] = None,
    max_rounds: Optional[int] = None,
    semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    copy_graph: bool = True,
    backend: Optional[str] = None,
    shards: int = 1,
    shard_seed: Union[int, np.random.SeedSequence, None] = None,
    shard_parallel: Optional[bool] = None,
    checkpoint_every: int = 0,
    checkpoint_dir: Union[str, "os.PathLike", None] = None,
    **kwargs,
) -> RunResult:
    """Build the named process over (a copy of) ``graph`` and run it to convergence.

    This is the workhorse of every scaling experiment: one call, one
    :class:`RunResult` whose ``rounds`` field is the convergence time.
    ``backend="array"`` routes the run through the vectorized fast path;
    the seeded result is identical to the list backend's.  ``shards > 1``
    additionally routes each round through the sharded engine (see
    :func:`make_process`).

    ``checkpoint_every=k`` with ``checkpoint_dir`` writes an exact
    checkpoint (``round_<index>`` stem) after every ``k``-th completed
    round; an interrupted run can then be continued draw-for-draw with
    :func:`repro.simulation.checkpoint.resume_from_checkpoint`.
    """
    work_graph = graph.copy() if copy_graph else graph
    process = make_process(
        name,
        work_graph,
        rng=rng,
        semantics=semantics,
        backend=backend,
        shards=shards,
        shard_seed=shard_seed,
        shard_parallel=shard_parallel,
        **kwargs,
    )
    callbacks = ()
    if checkpoint_every:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        # Imported lazily: checkpoint sits one layer above the engine.
        from repro.simulation.checkpoint import periodic_checkpointer

        callbacks = (periodic_checkpointer(checkpoint_dir, checkpoint_every),)
    try:
        return process.run_to_convergence(max_rounds=max_rounds, callbacks=callbacks)
    finally:
        close = getattr(process, "close", None)
        if close is not None:
            close()
