"""Process construction and single-run measurement helpers.

The experiment layer refers to processes by short string names
(``"push"``, ``"pull"``, ``"directed_pull"``, ``"name_dropper"``,
``"pointer_jump"``, ``"flooding"``) so that sweeps, benchmarks and the CLI
can be configured declaratively.  :func:`make_process` resolves a name to
a configured process instance; :func:`measure_convergence_rounds` is the
one-call entry point used by most experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.base import DiscoveryProcess, RunResult, UpdateSemantics
from repro.core.directed import DirectedTwoHopWalk
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.core.variants import FaultyPullDiscovery, FaultyPushDiscovery
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph

__all__ = [
    "PROCESS_REGISTRY",
    "make_process",
    "run_process",
    "measure_convergence_rounds",
    "process_names",
]

GraphLike = Union[DynamicGraph, DynamicDiGraph]

#: name -> (constructor, requires_directed_graph)
PROCESS_REGISTRY: Dict[str, Tuple[Callable[..., DiscoveryProcess], bool]] = {
    "push": (PushDiscovery, False),
    "pull": (PullDiscovery, False),
    "directed_pull": (DirectedTwoHopWalk, True),
    "name_dropper": (NameDropper, False),
    "pointer_jump": (RandomPointerJump, False),
    "pointer_jump_directed": (RandomPointerJump, True),
    "flooding": (NeighborhoodFlooding, False),
    "faulty_push": (FaultyPushDiscovery, False),
    "faulty_pull": (FaultyPullDiscovery, False),
}


def process_names() -> Sequence[str]:
    """All registered process names."""
    return sorted(PROCESS_REGISTRY)


def make_process(
    name: str,
    graph: GraphLike,
    rng: Union[np.random.Generator, int, None] = None,
    semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    **kwargs,
) -> DiscoveryProcess:
    """Build a process by registry name over ``graph``.

    Raises ``KeyError`` for unknown names and ``TypeError`` when the graph
    kind does not match the process (e.g. an undirected graph passed to
    ``"directed_pull"``).
    """
    try:
        ctor, needs_directed = PROCESS_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown process {name!r}; known: {list(process_names())}") from None
    if needs_directed and not isinstance(graph, DynamicDiGraph):
        raise TypeError(f"process {name!r} requires a DynamicDiGraph")
    if not needs_directed and isinstance(graph, DynamicDiGraph) and name != "pointer_jump_directed":
        # pointer_jump accepts both kinds; all other undirected processes do not.
        if name != "pointer_jump":
            raise TypeError(f"process {name!r} requires an undirected DynamicGraph")
    return ctor(graph, rng=rng, semantics=semantics, **kwargs)


def run_process(
    process: DiscoveryProcess,
    max_rounds: Optional[int] = None,
    callbacks: Sequence[Callable] = (),
    record_history: bool = False,
) -> RunResult:
    """Run ``process`` to convergence with a safety cap (thin wrapper)."""
    return process.run_to_convergence(
        max_rounds=max_rounds, callbacks=callbacks, record_history=record_history
    )


def measure_convergence_rounds(
    name: str,
    graph: GraphLike,
    rng: Union[np.random.Generator, int, None] = None,
    max_rounds: Optional[int] = None,
    semantics: UpdateSemantics = UpdateSemantics.SYNCHRONOUS,
    copy_graph: bool = True,
    **kwargs,
) -> RunResult:
    """Build the named process over (a copy of) ``graph`` and run it to convergence.

    This is the workhorse of every scaling experiment: one call, one
    :class:`RunResult` whose ``rounds`` field is the convergence time.
    """
    work_graph = graph.copy() if copy_graph else graph
    process = make_process(name, work_graph, rng=rng, semantics=semantics, **kwargs)
    return run_process(process, max_rounds=max_rounds)
