"""Result persistence: save and load experiment outputs as JSON or CSV.

Sweeps can take minutes; these helpers let the CLI and the benchmark
harness persist their row tables (lists of flat dicts) and run traces so
analyses can be re-plotted without re-simulating.  Only standard-library
formats are used — JSON for nested payloads, CSV for flat row tables — so
saved results remain readable without this package.

All writers are atomic: content is staged to a temporary file in the
target directory and moved into place with ``os.replace``, so a crash
mid-write leaves either the old file or the new one, never a truncated
hybrid.  ``load_trace`` validates its input and reports truncated or
non-trace JSON explicitly instead of surfacing a bare ``KeyError``.
"""

from __future__ import annotations

import csv
import io as _io
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.simulation.trace import RunTrace

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "save_rows_json",
    "load_rows_json",
    "save_rows_csv",
    "load_rows_csv",
    "save_trace",
    "load_trace",
]

PathLike = Union[str, Path]


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (same-dir temp file + ``os.replace``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return target


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def save_rows_json(
    rows: Sequence[Dict[str, object]],
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Save a row table (list of flat dicts) plus optional metadata as JSON.

    The file layout is ``{"metadata": {...}, "rows": [...]}``; metadata is
    the natural place for the seed, sizes and process name that produced
    the rows.
    """
    payload = {"metadata": dict(metadata or {}), "rows": [dict(r) for r in rows]}
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True, default=str))


def load_rows_json(path: PathLike) -> Dict[str, object]:
    """Load a JSON row table saved by :func:`save_rows_json`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is valid JSON but not a saved row table")
    return payload


def save_rows_csv(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Save a row table as CSV (columns = union of keys, in first-seen order)."""
    if not rows:
        return atomic_write_text(path, "")
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = _io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return atomic_write_text(path, buffer.getvalue())


def load_rows_csv(path: PathLike) -> List[Dict[str, str]]:
    """Load a CSV row table; all values come back as strings."""
    with Path(path).open(newline="") as handle:
        return [dict(row) for row in csv.DictReader(handle)]


def save_trace(
    trace: RunTrace, path: PathLike, metadata: Optional[Dict[str, object]] = None
) -> Path:
    """Save a :class:`RunTrace` (plus metadata) as JSON."""
    payload = {"metadata": dict(metadata or {}), "trace": trace.as_dict()}
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def load_trace(path: PathLike) -> RunTrace:
    """Load a :class:`RunTrace` saved by :func:`save_trace`.

    Raises ``ValueError`` naming the file when the JSON is truncated or
    invalid, or when it parses but lacks the ``"trace"`` payload — both
    symptoms of an interrupted or foreign write.
    """
    source = Path(path)
    try:
        payload = json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{source} does not contain valid JSON (truncated or corrupt "
            f"write?): {exc}"
        ) from exc
    if not isinstance(payload, dict) or "trace" not in payload:
        raise ValueError(
            f"{source} is valid JSON but not a saved trace (no 'trace' key)"
        )
    data = payload["trace"]
    if not isinstance(data, dict):
        raise ValueError(f"{source} has a non-object 'trace' payload")
    trace = RunTrace(
        rounds=list(data.get("rounds", [])),
        num_edges=list(data.get("num_edges", [])),
        edges_added=list(data.get("edges_added", [])),
        min_degree=list(data.get("min_degree", [])),
    )
    known = {"rounds", "num_edges", "edges_added", "min_degree"}
    for key, values in data.items():
        if key not in known:
            trace.custom[key] = list(values)
    return trace
