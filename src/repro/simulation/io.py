"""Result persistence: save and load experiment outputs as JSON or CSV.

Sweeps can take minutes; these helpers let the CLI and the benchmark
harness persist their row tables (lists of flat dicts) and run traces so
analyses can be re-plotted without re-simulating.  Only standard-library
formats are used — JSON for nested payloads, CSV for flat row tables — so
saved results remain readable without this package.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.simulation.trace import RunTrace

__all__ = [
    "save_rows_json",
    "load_rows_json",
    "save_rows_csv",
    "load_rows_csv",
    "save_trace",
    "load_trace",
]

PathLike = Union[str, Path]


def _ensure_parent(path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)


def save_rows_json(rows: Sequence[Dict[str, object]], path: PathLike, metadata: Optional[Dict] = None) -> Path:
    """Save a row table (list of flat dicts) plus optional metadata as JSON.

    The file layout is ``{"metadata": {...}, "rows": [...]}``; metadata is
    the natural place for the seed, sizes and process name that produced
    the rows.
    """
    target = Path(path)
    _ensure_parent(target)
    payload = {"metadata": dict(metadata or {}), "rows": [dict(r) for r in rows]}
    target.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return target


def load_rows_json(path: PathLike) -> Dict[str, object]:
    """Load a JSON row table saved by :func:`save_rows_json`."""
    return json.loads(Path(path).read_text())


def save_rows_csv(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Save a row table as CSV (columns = union of keys, in first-seen order)."""
    target = Path(path)
    _ensure_parent(target)
    if not rows:
        target.write_text("")
        return target
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return target


def load_rows_csv(path: PathLike) -> List[Dict[str, str]]:
    """Load a CSV row table; all values come back as strings."""
    with Path(path).open(newline="") as handle:
        return [dict(row) for row in csv.DictReader(handle)]


def save_trace(trace: RunTrace, path: PathLike, metadata: Optional[Dict] = None) -> Path:
    """Save a :class:`RunTrace` (plus metadata) as JSON."""
    target = Path(path)
    _ensure_parent(target)
    payload = {"metadata": dict(metadata or {}), "trace": trace.as_dict()}
    target.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return target


def load_trace(path: PathLike) -> RunTrace:
    """Load a :class:`RunTrace` saved by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    data = payload["trace"]
    trace = RunTrace(
        rounds=list(data.get("rounds", [])),
        num_edges=list(data.get("num_edges", [])),
        edges_added=list(data.get("edges_added", [])),
        min_degree=list(data.get("min_degree", [])),
    )
    known = {"rounds", "num_edges", "edges_added", "min_degree"}
    for key, values in data.items():
        if key not in known:
            trace.custom[key] = list(values)
    return trace
