"""The theoretical bound curves from the paper's theorems.

Each function maps a graph size ``n`` (or ``(n, k)`` for the missing-edge
lower bounds) to the value of the corresponding asymptotic expression,
with natural logarithms and unit constants.  They are only ever used in
ratio checks (measured / bound), so the constant in front is irrelevant.
"""

from __future__ import annotations

import math

__all__ = [
    "n_log_n",
    "n_log2_n",
    "n_log_k",
    "n_squared",
    "n_squared_log_n",
    "log_n",
    "log2_n",
    "BOUND_REGISTRY",
]


def log_n(n: float) -> float:
    """``ln n`` (guarded below by ``ln 2`` so ratios stay finite for tiny n)."""
    return max(math.log(n), math.log(2.0))


def log2_n(n: float) -> float:
    """``(ln n)²``."""
    return log_n(n) ** 2


def n_log_n(n: float) -> float:
    """The Ω(n log n) undirected lower-bound curve."""
    return n * log_n(n)


def n_log2_n(n: float) -> float:
    """The O(n log² n) undirected upper-bound curve (Theorems 8 and 12)."""
    return n * log2_n(n)


def n_log_k(n: float, k: float) -> float:
    """The Ω(n log k) lower-bound curve with ``k`` missing edges (Theorems 9 and 13)."""
    return n * max(math.log(max(k, 2.0)), math.log(2.0))


def n_squared(n: float) -> float:
    """The Ω(n²) strongly-connected directed lower-bound curve (Theorem 15)."""
    return n * n


def n_squared_log_n(n: float) -> float:
    """The O(n² log n) directed upper-bound curve (Theorem 14)."""
    return n * n * log_n(n)


#: name -> single-argument bound function (the two-argument n_log_k is excluded).
BOUND_REGISTRY = {
    "n_log_n": n_log_n,
    "n_log2_n": n_log2_n,
    "n_squared": n_squared,
    "n_squared_log_n": n_squared_log_n,
    "log_n": log_n,
    "log2_n": log2_n,
}
