"""Sharded round execution over row-partitioned packed membership rows.

The array backend executes a whole round as bulk NumPy work; this module
splits that work across **contiguous node-row shards** so large-``n``
sweeps can use several cores.  The design is the row-partitioned fan-out
of the PRAM/MPC round-compression literature, specialised to the packed
bitset substrate:

1. **Partition.**  :class:`ShardPlan` cuts the node rows ``0 .. n-1`` into
   ``k`` contiguous, near-equal ranges.  A shard owns the *proposals* (or,
   for the payload processes, the *received deliveries*) of its rows; the
   round-start graph state is shared read-only by every shard.
2. **Propose per shard.**  Each shard runs its propose phase
   independently: one bulk draw per shard (see the RNG convention below)
   plus the same index math as the unsharded vectorized kernels, over the
   shared padded (out-)neighbour rows and packed membership rows.
3. **OR-merge.**  Shards report packed membership deltas — proposal
   endpoint arrays for the gossip processes (push, pull and the directed
   two-hop walk), a packed block of delta rows for the payload baselines
   (flooding, Name Dropper, pointer jump) — which the coordinator
   accumulates in a :class:`repro.graphs.bitset.DeltaRows`
   (``or_into_range`` for row blocks).  New edges are extracted in
   canonical row-major order and applied through the graph's batched
   insert, so the application order never depends on the shard count.

The whole registry is shardable: the directed walk's two hops are pull's
two-hop index math over the out-neighbour rows, and the Name Dropper /
pointer-jump payload rounds OR-merge through the same
``or_into_range``/``DeltaRows`` kernels flooding's deliveries do (Name
Dropper partitions by *recipient* — every shard derives the identical
full-round target draw and keeps the deliveries landing in its own row
range; pointer jump partitions by *puller*, whose learned row is its own).

Execution is in-process by default; for large ``n`` (or on request) the
shards run on a :class:`concurrent.futures.ProcessPoolExecutor`, with the
round-start arrays (neighbour rows, degrees, packed membership) published
through :mod:`multiprocessing.shared_memory` so workers never pickle the
O(n²) state.

The pool path is crash-tolerant: worker death
(:class:`~concurrent.futures.process.BrokenProcessPool`) discards the
broken pool and **retries the round** on a fresh one with capped
exponential backoff — safe because the round's uniforms derive from
``(entropy, round_index)``, not from pool state, so a retried round is
draw-for-draw identical to the attempt that died.  After ``retries``
failed attempts within a round the process degrades permanently to
in-process sharded execution (identical semantics, no pool).  Every
failure path — retry, degradation, or a propagating worker exception —
releases the published shared-memory blocks, so no segment outlives the
round that created it.

Per-shard RNG convention (the trace contract)
---------------------------------------------
``shards=1`` never enters this module's round path: it delegates straight
to the wrapped process, so it is draw-for-draw identical to the unsharded
array backend (the golden traces pass unmodified).

For ``shards >= 2`` every round derives one child stream from the trial's
:class:`numpy.random.SeedSequence` — ``SeedSequence(entropy,
spawn_key=(round_index,))`` — and each shard instantiates its own copy of
that child generator, draws the round's full logical ``(stages, n)``
uniform array, and consumes the row slice it owns.  Redrawing the whole
array per shard costs O(n) (trivial next to the shard's row-union work)
and buys the two properties the tests pin:

* **determinism** — a fixed ``(seed, shard count)`` always produces the
  same trajectory, regardless of worker scheduling;
* **shard-count invariance** — the per-node uniforms do not depend on
  where the shard boundaries fall, so for push/pull (and trivially for
  the deterministic flooding) the edge trajectory is *identical* for any
  ``shards >= 2``.

The sharded stream is intentionally distinct from the unsharded one
(which consumes the process's own generator sequentially); sharding is a
scaling mode, not a replay mode, and the contract is the three-way one
above, exactly as pinned by ``tests/test_sharding.py``.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines._packed import concat_rows, packed_rows
from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.base import BatchProposals, DiscoveryProcess, RoundResult
from repro.core.base import UpdateSemantics
from repro.core.directed import DirectedTwoHopWalk
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.graphs import bitset
from repro.graphs.array_adjacency import backend_name
from repro.graphs.sampling import masked_counts, uniform_indices

__all__ = [
    "ShardPlan",
    "ShardedProcess",
    "SHARDABLE_PROCESSES",
    "SHARD_KINDS",
    "UNSHARDABLE_PROCESSES",
    "DEFAULT_PARALLEL_THRESHOLD",
    "DEFAULT_SHARD_RETRIES",
]

logger = logging.getLogger(__name__)

#: process classes with a registered sharded propose kernel (exact types —
#: subclasses may customise ``propose`` and must opt in explicitly).  This
#: covers the whole process registry: the gossip processes merge sparse
#: proposal endpoints, the payload baselines merge packed delta-row blocks.
SHARDABLE_PROCESSES: Dict[type, str] = {
    PushDiscovery: "push",
    PullDiscovery: "pull",
    DirectedTwoHopWalk: "directed_walk",
    NeighborhoodFlooding: "flooding",
    NameDropper: "name_dropper",
    RandomPointerJump: "pointer_jump",
}

#: kinds whose shards report packed delta-row blocks (OR-merged through
#: ``DeltaRows.or_into_range``); the rest report proposal endpoint arrays.
_ROWBLOCK_KINDS = frozenset({"flooding", "name_dropper", "pointer_jump"})

#: every kernel kind ``_run_kernel`` implements.  The repro-lint
#: registry-consistency checker verifies ``SHARDABLE_PROCESSES`` maps only
#: into this set, so a typo'd kind fails lint instead of raising mid-run.
SHARD_KINDS = frozenset({"push", "pull", "directed_walk"}) | _ROWBLOCK_KINDS

#: registry names exempt from the "every process is shardable" invariant.
#: The faulty variants draw per-call fault decisions inside ``propose``;
#: the shard kernels replay only the bulk per-round uniform convention, so
#: sharding them would change the draw sequence.  Listing them here is the
#: documented opt-out the registry-consistency checker accepts.
UNSHARDABLE_PROCESSES = frozenset({"faulty_push", "faulty_pull"})

#: below this n the per-round process-pool round-trip costs more than the
#: round itself; the auto mode stays in-process.
DEFAULT_PARALLEL_THRESHOLD = 2048

#: pool-death retries per round before degrading to in-process execution
DEFAULT_SHARD_RETRIES = 3

#: backoff after the k-th pool failure is BASE * 2**(k-1), capped
_BACKOFF_BASE_SECONDS = 0.05
_BACKOFF_CAP_SECONDS = 2.0

#: uniform stages per round for the RNG-driven kernels (two hops / two
#: endpoints; the single-draw payload rounds consume stage 0 only, which
#: keeps the logical round array one fixed shape for every kind).
_STAGES = 2


class ShardPlan:
    """Contiguous near-equal partition of the node rows ``0 .. n-1``.

    ``shards`` is clamped to ``n`` (a shard must own at least one row);
    the effective count is exposed as :attr:`shards`.
    """

    __slots__ = ("n", "shards", "bounds")

    def __init__(self, n: int, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        self.n = int(n)
        self.shards = max(1, min(int(shards), self.n)) if self.n else 1
        edges = [(i * self.n) // self.shards for i in range(self.shards + 1)]
        self.bounds: List[Tuple[int, int]] = list(zip(edges[:-1], edges[1:]))

    def __repr__(self) -> str:
        return f"ShardPlan(n={self.n}, shards={self.shards})"


# --------------------------------------------------------------------------- #
# per-shard kernels (pure functions: shareable arrays in, fresh arrays out)
# --------------------------------------------------------------------------- #
def _gather(block: np.ndarray, rowsel: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """``block[rowsel[i], idx[i]]`` with ``-1`` passthrough for ``idx < 0``."""
    gathered = block[rowsel, np.maximum(idx, 0)]
    return np.where(idx >= 0, gathered, -1)


def _push_shard(
    nbr: np.ndarray,
    deg: np.ndarray,
    lo: int,
    hi: int,
    u1: np.ndarray,
    u2: np.ndarray,
    without_replacement: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Push proposals of rows ``[lo, hi)`` — the sliced form of the unsharded kernel."""
    counts = deg[lo:hi]
    block = nbr[lo:hi]
    rowsel = np.arange(hi - lo, dtype=np.int64)
    if without_replacement:
        i = uniform_indices(u1, counts)
        j = uniform_indices(u2, counts - 1)
        j = np.where(j >= i, j + 1, j)
        vs = _gather(block, rowsel, i)
        ws = _gather(block, rowsel, np.where(counts >= 2, j, -1))
        valid = counts >= 2
    else:
        vs = _gather(block, rowsel, uniform_indices(u1, counts))
        ws = _gather(block, rowsel, uniform_indices(u2, counts))
        valid = (vs >= 0) & (vs != ws)
    pos = np.flatnonzero(valid)
    return vs[pos], ws[pos], pos + lo


def _pull_shard(
    nbr: np.ndarray,
    deg: np.ndarray,
    lo: int,
    hi: int,
    u1: np.ndarray,
    u2: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pull proposals of rows ``[lo, hi)``: both hops over the shared rows."""
    nodes = np.arange(lo, hi, dtype=np.int64)
    rowsel = np.arange(hi - lo, dtype=np.int64)
    vs = _gather(nbr[lo:hi], rowsel, uniform_indices(u1, deg[lo:hi]))
    safe, counts2 = masked_counts(vs, deg)
    ws = _gather(nbr, safe, uniform_indices(u2, counts2))
    valid = (vs >= 0) & (ws >= 0) & (ws != nodes)
    pos = np.flatnonzero(valid)
    return nodes[pos], ws[pos], pos + lo


def _flooding_shard(
    nbr: np.ndarray, deg: np.ndarray, bits: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Packed delta rows ``[lo, hi)`` of one flooding round (receiver-partitioned).

    Row ``v`` of the result holds the bits ``v`` newly learns this round:
    the OR of its neighbours' round-start rows, minus the diagonal and the
    bits it already had.  Flooding has every node send, so partitioning by
    receiver keeps each shard's output confined to its own row range.
    """
    merged = bits[lo:hi].copy()
    local = np.flatnonzero(deg[lo:hi] > 0)
    if local.size:
        receivers = local + lo
        senders = concat_rows(nbr, deg, receivers)
        bitset.rows_or_into(merged, np.repeat(local, deg[receivers]), bits, senders)
    rowsel = np.arange(hi - lo, dtype=np.int64)
    bitset.clear_bits(merged, rowsel, rowsel + lo)
    np.bitwise_and(merged, ~bits[lo:hi], out=merged)
    return merged


def _bulk_target_draw(nbr: np.ndarray, deg: np.ndarray, u_row: np.ndarray) -> np.ndarray:
    """Full-round uniform (out-)neighbour targets from one logical uniform row.

    The sharded form of ``random_neighbors(arange(n))``: ``-1`` marks nodes
    with no (out-)neighbours.  Shard-count invariant by construction — the
    uniforms come from the shared logical round array.
    """
    nodes = np.arange(deg.shape[0], dtype=np.int64)
    return _gather(nbr, nodes, uniform_indices(u_row, deg))


def _name_dropper_shard(
    nbr: np.ndarray, deg: np.ndarray, bits: np.ndarray, lo: int, hi: int, u_row: np.ndarray
) -> np.ndarray:
    """Packed delta rows ``[lo, hi)`` of one Name Dropper round (recipient-partitioned).

    Every shard derives the identical full-round target draw from the
    shared logical uniforms and keeps only the deliveries landing in its
    own row range: recipient ``v``'s delta is the OR of its senders'
    round-start rows plus the senders' own ID bits ("every ID I know, then
    my own"), minus ``v``'s own bit and the bits it already had.
    """
    targets = _bulk_target_draw(nbr, deg, u_row)
    send = np.flatnonzero((targets >= lo) & (targets < hi))
    merged = np.zeros((hi - lo, bits.shape[1]), dtype=np.uint64)
    if send.size:
        recipients = targets[send] - lo
        bitset.rows_or_into(merged, recipients, bits, send)
        bitset.set_bits(merged, recipients, send)
    rowsel = np.arange(hi - lo, dtype=np.int64)
    bitset.clear_bits(merged, rowsel, rowsel + lo)
    np.bitwise_and(merged, ~bits[lo:hi], out=merged)
    return merged


def _pointer_jump_shard(
    nbr: np.ndarray, deg: np.ndarray, bits: np.ndarray, lo: int, hi: int, u_slice: np.ndarray
) -> np.ndarray:
    """Packed delta rows ``[lo, hi)`` of one pointer-jump round (puller-partitioned).

    Each puller ``u`` in the shard's range learns its chosen neighbour's
    entire round-start (out-)row, so the learned rows stay confined to the
    shard's own range — the same shape as flooding's receiver partition.
    """
    rowsel = np.arange(hi - lo, dtype=np.int64)
    vs = _gather(nbr[lo:hi], rowsel, uniform_indices(u_slice, deg[lo:hi]))
    ok = np.flatnonzero(vs >= 0)
    merged = np.zeros((hi - lo, bits.shape[1]), dtype=np.uint64)
    if ok.size:
        bitset.rows_or_into(merged, ok, bits, vs[ok])
    bitset.clear_bits(merged, rowsel, rowsel + lo)
    np.bitwise_and(merged, ~bits[lo:hi], out=merged)
    return merged


def _run_kernel(
    kind: str,
    nbr: np.ndarray,
    deg: np.ndarray,
    bits: Optional[np.ndarray],
    lo: int,
    hi: int,
    u: Optional[np.ndarray],
    without_replacement: bool = False,
):
    """Dispatch one shard of one round to its kind's kernel.

    Shared by the in-process loop and the pool worker so the two execution
    paths can never drift apart.
    """
    if kind == "flooding":
        return _flooding_shard(nbr, deg, bits, lo, hi)
    if kind == "push":
        return _push_shard(nbr, deg, lo, hi, u[0, lo:hi], u[1, lo:hi], without_replacement)
    if kind in ("pull", "directed_walk"):
        # The directed two-hop walk is pull's two-hop index math over the
        # shared out-neighbour rows (the round state already carries them).
        return _pull_shard(nbr, deg, lo, hi, u[0, lo:hi], u[1, lo:hi])
    if kind == "name_dropper":
        return _name_dropper_shard(nbr, deg, bits, lo, hi, u[0])
    if kind == "pointer_jump":
        return _pointer_jump_shard(nbr, deg, bits, lo, hi, u[0, lo:hi])
    raise ValueError(f"unknown shard kind {kind!r}")


def _round_uniforms(entropy: int, round_index: int, n: int) -> np.ndarray:
    """The round's full logical ``(stages, n)`` uniform array.

    Every shard of a round derives the identical child stream —
    ``SeedSequence(entropy, spawn_key=(round_index,))`` — so the per-node
    uniforms are independent of the shard boundaries (the shard-count
    invariance half of the trace contract).
    """
    ss = np.random.SeedSequence(entropy, spawn_key=(round_index,))
    return np.random.default_rng(ss).random((_STAGES, n))


# --------------------------------------------------------------------------- #
# the multiprocess worker (module-level so it crosses a spawn boundary)
# --------------------------------------------------------------------------- #
def _attach(spec: Tuple[str, tuple, str], refs: list) -> np.ndarray:
    """Map a ``(shm_name, shape, dtype)`` spec to a live array view."""
    name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    refs.append(shm)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


def _shard_task(payload: dict):
    """Run one shard of one round against the shared round-start arrays.

    Returns fresh (non-shared) arrays only, because the shared-memory
    views are closed before the result is pickled back.
    """
    directive = payload.get("fault")
    if directive is not None:
        # Executed before any shared memory is attached, so an injected
        # "exit" death leaves no worker-side references behind.
        from repro.network.failures import FaultInjector

        FaultInjector.execute(
            directive, f"shard {payload['shard']} of round {payload['round_index']}"
        )
    refs: list = []
    try:
        nbr = _attach(payload["nbr"], refs)
        deg = _attach(payload["deg"], refs)
        bits = _attach(payload["bits"], refs) if "bits" in payload else None
        kind = payload["kind"]
        u = None
        if kind != "flooding":
            u = _round_uniforms(payload["entropy"], payload["round_index"], payload["n"])
        return _run_kernel(
            kind,
            nbr,
            deg,
            bits,
            payload["lo"],
            payload["hi"],
            u,
            payload.get("without_replacement", False),
        )
    finally:
        for shm in refs:
            shm.close()


class _SharedBlock:
    """One shared-memory array slot, re-created when the source shape grows."""

    __slots__ = ("shm", "shape", "dtype")

    def __init__(self) -> None:
        self.shm: Optional[shared_memory.SharedMemory] = None
        self.shape: Optional[tuple] = None
        self.dtype: Optional[np.dtype] = None

    def publish(self, array: np.ndarray) -> Tuple[str, tuple, str]:
        """Copy ``array`` into the slot; return the worker-side spec."""
        if self.shm is None or self.shape != array.shape or self.dtype != array.dtype:
            self.release()
            self.shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
            self.shape = array.shape
            self.dtype = array.dtype
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self.shm.buf)
        np.copyto(view, array)
        return self.shm.name, array.shape, array.dtype.str

    def release(self) -> None:
        """Close and unlink the segment; never silent — failures are logged.

        Unlink is the step that actually frees the kernel object; when it
        fails for any reason other than "already gone", the segment name
        is logged so a leak is attributable instead of invisible.
        """
        if self.shm is None:
            return
        name = self.shm.name
        try:
            self.shm.close()
        except OSError as exc:  # pragma: no cover - close failure is exotic
            logger.warning("closing shared-memory segment %s failed: %s", name, exc)
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        except OSError as exc:  # pragma: no cover - unlink failure is exotic
            logger.warning(
                "unlinking shared-memory segment %s failed: %s (segment may leak)",
                name,
                exc,
            )
        finally:
            self.shm = None
            self.shape = None
            self.dtype = None


class ShardedProcess:
    """Run a supported process with its rounds executed shard by shard.

    Parameters
    ----------
    process:
        Any registered process — push, pull, the directed two-hop walk,
        Name Dropper, Random Pointer Jump (undirected or directed) or
        neighbourhood flooding (see :data:`SHARDABLE_PROCESSES`) — on the
        **array backend** with synchronous semantics and default (full)
        activation.  The wrapper mutates the process's graph and counters,
        so the wrapped instance stays the single source of truth for
        convergence and metrics (including the directed processes'
        closure-deficit tracking, fed through their ``_absorb_added``
        hooks).
    shards:
        Requested shard count (clamped to ``n``).  ``shards=1`` delegates
        every ``step()`` straight to the process — draw-for-draw identical
        to the unsharded array backend.
    seed:
        Entropy for the per-round shard streams: an ``int``, a
        :class:`numpy.random.SeedSequence` (e.g. the trial's), or ``None``
        to derive it deterministically from the process's own generator.
        Ignored when ``shards=1``.
    parallel:
        ``True`` — run shards on a process pool over shared memory;
        ``False`` — run shards in-process (still sharded semantics);
        ``None`` — auto: use the pool when ``n >= parallel_threshold``.
    parallel_threshold:
        The auto-mode cutover size (default
        :data:`DEFAULT_PARALLEL_THRESHOLD`).
    retries:
        Worker-pool deaths tolerated per round before degrading
        permanently to in-process sharded execution (default
        :data:`DEFAULT_SHARD_RETRIES`).  Retries are draw-for-draw safe:
        the round's uniforms derive from ``(entropy, round_index)``.
    fault_injector:
        Test hook: a :class:`repro.network.failures.FaultInjector` whose
        scheduled ``(round, shard)`` faults fire inside pool workers.
    """

    def __init__(
        self,
        process: DiscoveryProcess,
        shards: int,
        seed: Union[int, np.random.SeedSequence, None] = None,
        parallel: Optional[bool] = None,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        retries: int = DEFAULT_SHARD_RETRIES,
        fault_injector=None,
    ) -> None:
        kind = SHARDABLE_PROCESSES.get(type(process))
        if kind is None:
            supported = sorted(cls.__name__ for cls in SHARDABLE_PROCESSES)
            raise ValueError(
                f"{type(process).__name__} has no sharded round kernel; "
                f"shardable processes: {supported}"
            )
        if backend_name(process.graph) != "array":
            raise ValueError("sharded execution requires the array graph backend")
        if process.semantics is not UpdateSemantics.SYNCHRONOUS:
            raise ValueError("sharded execution requires synchronous semantics")
        if "propose" in process.__dict__ or "participating_nodes" in process.__dict__:
            raise ValueError(
                "sharded execution assumes the process's default propose rule and "
                "full activation; wrap with ScheduledProcess/ChurnModel instead of sharding"
            )
        self.process = process
        self.kind = kind
        self._directed = bool(getattr(process.graph, "directed", False))
        self.plan = ShardPlan(process.graph.n, shards)
        self.shards = self.plan.shards
        if self.shards > 1:
            if isinstance(seed, np.random.SeedSequence):
                self._entropy = int(seed.generate_state(1, np.uint64)[0])
            elif seed is not None:
                self._entropy = int(seed)
            else:
                # Deterministic given the process's seed, and drawn exactly
                # once regardless of the shard count (so it cannot break
                # cross-shard-count equivalence).
                self._entropy = int(process.rng.integers(np.iinfo(np.int64).max))
        else:
            self._entropy = 0
        if parallel is None:
            # Auto mode: pool only when the rounds are big enough to amortise
            # the round-trip, and never from inside a daemonic worker (the
            # trial runner's own fan-out), which may not spawn children.
            parallel = (
                self.shards > 1
                and process.graph.n >= parallel_threshold
                and not multiprocessing.current_process().daemon
            )
        self._parallel = bool(parallel) and self.shards > 1
        self._pool: Optional[ProcessPoolExecutor] = None
        self._blocks: Dict[str, _SharedBlock] = {}
        self._retries = int(retries)
        self._fault_injector = fault_injector
        #: cumulative worker-pool deaths survived (observability/tests)
        self.pool_failures = 0

    # ------------------------------------------------------------------ #
    # the sharded round
    # ------------------------------------------------------------------ #
    def step(self) -> RoundResult:
        """Execute one round: propose per shard, OR-merge, apply once."""
        if self.shards == 1:
            return self.process.step()
        # One logical draw per round, shared by the in-process kernels and
        # the accounting (pool workers regenerate it from the entropy —
        # cheaper than shipping it across the process boundary).
        u = None
        if self.kind != "flooding":
            u = _round_uniforms(self._entropy, self.process.round_index, self.plan.n)
        shard_results = self._run_shards(u)
        if self.kind in _ROWBLOCK_KINDS:
            return self._merge_rowblocks(shard_results, u)
        return self._merge_proposals(shard_results)

    def _round_state(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared round-start arrays: padded (out-)neighbour rows, degrees, bits."""
        state = packed_rows(self.process.graph)
        assert state is not None  # guaranteed by the array-backend gate
        return state

    def _run_shards(self, u: Optional[np.ndarray]) -> List:
        attempts = 0
        while self._parallel:
            try:
                return self._run_shards_parallel()
            except BrokenProcessPool:
                # Worker death (crash, OOM kill, injected fault).  Discard
                # the broken pool and retry the round — the uniforms derive
                # from (entropy, round_index), so the retry replays the dead
                # attempt draw-for-draw.
                self._discard_pool()
                self.pool_failures += 1
                attempts += 1
                if attempts > self._retries:
                    logger.warning(
                        "shard pool died %d times in round %d; degrading to "
                        "in-process sharded execution",
                        attempts,
                        self.process.round_index,
                    )
                    self._release_blocks()
                    self._parallel = False
                    break
                logger.warning(
                    "shard pool died in round %d (attempt %d/%d); rebuilding",
                    self.process.round_index,
                    attempts,
                    self._retries + 1,
                )
                time.sleep(
                    min(
                        _BACKOFF_BASE_SECONDS * (2 ** (attempts - 1)),
                        _BACKOFF_CAP_SECONDS,
                    )
                )
            except BaseException:
                # A deterministic worker exception (not worker death) must
                # propagate — but never with live shared-memory segments.
                # BaseException on purpose: KeyboardInterrupt mid-round must
                # also release the segments or they leak past process exit.
                logger.error(
                    "shard round %d failed with a non-pool error; releasing "
                    "shared memory and re-raising",
                    self.process.round_index,
                )
                self.close()
                raise
        nbr, deg, bits = self._round_state()
        wor = bool(getattr(self.process, "without_replacement", False))
        return [
            _run_kernel(self.kind, nbr, deg, bits, lo, hi, u, wor)
            for lo, hi in self.plan.bounds
        ]

    def _run_shards_parallel(self) -> List:
        nbr, deg, bits = self._round_state()
        base = {
            "kind": self.kind,
            "n": self.plan.n,
            "entropy": self._entropy,
            "round_index": self.process.round_index,
            "nbr": self._publish("nbr", nbr),
            "deg": self._publish("deg", deg),
        }
        if self.kind in _ROWBLOCK_KINDS:
            # The payload kernels OR whole membership rows, so the packed
            # matrix crosses the process boundary through shared memory too.
            base["bits"] = self._publish("bits", bits)
        else:
            base["without_replacement"] = bool(
                getattr(self.process, "without_replacement", False)
            )
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.shards)
        futures = []
        for shard, (lo, hi) in enumerate(self.plan.bounds):
            payload = {**base, "lo": lo, "hi": hi, "shard": shard}
            if self._fault_injector is not None:
                directive = self._fault_injector.take_shard_round(
                    self.process.round_index, shard
                )
                if directive is not None:
                    payload["fault"] = directive
            futures.append(self._pool.submit(_shard_task, payload))
        return [f.result() for f in futures]

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool without waiting on dead workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _release_blocks(self) -> None:
        for block in self._blocks.values():
            block.release()
        self._blocks.clear()

    def _publish(self, key: str, array: np.ndarray) -> Tuple[str, tuple, str]:
        block = self._blocks.setdefault(key, _SharedBlock())
        return block.publish(np.ascontiguousarray(array))

    def _merge_proposals(self, shard_results: Sequence[tuple]) -> RoundResult:
        """Merge the shards' proposal endpoints and apply them once.

        The sparse form of the delta-row OR-merge: a gossip round proposes
        O(n) edges, so instead of accumulating an n×n delta matrix the
        proposals are canonicalised (``min < max`` for undirected edges,
        orientation preserved for the directed walk), filtered against the
        packed membership rows, and deduped by sorted key — which is
        exactly the canonical row-major order
        :meth:`bitset.DeltaRows.new_edges` would report, so the application
        order stays shard-count invariant.
        """
        process = self.process
        graph = process.graph
        n = graph.n
        result = RoundResult(round_index=process.round_index)
        us = np.concatenate([r[0] for r in shard_results])
        vs = np.concatenate([r[1] for r in shard_results])
        result.attach_batch(
            BatchProposals(n, us, vs, np.concatenate([r[2] for r in shard_results]))
        )
        if self._directed:
            low, high = us, vs
        else:
            low = np.minimum(us, vs)
            high = np.maximum(us, vs)
        keep = low != high
        low, high = low[keep], high[keep]
        fresh = ~bitset.get_bits(graph.adjacency_bits(), low, high)
        keys = np.unique(low[fresh] * np.int64(n) + high[fresh])
        result.added_edges = graph.add_edges_batch_arrays(keys // n, keys % n)
        result.messages_sent = process.MESSAGES_PER_NODE * n
        result.bits_sent = result.messages_sent * process._id_bits
        return self._finish_round(result)

    def _merge_rowblocks(
        self, shard_results: Sequence[np.ndarray], u: Optional[np.ndarray]
    ) -> RoundResult:
        """Row-range OR-merge of the shards' packed delta blocks.

        Flooding's deltas are symmetric (both endpoints of a new edge
        receive the same sender's row), so its new edges extract once per
        undirected pair.  The Name Dropper / pointer-jump deliveries are
        one-sided — only the learner's row gains the bit — so their new
        edges are extracted bit by bit in row-major order and the graph's
        batched insert canonicalises cross-orientation duplicates.  Either
        way the merged delta matrix never depends on where the shard
        boundaries fall, so the applied edge order is shard-count
        invariant.
        """
        process = self.process
        graph = process.graph
        n = graph.n
        result = RoundResult(round_index=process.round_index)
        bits = graph.adjacency_bits()
        delta = bitset.DeltaRows(n, n)
        for (lo, _hi), block in zip(self.plan.bounds, shard_results):
            delta.or_into_range(lo, block)
        add_us, add_vs = delta.new_edges(bits, directed=self.kind != "flooding")
        self._account_rowblocks(result, u)
        result.added_edges = graph.add_edges_batch_arrays(add_us, add_vs)
        return self._finish_round(result)

    def _account_rowblocks(self, result: RoundResult, u: Optional[np.ndarray]) -> None:
        """Round message/bit accounting for the payload kinds (round-start state)."""
        process = self.process
        nbr, deg, _bits = self._round_state()
        if self.kind == "flooding":
            # Every node sends its (deg+1)-ID knowledge set to every neighbour.
            result.messages_sent = int(deg.sum())
            result.bits_sent = int((deg * (deg + 1)).sum()) * process._id_bits
        elif self.kind == "name_dropper":
            senders = deg > 0
            result.messages_sent = int(senders.sum())
            result.bits_sent = int((deg[senders] + 1).sum()) * process._id_bits
        else:  # pointer_jump: the reply size is the *chosen* neighbour's degree
            targets = _bulk_target_draw(nbr, deg, u[0])
            chosen = targets[targets >= 0]
            result.messages_sent = 2 * int(chosen.size)  # request + bulk reply each
            result.bits_sent = int((1 + deg[chosen]).sum()) * process._id_bits

    def _finish_round(self, result: RoundResult) -> RoundResult:
        """Advance the wrapped process's counters exactly like its own step()."""
        process = self.process
        # Processes with closure-deficit bookkeeping (the directed walk,
        # pointer jump) fold the round's new edges into it here — the same
        # hook their own batched rounds use.
        absorb = getattr(process, "_absorb_added", None)
        if absorb is not None:
            absorb(result.added_edges)
        process._note_added_edges(result.added_edges)
        process.round_index += 1
        process.total_edges_added += result.num_added
        process.total_messages += result.messages_sent
        process.total_bits += result.bits_sent
        return result

    # ------------------------------------------------------------------ #
    # the run loop (reuses the engine's, driven by our step())
    # ------------------------------------------------------------------ #
    run = DiscoveryProcess.run
    run_to_convergence = DiscoveryProcess.run_to_convergence

    def is_converged(self) -> bool:
        """Delegate to the wrapped process."""
        return self.process.is_converged()

    def default_round_cap(self) -> int:
        """Delegate to the wrapped process's cap (process-specific bounds)."""
        return self.process.default_round_cap()

    def degree_view(self):
        """The wrapped process's incremental degree cache (for recorders)."""
        return self.process.degree_view()

    def cached_min_degree(self) -> int:
        """The wrapped process's incremental minimum degree."""
        return self.process.cached_min_degree()

    # ------------------------------------------------------------------ #
    # pass-through state (the wrapped process owns every counter)
    # ------------------------------------------------------------------ #
    @property
    def graph(self):
        """The wrapped process's graph."""
        return self.process.graph

    @property
    def rng(self) -> np.random.Generator:
        """The wrapped process's generator (unused by multi-shard rounds)."""
        return self.process.rng

    @property
    def backend(self) -> str:
        """The wrapped process's graph backend name (always ``"array"``)."""
        return self.process.backend

    @property
    def semantics(self) -> UpdateSemantics:
        """The wrapped process's update semantics."""
        return self.process.semantics

    @property
    def round_index(self) -> int:
        return self.process.round_index

    @round_index.setter
    def round_index(self, value: int) -> None:
        self.process.round_index = value

    @property
    def total_edges_added(self) -> int:
        return self.process.total_edges_added

    @total_edges_added.setter
    def total_edges_added(self, value: int) -> None:
        self.process.total_edges_added = value

    @property
    def total_messages(self) -> int:
        return self.process.total_messages

    @total_messages.setter
    def total_messages(self, value: int) -> None:
        self.process.total_messages = value

    @property
    def total_bits(self) -> int:
        return self.process.total_bits

    @total_bits.setter
    def total_bits(self, value: int) -> None:
        self.process.total_bits = value

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker pool down and release the shared-memory blocks.

        Block release runs even when the pool shutdown raises: the
        segments are the resource the kernel will not reclaim on its own.
        """
        try:
            # getattr: close() must work on a partially-constructed instance
            # (the constructor validates before creating these slots).
            pool = getattr(self, "_pool", None)
            if pool is not None:
                pool.shutdown(wait=True)
                self._pool = None
        finally:
            if getattr(self, "_blocks", None) is not None:
                self._release_blocks()

    def __enter__(self) -> "ShardedProcess":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception as exc:
            # Finalizer context: never raise, but never hide a failed
            # cleanup either — a leaked segment must be attributable.
            try:
                logger.warning(
                    "ShardedProcess finalizer cleanup failed (%s); a "
                    "shared-memory segment may have leaked",
                    exc,
                )
            # Interpreter-exit finalizer: the logging machinery itself may be
            # torn down, and raising from __del__ is worse than silence.
            except Exception:  # repro-lint: allow[exception-hygiene]
                pass

    def __repr__(self) -> str:
        mode = "process-pool" if self._parallel else "in-process"
        return (
            f"ShardedProcess({type(self.process).__name__}, n={self.process.graph.n}, "
            f"shards={self.shards}, {mode})"
        )
