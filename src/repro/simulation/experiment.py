"""Declarative experiment and sweep specifications.

An :class:`ExperimentSpec` describes one measurement point — which process,
on which graph family, at which size, under which options, for how many
trials.  A :class:`SweepSpec` expands a grid of sizes (and optionally
families and processes) into a list of experiment specs.  The runner in
:mod:`repro.simulation.runner` executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.directed_generators import make_directed_family
from repro.graphs.generators import make_family

__all__ = ["ExperimentSpec", "SweepSpec"]

GraphFactory = Callable[[int, Optional[np.random.Generator]], Union[DynamicGraph, DynamicDiGraph]]


@dataclass(frozen=True)
class ExperimentSpec:
    """One measurement configuration.

    Attributes
    ----------
    process:
        Registry name of the process (see
        :data:`repro.simulation.engine.PROCESS_REGISTRY`).
    family:
        Name of a registered graph family, or ``"custom"`` when
        ``graph_factory`` is supplied.
    n:
        Target graph size handed to the family factory.
    trials:
        Number of independent trials.
    directed:
        Whether ``family`` refers to the directed registry.
    graph_factory:
        Optional explicit factory ``(n, rng) -> graph`` overriding ``family``.
    process_kwargs:
        Extra keyword arguments forwarded to the process constructor
        (e.g. ``failure_prob`` for the faulty variants).
    max_rounds:
        Optional hard cap per trial (defaults to the process's own cap).
    backend:
        Graph backend for the trials: ``"list"`` (default) or ``"array"``
        (the vectorized fast path; identical seeded results).  Every
        registered process supports both — the baselines included, since
        their payload rounds run on the packed bitset substrate.
    shards:
        Row-shard count for the round engine (default 1 = unsharded).
        ``shards > 1`` requires ``backend="array"``; every registered
        process is shardable (gossip, the directed walk and the payload
        baselines alike).  Each trial's shard streams are spawned from the
        trial's own ``SeedSequence`` (see :mod:`repro.simulation.sharding`).
    shard_parallel:
        ``True``/``False`` force the process-pool / in-process sharded
        path; ``None`` (default) selects by graph size.
    checkpoint_every:
        When > 0 (and ``checkpoint_dir`` is set), each trial writes an
        exact checkpoint every this-many rounds under
        ``<checkpoint_dir>/trial_<index>/`` so interrupted sweeps can be
        resumed draw-for-draw (see :mod:`repro.simulation.checkpoint`).
    checkpoint_dir:
        Root directory for per-trial checkpoints.
    label:
        Free-form tag used in result tables.
    """

    process: str
    family: str
    n: int
    trials: int = 5
    directed: bool = False
    graph_factory: Optional[GraphFactory] = field(default=None, compare=False)
    process_kwargs: Dict[str, Any] = field(default_factory=dict, compare=False)
    max_rounds: Optional[int] = None
    backend: str = "list"
    shards: int = 1
    shard_parallel: Optional[bool] = field(default=None, compare=False)
    checkpoint_every: int = 0
    checkpoint_dir: Optional[str] = field(default=None, compare=False)
    label: str = ""

    def build_graph(
        self, rng: Optional[np.random.Generator] = None
    ) -> Union[DynamicGraph, DynamicDiGraph]:
        """Instantiate the starting graph for one trial."""
        if self.graph_factory is not None:
            return self.graph_factory(self.n, rng)
        if self.directed:
            return make_directed_family(self.family, self.n, rng)
        return make_family(self.family, self.n, rng)

    def describe(self) -> str:
        """Short human-readable description for logs and tables."""
        tag = f" [{self.label}]" if self.label else ""
        fast = f" backend={self.backend}" if self.backend != "list" else ""
        sharded = f" shards={self.shards}" if self.shards != 1 else ""
        return f"{self.process} on {self.family}(n={self.n}) x{self.trials}{fast}{sharded}{tag}"


@dataclass(frozen=True)
class SweepSpec:
    """A grid of experiment specs over sizes, families and processes."""

    processes: Sequence[str]
    families: Sequence[str]
    sizes: Sequence[int]
    trials: int = 5
    directed: bool = False
    process_kwargs: Dict[str, Any] = field(default_factory=dict, compare=False)
    max_rounds: Optional[int] = None
    backend: str = "list"
    shards: int = 1
    label: str = ""

    def expand(self) -> List[ExperimentSpec]:
        """Materialise the full grid as a list of :class:`ExperimentSpec`."""
        specs: List[ExperimentSpec] = []
        for process in self.processes:
            for family in self.families:
                for n in self.sizes:
                    specs.append(
                        ExperimentSpec(
                            process=process,
                            family=family,
                            n=n,
                            trials=self.trials,
                            directed=self.directed,
                            process_kwargs=dict(self.process_kwargs),
                            max_rounds=self.max_rounds,
                            backend=self.backend,
                            shards=self.shards,
                            label=self.label,
                        )
                    )
        return specs

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.expand())

    def __len__(self) -> int:
        return len(self.processes) * len(self.families) * len(self.sizes)
