"""Experiment substrate: seeds, traces, runners, sweeps, statistics, and bounds."""

from repro.simulation.rng import SeedSequenceFactory, spawn_rngs
from repro.simulation.trace import RunTrace, TraceRecorder
from repro.simulation.engine import (
    make_process,
    run_process,
    measure_convergence_rounds,
    PROCESS_REGISTRY,
)
from repro.simulation.experiment import ExperimentSpec, SweepSpec
from repro.simulation.runner import (
    TrialExecutionError,
    TrialResult,
    run_trials,
    run_sweep,
    summarize_trials,
)
from repro.simulation.sharding import ShardPlan, ShardedProcess
from repro.simulation.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    TrialCheckpoint,
    latest_checkpoint,
    load_checkpoint,
    restore_process,
    resume_from_checkpoint,
    save_checkpoint,
)
from repro.simulation import stats, bounds, io, plotting

__all__ = [
    "ShardPlan",
    "ShardedProcess",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "TrialCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "restore_process",
    "resume_from_checkpoint",
    "latest_checkpoint",
    "TrialExecutionError",
    "io",
    "plotting",
    "SeedSequenceFactory",
    "spawn_rngs",
    "RunTrace",
    "TraceRecorder",
    "make_process",
    "run_process",
    "measure_convergence_rounds",
    "PROCESS_REGISTRY",
    "ExperimentSpec",
    "SweepSpec",
    "TrialResult",
    "run_trials",
    "run_sweep",
    "summarize_trials",
    "stats",
    "bounds",
]
