"""Seed management for reproducible experiments.

Every random decision in the library flows through a
:class:`numpy.random.Generator`.  Experiments need many independent
streams (one per trial, sometimes one per node); spawning them from a
single root :class:`numpy.random.SeedSequence` guarantees independence and
lets a whole sweep be reproduced from one integer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["SeedSequenceFactory", "spawn_rngs", "rng_from_seed"]


def rng_from_seed(seed: Optional[int]) -> np.random.Generator:
    """A fresh generator from an integer seed (or entropy when ``None``)."""
    return np.random.default_rng(seed)


def spawn_rngs(root_seed: Optional[int], count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from a single root seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    root = np.random.SeedSequence(root_seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class SeedSequenceFactory:
    """Hands out independent generators on demand, all derived from one root seed.

    Used by the trial runner so that trial ``i`` of an experiment always
    receives the same stream regardless of how many other trials ran
    before it (the spawn index is the trial index).
    """

    def __init__(self, root_seed: Optional[int] = None) -> None:
        self.root_seed = root_seed
        self._root = np.random.SeedSequence(root_seed)
        self._spawned = 0

    def next_rng(self) -> np.random.Generator:
        """Return the next independent generator in spawn order."""
        child = self._root.spawn(1)[0]
        self._spawned += 1
        return np.random.default_rng(child)

    def seed_for_index(self, index: int) -> np.random.SeedSequence:
        """The child :class:`~numpy.random.SeedSequence` for trial ``index``.

        The trial's generator is built from this child; further streams a
        trial needs (e.g. the sharded round engine's per-round shard
        streams) are spawned from the same child, so they stay independent
        of the trial's own draw stream *and* reproducible from the root.
        """
        if index < 0:
            raise ValueError("index must be non-negative")
        root = np.random.SeedSequence(self.root_seed)
        return root.spawn(index + 1)[index]

    def rng_for_index(self, index: int) -> np.random.Generator:
        """Return the generator deterministically associated with ``index``.

        Independent of how many other streams were handed out: the stream
        for index ``i`` is always spawned from the root sequence's child
        ``i``.
        """
        return np.random.default_rng(self.seed_for_index(index))

    @property
    def spawned(self) -> int:
        """How many sequential streams have been handed out via :meth:`next_rng`."""
        return self._spawned
