"""Run traces: compact per-round records of a process run.

A :class:`TraceRecorder` is a run-loop callback (like the metrics
recorder) that keeps only the small per-round quantities most analyses
need — edge count, edges added, minimum degree — plus optional custom
probes.  The resulting :class:`RunTrace` is cheap to keep for thousands of
rounds and serialises to plain dictionaries for saving as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.base import DiscoveryProcess, RoundResult

__all__ = ["RunTrace", "TraceRecorder"]


@dataclass
class RunTrace:
    """Column-oriented record of one run.

    Attributes are parallel lists indexed by recorded round.
    """

    rounds: List[int] = field(default_factory=list)
    num_edges: List[int] = field(default_factory=list)
    edges_added: List[int] = field(default_factory=list)
    min_degree: List[int] = field(default_factory=list)
    custom: Dict[str, List[float]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rounds)

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict form (JSON-serialisable)."""
        data: Dict[str, List[float]] = {
            "rounds": list(self.rounds),
            "num_edges": list(self.num_edges),
            "edges_added": list(self.edges_added),
            "min_degree": list(self.min_degree),
        }
        for key, values in self.custom.items():
            data[key] = list(values)
        return data

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """Numpy-array form for analysis."""
        return {key: np.asarray(values) for key, values in self.as_dict().items()}

    def rounds_to_first_complete(self, total_pairs: int) -> Optional[int]:
        """First recorded round at which the edge count reached ``total_pairs`` (or None)."""
        for r, m in zip(self.rounds, self.num_edges):
            if m >= total_pairs:
                return r
        return None


class TraceRecorder:
    """Run-loop callback that fills a :class:`RunTrace`.

    Parameters
    ----------
    every:
        Record only every ``every``-th round (1 = every round).  The final
        state of a run is whatever the last recorded round saw; analyses
        that need exact convergence rounds should use the run result, not
        the trace.
    probes:
        Optional mapping from a column name to a callable
        ``process -> float`` evaluated at every recorded round.
    """

    def __init__(
        self,
        every: int = 1,
        probes: Optional[Dict[str, Callable[[DiscoveryProcess], float]]] = None,
    ) -> None:
        if every < 1:
            raise ValueError("recording period must be >= 1")
        self.every = every
        self.probes = dict(probes or {})
        self.trace = RunTrace(custom={name: [] for name in self.probes})

    def __call__(self, process: DiscoveryProcess, result: RoundResult) -> None:
        if result.round_index % self.every != 0:
            return
        graph = process.graph
        self.trace.rounds.append(result.round_index)
        self.trace.num_edges.append(graph.number_of_edges())
        self.trace.edges_added.append(result.num_added)
        cached = getattr(process, "cached_min_degree", None)
        if cached is not None:
            self.trace.min_degree.append(cached())
        elif not getattr(graph, "directed", False):
            self.trace.min_degree.append(graph.min_degree())
        else:
            self.trace.min_degree.append(int(graph.out_degrees().min()) if graph.n else 0)
        for name, probe in self.probes.items():
            self.trace.custom[name].append(float(probe(process)))
