"""Plain-text plotting: sparklines and scatter charts for terminal reports.

The experiment harness is deliberately free of plotting dependencies; these
helpers render small ASCII/Unicode charts so the CLI and the examples can
show trajectories (minimum degree over time, rounds vs n on log-log axes)
directly in the terminal and in EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = ["sparkline", "ascii_plot", "loglog_slope_annotation"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence as a one-line unicode sparkline.

    Constant sequences render as a flat mid-level line; an empty sequence
    renders as an empty string.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if math.isclose(lo, hi):
        return _SPARK_LEVELS[3] * len(vals)
    span = hi - lo
    chars = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def ascii_plot(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    marker: str = "*",
    title: Optional[str] = None,
) -> str:
    """Render an (x, y) scatter as a multi-line ASCII chart.

    Parameters
    ----------
    x, y:
        Equal-length positive sequences (positivity only required for the
        log axes).
    width, height:
        Plot area size in characters (axes add one column / row).
    logx, logy:
        Use logarithmic axes; zero or negative values then raise.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    if not x:
        raise ValueError("cannot plot empty data")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    def transform(vals: Sequence[float], log: bool) -> List[float]:
        out = []
        for v in vals:
            v = float(v)
            if log:
                if v <= 0:
                    raise ValueError("log axis requires positive values")
                out.append(math.log10(v))
            else:
                out.append(v)
        return out

    tx = transform(x, logx)
    ty = transform(y, logy)
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for px, py in zip(tx, ty):
        col = int((px - x_lo) / x_span * (width - 1))
        row = int((py - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_label = f"{(10 ** y_hi if logy else y_hi):.3g}"
    y_lo_label = f"{(10 ** y_lo if logy else y_lo):.3g}"
    for i, row_chars in enumerate(grid):
        prefix = y_hi_label if i == 0 else (y_lo_label if i == height - 1 else "")
        lines.append(f"{prefix:>10s} |" + "".join(row_chars))
    lines.append(" " * 11 + "+" + "-" * width)
    x_lo_label = f"{(10 ** x_lo if logx else x_lo):.3g}"
    x_hi_label = f"{(10 ** x_hi if logx else x_hi):.3g}"
    lines.append(" " * 12 + x_lo_label + " " * max(1, width - len(x_lo_label) - len(x_hi_label)) + x_hi_label)
    return "\n".join(lines)


def loglog_slope_annotation(x: Sequence[float], y: Sequence[float]) -> str:
    """One-line annotation of the log-log slope between the first and last points.

    This is the quick "what exponent am I looking at" readout printed under
    scaling charts; use :func:`repro.simulation.stats.fit_power_law` for the
    proper least-squares fit.
    """
    if len(x) < 2 or len(y) < 2:
        raise ValueError("need at least two points")
    x0, x1 = float(x[0]), float(x[-1])
    y0, y1 = float(y[0]), float(y[-1])
    if min(x0, x1, y0, y1) <= 0:
        raise ValueError("log-log slope requires positive endpoints")
    slope = (math.log(y1) - math.log(y0)) / (math.log(x1) - math.log(x0))
    return f"log-log slope (first->last): {slope:.2f}"
