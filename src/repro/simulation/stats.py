"""Statistical helpers: aggregation, confidence intervals, and scaling-law fits.

The scaling fits are the quantitative heart of the reproduction: every
upper/lower-bound theorem predicts a growth law of the form
``T(n) ≈ c · n^a · (log n)^b``, and :func:`fit_power_log_law` recovers the
exponents from measured convergence times by linear regression in
log space.  Helper ratio checks (:func:`bounded_ratio`) test whether the
measured times stay within a constant factor of a candidate bound — the
"shape" criterion used in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ci95_halfwidth",
    "geometric_mean",
    "fit_power_law",
    "fit_power_log_law",
    "PowerLawFit",
    "PowerLogLawFit",
    "bounded_ratio",
    "ratio_series",
    "empirical_exponent",
]


def ci95_halfwidth(values: Sequence[float]) -> float:
    """Half-width of a normal-approximation 95% confidence interval for the mean."""
    arr = np.asarray(values, dtype=float)
    if arr.size <= 1:
        return 0.0
    return float(1.96 * arr.std(ddof=1) / math.sqrt(arr.size))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y = c * x^a`` by least squares in log-log space."""

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted law at ``x``."""
        return self.coefficient * np.asarray(x, dtype=float) ** self.exponent


@dataclass(frozen=True)
class PowerLogLawFit:
    """Result of fitting ``y = c * x^a * (ln x)^b`` with a fixed polynomial exponent ``a``.

    The polynomial exponent is fixed by the theorem being tested (1 for the
    undirected bounds, 2 for the directed ones) and the log exponent ``b``
    plus constant ``c`` are fitted — this is far better conditioned than
    fitting both exponents from the narrow size ranges a laptop can reach.
    """

    coefficient: float
    poly_exponent: float
    log_exponent: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted law at ``x``."""
        arr = np.asarray(x, dtype=float)
        return self.coefficient * arr ** self.poly_exponent * np.log(arr) ** self.log_exponent


def _r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    ss_res = float(np.sum((y - y_hat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x^a`` by ordinary least squares on ``log y`` vs ``log x``."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size or xa.size < 2:
        raise ValueError("need at least two (x, y) points of equal length")
    if (xa <= 0).any() or (ya <= 0).any():
        raise ValueError("power-law fitting requires strictly positive data")
    log_x = np.log(xa)
    log_y = np.log(ya)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    fit = PowerLawFit(coefficient=float(np.exp(intercept)), exponent=float(slope), r_squared=0.0)
    r2 = _r_squared(log_y, np.log(fit.predict(xa)))
    return PowerLawFit(coefficient=fit.coefficient, exponent=fit.exponent, r_squared=r2)


def fit_power_log_law(
    x: Sequence[float], y: Sequence[float], poly_exponent: float = 1.0
) -> PowerLogLawFit:
    """Fit ``y = c * x^poly_exponent * (ln x)^b`` for the log exponent ``b`` and constant ``c``.

    Linear regression of ``log(y / x^poly_exponent)`` against ``log(ln x)``.
    All ``x`` must exceed 1 so that ``ln x > 0``.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size or xa.size < 2:
        raise ValueError("need at least two (x, y) points of equal length")
    if (xa <= 1).any() or (ya <= 0).any():
        raise ValueError("power-log fitting requires x > 1 and y > 0")
    reduced = np.log(ya) - poly_exponent * np.log(xa)
    log_log_x = np.log(np.log(xa))
    slope, intercept = np.polyfit(log_log_x, reduced, 1)
    fit = PowerLogLawFit(
        coefficient=float(np.exp(intercept)),
        poly_exponent=float(poly_exponent),
        log_exponent=float(slope),
        r_squared=0.0,
    )
    r2 = _r_squared(np.log(ya), np.log(fit.predict(xa)))
    return PowerLogLawFit(
        coefficient=fit.coefficient,
        poly_exponent=fit.poly_exponent,
        log_exponent=fit.log_exponent,
        r_squared=r2,
    )


def empirical_exponent(x: Sequence[float], y: Sequence[float]) -> float:
    """Shorthand for the fitted pure power-law exponent of ``y`` against ``x``."""
    return fit_power_law(x, y).exponent


def ratio_series(
    x: Sequence[float], y: Sequence[float], bound: Callable[[float], float]
) -> np.ndarray:
    """Return ``y_i / bound(x_i)`` for every data point (the constant-factor check)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    denom = np.array([bound(v) for v in xa], dtype=float)
    if (denom <= 0).any():
        raise ValueError("bound function must be strictly positive on the data")
    return ya / denom


def bounded_ratio(
    x: Sequence[float],
    y: Sequence[float],
    bound: Callable[[float], float],
    spread_tolerance: float = 10.0,
) -> Tuple[bool, Dict[str, float]]:
    """Check whether ``y`` stays within a constant factor of ``bound(x)``.

    Returns ``(ok, info)`` where ``ok`` is True when the max/min spread of
    the ratios ``y / bound(x)`` is at most ``spread_tolerance`` — i.e. the
    measured series and the theoretical bound have the same shape up to a
    constant factor over the measured range.
    """
    ratios = ratio_series(x, y, bound)
    info = {
        "ratio_min": float(ratios.min()),
        "ratio_max": float(ratios.max()),
        "ratio_mean": float(ratios.mean()),
        "spread": float(ratios.max() / ratios.min()) if ratios.min() > 0 else float("inf"),
    }
    return info["spread"] <= spread_tolerance, info
