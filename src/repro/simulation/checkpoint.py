"""Exact trial checkpoint/resume: snapshot a running process, restart it later.

Long experiments must survive worker death and process restarts (the
ROADMAP's simulation-as-a-service prerequisite), so this module serialises
the *complete* dynamic state of a trial — graph, process counters, and the
RNG — and restores it so that a resumed run is **draw-for-draw identical**
to the uninterrupted one: same contact graphs round by round, same final
bit-generator state.  The property is pinned by ``tests/test_checkpoint.py``
for every registered process, on both graph backends, sharded and not.

Checkpoint file format (version 1)
----------------------------------
A checkpoint is two files sharing one stem, written atomically (temp file
in the target directory + ``os.replace``) and in order:

``<stem>.npz``
    The array payload (NumPy ``savez``): the padded (out-)neighbour rows
    trimmed to the occupied width, the degree vector, and per-process
    extras (the directed walk's packed target-closure rows and live
    :class:`~repro.graphs.closure.IncrementalClosure` rows, directed
    pointer jump's missing-closure pair list).  Packed membership bitsets
    and in-degrees are *derived* state — they are rebuilt exactly from the
    rows on restore and never stored.
``<stem>.json``
    The envelope, written **after** the payload so it is the commit point:
    ``format`` and ``version`` fields, a ``checksum`` block holding the
    SHA-256 of the ``.npz`` bytes, the ``meta`` block (process registry
    name, backend, semantics, round/message/bit counters, the directed
    deficit counter, shard configuration), and the full ``rng_state`` —
    the process generator's ``bit_generator.state`` dict.

Compatibility policy: the loader accepts exactly
:data:`CHECKPOINT_VERSION`.  Any format evolution bumps the version and
must ship an explicit migration; a mismatched version, a wrong checksum,
or a truncated envelope all raise :class:`CheckpointError` rather than
resuming from silently corrupt state.

What is checkpointable
----------------------
Every process constructible through the registry
(:data:`repro.simulation.engine.PROCESS_REGISTRY`), on either backend,
plain or wrapped in :class:`~repro.simulation.sharding.ShardedProcess`.
Instance-patched processes (a :class:`~repro.core.variants.ChurnModel`
overlay's guarded ``propose``) and unregistered subclasses raise
:class:`CheckpointError`: their extra state lives outside the format.
"""

from __future__ import annotations

import hashlib
import io as _io
import json
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.base import DiscoveryProcess, RunResult, UpdateSemantics
from repro.core.directed import DirectedTwoHopWalk
from repro.core.push import PushDiscovery
from repro.baselines.pointer_jump import RandomPointerJump
from repro.graphs import bitset
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.array_adjacency import ArrayDiGraph, ArrayGraph, _round_up_pow2
from repro.simulation.engine import PROCESS_REGISTRY, make_process
from repro.simulation.io import atomic_write_bytes
from repro.simulation.sharding import ShardedProcess

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "TrialCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "restore_process",
    "resume_from_checkpoint",
    "periodic_checkpointer",
    "latest_checkpoint",
]

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = "repro-gossip-trial-checkpoint"
CHECKPOINT_VERSION = 1

_ROUND_STEM = re.compile(r"^round_(\d+)$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be captured, written, verified, or restored."""


@dataclass
class TrialCheckpoint:
    """In-memory form of one checkpoint: envelope metadata plus array payload.

    ``meta`` mirrors the JSON envelope's ``meta`` block; ``arrays`` holds
    the ``.npz`` payload; ``rng_state`` is the generator's
    ``bit_generator.state`` dict (restored verbatim, which is what makes
    resumed draws identical).
    """

    meta: Dict[str, object]
    arrays: Dict[str, np.ndarray]
    rng_state: Dict[str, object]
    version: int = CHECKPOINT_VERSION

    @property
    def process_name(self) -> str:
        """Registry name of the checkpointed process."""
        return str(self.meta["process"])

    @property
    def round_index(self) -> int:
        """Round the checkpoint was taken at (rounds completed so far)."""
        return int(self.meta["round_index"])


# --------------------------------------------------------------------------- #
# capture
# --------------------------------------------------------------------------- #
def _registry_name(process: DiscoveryProcess) -> str:
    """Reverse registry lookup by exact type (subclasses are distinct entries)."""
    directed = bool(getattr(process.graph, "directed", False))
    for name, (ctor, needs_directed) in PROCESS_REGISTRY.items():
        if ctor is type(process) and needs_directed == directed:
            return name
    raise CheckpointError(
        f"{type(process).__name__} is not a registered process; only registry "
        f"processes are checkpointable (known: {sorted(PROCESS_REGISTRY)})"
    )


def _graph_payload(graph) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Neighbour rows + degrees: the complete, backend-independent graph state.

    Rows are stored trimmed to the occupied width; everything else (packed
    membership bits, in-degrees, the capacity padding) is derived on
    restore.  Insertion order inside each row is preserved, which is the
    property the draw-stream contract rests on.
    """
    n = graph.n
    directed = bool(getattr(graph, "directed", False))
    if isinstance(graph, (ArrayGraph, ArrayDiGraph)):
        rows, deg = graph.out_neighbor_rows() if directed else graph.neighbor_rows()
        capacity = graph.capacity
    else:
        deg = graph.out_degrees() if directed else graph.degrees()
        lists = graph._out if directed else graph._neighbors
        width = int(deg.max()) if deg.size else 0
        rows = np.full((n, max(width, 1)), -1, dtype=np.int64)
        for u, nbrs in enumerate(lists):
            rows[u, : len(nbrs)] = nbrs
        capacity = 0  # list backend: no preallocated capacity to preserve
    width = int(deg.max()) if deg.size else 0
    meta = {
        "n": n,
        "directed": directed,
        "num_edges": graph.number_of_edges(),
        "capacity": capacity,
    }
    arrays = {
        "nbr": np.ascontiguousarray(rows[:, : max(width, 1)], dtype=np.int64),
        "deg": np.ascontiguousarray(deg, dtype=np.int64),
    }
    return meta, arrays


def capture_checkpoint(process: DiscoveryProcess) -> TrialCheckpoint:
    """Snapshot ``process`` (plain or :class:`ShardedProcess`) into memory."""
    sharded_meta: Dict[str, object] = {"shards": 1}
    if isinstance(process, ShardedProcess):
        sharded_meta = {
            "shards": process.shards,
            "shard_entropy": int(process._entropy),
            "shard_parallel": bool(process._parallel),
        }
        process = process.process
    if "propose" in process.__dict__ or "participating_nodes" in process.__dict__:
        raise CheckpointError(
            "process has instance-patched hooks (e.g. a ChurnModel overlay); "
            "its extra state lies outside the checkpoint format"
        )
    name = _registry_name(process)
    graph_meta, arrays = _graph_payload(process.graph)

    # Constructor kwargs, keyed by exact type: the faulty variants subclass
    # push/pull but do not accept ``without_replacement``.
    kwargs: Dict[str, object] = {}
    if type(process) is PushDiscovery:
        kwargs["without_replacement"] = bool(process.without_replacement)
    if hasattr(process, "failure_prob"):
        kwargs["failure_prob"] = float(process.failure_prob)
        kwargs["participation_prob"] = float(process.participation_prob)

    meta: Dict[str, object] = {
        "process": name,
        "backend": process.backend,
        "semantics": process.semantics.value,
        "round_index": process.round_index,
        "total_edges_added": process.total_edges_added,
        "total_messages": process.total_messages,
        "total_bits": process.total_bits,
        "process_kwargs": kwargs,
        **graph_meta,
        **sharded_meta,
    }
    if isinstance(process, DirectedTwoHopWalk):
        meta["deficit"] = int(process._deficit)
        arrays["target_bits"] = process._target_bits
        arrays["closure_reach"] = process._closure.reach
    if isinstance(process, RandomPointerJump) and process._missing is not None:
        meta["has_missing"] = True
        missing = np.asarray(sorted(process._missing), dtype=np.int64).reshape(-1, 2)
        arrays["missing"] = missing
    return TrialCheckpoint(
        meta=meta,
        arrays=arrays,
        rng_state=process.rng.bit_generator.state,
    )


# --------------------------------------------------------------------------- #
# serialisation
# --------------------------------------------------------------------------- #
def _stem(path: PathLike) -> Path:
    """Normalise a checkpoint path (stem, ``.json`` or ``.npz``) to its stem."""
    p = Path(path)
    if p.suffix in (".json", ".npz"):
        return p.with_suffix("")
    return p


def save_checkpoint(process: DiscoveryProcess, path: PathLike) -> Path:
    """Checkpoint ``process`` under ``path`` (stem); returns the envelope path.

    Writes ``<stem>.npz`` first, then the ``<stem>.json`` envelope carrying
    the payload's SHA-256 — the envelope is the commit point, so a crash
    mid-write never leaves a checkpoint that both exists and fails to load.
    """
    checkpoint = capture_checkpoint(process)
    stem = _stem(path)
    buffer = _io.BytesIO()
    np.savez(buffer, **checkpoint.arrays)
    payload = buffer.getvalue()
    atomic_write_bytes(stem.with_suffix(".npz"), payload)
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "version": checkpoint.version,
        "checksum": {"algorithm": "sha256", "npz": hashlib.sha256(payload).hexdigest()},
        "meta": checkpoint.meta,
        "rng_state": checkpoint.rng_state,
    }
    target = stem.with_suffix(".json")
    atomic_write_bytes(target, (json.dumps(envelope, indent=2, sort_keys=True) + "\n").encode())
    return target


def load_checkpoint(path: PathLike) -> TrialCheckpoint:
    """Load and verify a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` on a missing file, invalid/truncated
    JSON, an unknown format or version, or a payload checksum mismatch.
    """
    stem = _stem(path)
    envelope_path = stem.with_suffix(".json")
    npz_path = stem.with_suffix(".npz")
    try:
        raw = envelope_path.read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint envelope {envelope_path}: {exc}") from exc
    try:
        envelope = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint envelope {envelope_path} is not valid JSON "
            f"(truncated or corrupt write?): {exc}"
        ) from exc
    if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{envelope_path} is not a {CHECKPOINT_FORMAT} envelope")
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION} only)"
        )
    try:
        payload = npz_path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint payload {npz_path}: {exc}") from exc
    checksum = envelope.get("checksum", {})
    expected = checksum.get("npz")
    digest = hashlib.sha256(payload).hexdigest()
    if expected != digest:
        raise CheckpointError(
            f"checkpoint payload {npz_path} fails its checksum "
            f"(expected sha256 {expected}, got {digest}); refusing to resume"
        )
    with np.load(_io.BytesIO(payload)) as npz:
        arrays = {key: npz[key] for key in npz.files}
    return TrialCheckpoint(
        meta=envelope["meta"],
        arrays=arrays,
        rng_state=envelope["rng_state"],
        version=int(version),
    )


# --------------------------------------------------------------------------- #
# restore
# --------------------------------------------------------------------------- #
def _restore_rng(state: Dict[str, object]) -> np.random.Generator:
    """Rebuild a generator whose bit generator is in exactly ``state``."""
    name = state.get("bit_generator")
    ctor = getattr(np.random, str(name), None)
    if ctor is None:
        raise CheckpointError(f"unknown bit generator {name!r} in checkpoint RNG state")
    bit_generator = ctor()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def _restore_array_graph(meta: Dict[str, object], rows: np.ndarray, deg: np.ndarray):
    """Rebuild an array-backend graph from trimmed rows (bits/in-degrees derived)."""
    n = int(meta["n"])
    directed = bool(meta["directed"])
    cap = max(_round_up_pow2(rows.shape[1] if n else 1), int(meta.get("capacity") or 0))
    nbr = np.full((n, cap), -1, dtype=np.int64)
    nbr[:, : rows.shape[1]] = rows
    flat_owners = np.repeat(np.arange(n, dtype=np.int64), deg)
    flat_targets = rows[flat_owners, _slot_indices(deg)] if flat_owners.size else flat_owners
    if directed:
        graph = ArrayDiGraph(n)
        graph._cap = cap
        graph._out = nbr
        graph._out_deg = deg.copy()
        graph._in_deg = np.bincount(flat_targets, minlength=n).astype(np.int64)
        if flat_owners.size:
            bitset.set_bits(graph._bits, flat_owners, flat_targets)
        graph._num_edges = int(deg.sum())
    else:
        graph = ArrayGraph(n)
        graph._cap = cap
        graph._nbr = nbr
        graph._deg = deg.copy()
        if flat_owners.size:
            bitset.set_bits(graph._bits, flat_owners, flat_targets)
        graph._num_edges = int(deg.sum()) // 2
    if graph._num_edges != int(meta["num_edges"]):
        raise CheckpointError(
            f"checkpoint graph payload is inconsistent: rows encode "
            f"{graph._num_edges} edges, envelope says {meta['num_edges']}"
        )
    return graph


def _slot_indices(deg: np.ndarray) -> np.ndarray:
    """Column indices ``0..deg[u]-1`` per node, flattened in node order."""
    total = int(deg.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.repeat(np.cumsum(deg) - deg, deg)
    return np.arange(total, dtype=np.int64) - starts


def _restore_list_graph(meta: Dict[str, object], rows: np.ndarray, deg: np.ndarray):
    """Rebuild a list-backend graph, preserving per-node insertion order."""
    n = int(meta["n"])
    directed = bool(meta["directed"])
    lists = [rows[u, : deg[u]].tolist() for u in range(n)]
    if directed:
        graph = DynamicDiGraph(n)
        graph._out = lists
        graph._edge_set = {(u, v) for u, nbrs in enumerate(lists) for v in nbrs}
        graph._out_degrees = deg.copy()
        in_deg = np.zeros(n, dtype=np.int64)
        for nbrs in lists:
            for v in nbrs:
                in_deg[v] += 1
        graph._in_degrees = in_deg
        graph._num_edges = int(deg.sum())
    else:
        graph = DynamicGraph(n)
        graph._neighbors = lists
        graph._edge_set = {
            (min(u, v), max(u, v)) for u, nbrs in enumerate(lists) for v in nbrs
        }
        graph._degrees = deg.copy()
        graph._num_edges = int(deg.sum()) // 2
    if graph._num_edges != int(meta["num_edges"]):
        raise CheckpointError(
            f"checkpoint graph payload is inconsistent: rows encode "
            f"{graph._num_edges} edges, envelope says {meta['num_edges']}"
        )
    return graph


def restore_process(checkpoint: TrialCheckpoint) -> DiscoveryProcess:
    """Rebuild the checkpointed process, ready to continue draw-for-draw."""
    meta = checkpoint.meta
    rows = np.asarray(checkpoint.arrays["nbr"], dtype=np.int64)
    deg = np.asarray(checkpoint.arrays["deg"], dtype=np.int64)
    if str(meta["backend"]) == "array":
        graph = _restore_array_graph(meta, rows, deg)
    else:
        graph = _restore_list_graph(meta, rows, deg)
    rng = _restore_rng(checkpoint.rng_state)
    shards = int(meta.get("shards", 1))
    process = make_process(
        checkpoint.process_name,
        graph,
        rng=rng,
        semantics=UpdateSemantics(meta["semantics"]),
        shards=shards,
        shard_seed=int(meta["shard_entropy"]) if shards > 1 else None,
        shard_parallel=bool(meta["shard_parallel"]) if shards > 1 else None,
        **dict(meta.get("process_kwargs") or {}),
    )
    inner = process.process if isinstance(process, ShardedProcess) else process
    inner.round_index = int(meta["round_index"])
    inner.total_edges_added = int(meta["total_edges_added"])
    inner.total_messages = int(meta["total_messages"])
    inner.total_bits = int(meta["total_bits"])
    # The constructors recompute the closure bookkeeping from the restored
    # graph (exact, because these processes only ever add closure-internal
    # edges); overwrite with the stored rows anyway so the restored state
    # is the checkpoint, not an invariant argument about it.
    if isinstance(inner, DirectedTwoHopWalk):
        inner._target_bits = np.asarray(checkpoint.arrays["target_bits"], dtype=np.uint64)
        inner._closure.reach = np.asarray(checkpoint.arrays["closure_reach"], dtype=np.uint64)
        inner._deficit = int(meta["deficit"])
    if isinstance(inner, RandomPointerJump) and meta.get("has_missing"):
        missing = np.asarray(checkpoint.arrays["missing"], dtype=np.int64).reshape(-1, 2)
        inner._missing = {(int(u), int(v)) for u, v in missing}
    return process


# --------------------------------------------------------------------------- #
# run-loop integration
# --------------------------------------------------------------------------- #
def periodic_checkpointer(checkpoint_dir: PathLike, every: int):
    """A run-loop callback that checkpoints every ``every`` completed rounds.

    Checkpoints are written as ``round_<index>`` stems under
    ``checkpoint_dir`` (index = rounds completed, zero-padded so
    lexicographic order is round order).
    """
    if every < 1:
        raise ValueError(f"checkpoint period must be >= 1, got {every}")
    directory = Path(checkpoint_dir)

    def callback(process: DiscoveryProcess, result) -> None:
        if process.round_index % every == 0:
            save_checkpoint(process, directory / f"round_{process.round_index:08d}")

    return callback


def latest_checkpoint(checkpoint_dir: PathLike) -> Path:
    """The highest-round ``round_*`` checkpoint stem under ``checkpoint_dir``."""
    directory = Path(checkpoint_dir)
    best: Optional[Tuple[int, Path]] = None
    for candidate in directory.glob("round_*.json"):
        match = _ROUND_STEM.match(candidate.stem)
        if match is None:
            continue
        key = (int(match.group(1)), candidate.with_suffix(""))
        if best is None or key[0] > best[0]:
            best = key
    if best is None:
        raise CheckpointError(f"no round_* checkpoints found under {directory}")
    return best[1]


def resume_from_checkpoint(
    path: PathLike,
    max_rounds: Optional[int] = None,
    checkpoint_every: int = 0,
    checkpoint_dir: Optional[PathLike] = None,
    record_history: bool = False,
) -> RunResult:
    """Restore a checkpoint and run it to convergence.

    The returned :class:`RunResult` reports ``rounds`` as the process's
    total round count *since the start of the trial* (not just the rounds
    executed after the resume), so a resumed run's result equals the
    uninterrupted run's.  ``checkpoint_every``/``checkpoint_dir`` continue
    periodic checkpointing from where the interrupted run left off.
    """
    process = restore_process(load_checkpoint(path))
    callbacks = ()
    if checkpoint_every:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        callbacks = (periodic_checkpointer(checkpoint_dir, checkpoint_every),)
    try:
        result = process.run_to_convergence(
            max_rounds=max_rounds, callbacks=callbacks, record_history=record_history
        )
        return replace(result, rounds=process.round_index)
    finally:
        close = getattr(process, "close", None)
        if close is not None:
            close()
