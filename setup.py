"""Thin setup.py shim.

The project is fully described by ``pyproject.toml``; this file exists only
so that ``pip install -e . --no-use-pep517`` (the legacy editable path)
works on environments without the ``wheel`` package installed.
"""

from setuptools import setup

setup()
