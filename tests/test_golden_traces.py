"""Golden-trace regression: both backends reproduce committed seeded traces bit-for-bit.

The JSON files under ``tests/data/`` record the exact per-round added
edges, round counts, and message/bit totals of reference runs (push,
pull, and the three baselines on a 64-node cycle, seed 20120614).  Any
refactor that changes the RNG draw order — reordering bulk draws,
changing the uniform→index mapping, touching neighbour insertion order —
breaks these tests immediately instead of silently invalidating
published experiment tables.

The gossip traces pin exact application order; the baseline traces
(``canonical_edges: true``) pin each round's added-edge *set* in
canonical order, because the packed flooding round discovers the same
edges in canonical rather than scan order.  Intentional convention
changes must regenerate the traces with ``tests/make_golden_traces.py``
and say so in the commit — the PR 3 sequential double-draw fix and the
baselines' move to the shared bulk-draw convention did exactly that.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.graphs import generators as gen

DATA_DIR = Path(__file__).parent / "data"

GOLDEN_CASES = [
    ("golden_push_cycle_n64.json", PushDiscovery),
    ("golden_pull_cycle_n64.json", PullDiscovery),
    ("golden_name_dropper_cycle_n64.json", NameDropper),
    ("golden_pointer_jump_cycle_n64.json", RandomPointerJump),
    ("golden_flooding_cycle_n64.json", NeighborhoodFlooding),
]


def load_golden(filename: str) -> dict:
    return json.loads((DATA_DIR / filename).read_text())


def replay(process_cls, golden: dict, backend: str) -> dict:
    graph = gen.cycle_graph(golden["n"])
    process = process_cls(graph, rng=golden["seed"], backend=backend)
    result = process.run_to_convergence(record_history=True)
    if golden.get("canonical_edges"):
        rounds = [
            [r.round_index, sorted(sorted([int(u), int(v)]) for u, v in r.added_edges)]
            for r in result.history
            if r.added_edges
        ]
    else:
        rounds = [
            [r.round_index, [[int(u), int(v)] for u, v in r.added_edges]]
            for r in result.history
            if r.added_edges
        ]
    return {
        "rounds": result.rounds,
        "total_edges_added": result.total_edges_added,
        "total_messages": result.total_messages,
        "total_bits": result.total_bits,
        "added_by_round": rounds,
    }


@pytest.mark.parametrize("backend", ["list", "array"])
@pytest.mark.parametrize("filename,process_cls", GOLDEN_CASES)
def test_backend_reproduces_golden_trace(filename, process_cls, backend):
    golden = load_golden(filename)
    replayed = replay(process_cls, golden, backend)
    assert replayed["rounds"] == golden["rounds"]
    assert replayed["total_edges_added"] == golden["total_edges_added"]
    assert replayed["total_messages"] == golden["total_messages"]
    assert replayed["total_bits"] == golden["total_bits"]
    # Bit-for-bit: every round's added edges, in application (or canonical) order.
    assert replayed["added_by_round"] == golden["added_by_round"]


def test_golden_traces_cover_complete_graph():
    """Sanity on the artifacts themselves: they describe full convergence."""
    for filename, _ in GOLDEN_CASES:
        golden = load_golden(filename)
        n = golden["n"]
        recorded = sum(len(edges) for _, edges in golden["added_by_round"])
        assert recorded == golden["total_edges_added"]
        assert recorded == n * (n - 1) // 2 - n  # cycle starts with n edges
