"""Tests for the CFG/dataflow layer and the three flow-sensitive lint rules.

Four layers of coverage:

* CFG construction — path enumeration through branches, loops and
  ``try/finally`` (exceptional edges included);
* reaching definitions — joins at branch merges, parameter entry defs;
* fixture corpus — the ``bad_*`` twins fire, the ``allowed_*`` twins
  pass under all three flow rules together;
* mutation — the seeded ``_SharedBlock`` unlink-removal mutant and a
  parent-side RNG-reuse mutant each produce exactly one finding, and the
  unmutated sources stay clean.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.quality import lint_text, run_lint
from repro.quality.cfg import CFG, EXCEPTION, build_cfg
from repro.quality.dataflow import ENTRY_DEF, ReachingDefinitions
from repro.quality.framework import Finding, github_annotation, main

DATA = Path(__file__).parent / "data" / "lint"
SRC_ROOT = Path(__file__).parents[1] / "src" / "repro"

FLOW_RULES = ["resource-leak", "rng-discipline", "pickle-safety"]


def _function_cfg(src: str, name: str) -> tuple[CFG, ast.FunctionDef]:
    tree = ast.parse(src)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return build_cfg(node), node
    raise AssertionError(f"no function {name!r} in source")


def _lines(cfg: CFG, path: list[int]) -> list[int]:
    return [cfg.node(i).line for i in path if cfg.node(i).line]


# --------------------------------------------------------------------------- #
# CFG construction
# --------------------------------------------------------------------------- #
class TestCfgConstruction:
    def test_branch_enumerates_both_arms(self):
        cfg, _ = _function_cfg(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n",
            "f",
        )
        normal = [p for p in cfg.paths() if p[-1] == cfg.exit]
        assert len(normal) == 2
        arms = {tuple(_lines(cfg, p)) for p in normal}
        assert arms == {(2, 3, 6), (2, 5, 6)}

    def test_if_without_else_falls_through(self):
        cfg, _ = _function_cfg(
            "def f(c):\n    if c:\n        a = 1\n    return c\n", "f"
        )
        normal = [p for p in cfg.paths() if p[-1] == cfg.exit]
        assert {tuple(_lines(cfg, p)) for p in normal} == {(2, 3, 4), (2, 4)}

    def test_loop_has_back_edge_and_loop_free_paths(self):
        cfg, _ = _function_cfg(
            "def f(n):\n"
            "    total = 0\n"
            "    while n:\n"
            "        total = total + n\n"
            "        n = n - 1\n"
            "    return total\n",
            "f",
        )
        # the loop body's last statement flows back to the loop head
        head = next(n for n in cfg.stmt_nodes() if n.kind == "loop")
        last = next(n for n in cfg.stmt_nodes() if n.line == 5)
        assert (head.index, "normal") in cfg.successors(last.index)
        # enumerated paths never revisit a node
        for path in cfg.paths():
            assert len(path) == len(set(path))

    def test_early_return_and_raise_reach_their_exits(self):
        cfg, _ = _function_cfg(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    raise ValueError(c)\n",
            "f",
        )
        endings = {p[-1] for p in cfg.paths()}
        assert endings == {cfg.exit, cfg.raise_exit}

    def test_break_leaves_the_loop(self):
        cfg, _ = _function_cfg(
            "def f(items):\n"
            "    for item in items:\n"
            "        if item:\n"
            "            break\n"
            "    return items\n",
            "f",
        )
        assert any(
            4 in _lines(cfg, p) and 5 in _lines(cfg, p)
            for p in cfg.paths()
            if p[-1] == cfg.exit
        )

    def test_try_finally_runs_on_both_kinds_of_exit(self):
        cfg, _ = _function_cfg(
            "def f(x):\n"
            "    try:\n"
            "        risky(x)\n"
            "    finally:\n"
            "        cleanup(x)\n",
            "f",
        )
        cleanup = next(n for n in cfg.stmt_nodes() if n.line == 5 and n.kind == "stmt")
        normal = [p for p in cfg.paths() if p[-1] == cfg.exit]
        exceptional = [p for p in cfg.paths() if p[-1] == cfg.raise_exit]
        assert normal and exceptional
        # the finally body is on every completed normal path and on the
        # re-raise path (entered through the synthetic gate)
        assert all(cleanup.index in p for p in normal)
        assert any(cleanup.index in p for p in exceptional)

    def test_except_handler_is_an_exceptional_continuation(self):
        cfg, _ = _function_cfg(
            "def f(x):\n"
            "    try:\n"
            "        risky(x)\n"
            "    except ValueError:\n"
            "        x = 0\n"
            "    return x\n",
            "f",
        )
        risky = next(n for n in cfg.stmt_nodes() if n.line == 3)
        assert any(kind == EXCEPTION for _, kind in cfg.successors(risky.index))
        handled = [p for p in cfg.paths() if p[-1] == cfg.exit]
        assert any(5 in _lines(cfg, p) for p in handled)

    def test_catch_all_handler_blocks_outward_propagation(self):
        cfg, _ = _function_cfg(
            "def f(x):\n"
            "    try:\n"
            "        risky(x)\n"
            "    except BaseException:\n"
            "        raise\n"
            "    return x\n",
            "f",
        )
        dispatch = next(n for n in cfg.nodes if n.kind == "dispatch")
        assert all(kind != EXCEPTION for _, kind in cfg.successors(dispatch.index))

    def test_nested_function_bodies_are_opaque(self):
        cfg, _ = _function_cfg(
            "def f(x):\n"
            "    def inner():\n"
            "        return open('w')\n"
            "    return inner\n",
            "f",
        )
        lines = {n.line for n in cfg.stmt_nodes()}
        assert 3 not in lines  # inner's body is not part of f's CFG


# --------------------------------------------------------------------------- #
# reaching definitions
# --------------------------------------------------------------------------- #
class TestReachingDefinitions:
    def test_branch_merge_joins_definitions(self):
        cfg, fn = _function_cfg(
            "def f(c):\n"
            "    x = 1\n"
            "    if c:\n"
            "        x = 2\n"
            "    return x\n",
            "f",
        )
        reaching = ReachingDefinitions(cfg, fn)
        ret = next(n for n in cfg.stmt_nodes() if n.line == 5)
        def_lines = sorted(n.line for n in reaching.def_nodes("x", ret.index))
        assert def_lines == [2, 4]

    def test_parameters_are_entry_defs(self):
        cfg, fn = _function_cfg("def f(c):\n    return c\n", "f")
        reaching = ReachingDefinitions(cfg, fn)
        ret = next(n for n in cfg.stmt_nodes() if n.line == 2)
        assert reaching.defs_of("c", ret.index) == frozenset({ENTRY_DEF})
        assert reaching.def_nodes("c", ret.index) == []

    def test_rebinding_kills_the_earlier_definition(self):
        cfg, fn = _function_cfg(
            "def f():\n    x = 1\n    x = 2\n    return x\n", "f"
        )
        reaching = ReachingDefinitions(cfg, fn)
        ret = next(n for n in cfg.stmt_nodes() if n.line == 4)
        assert [n.line for n in reaching.def_nodes("x", ret.index)] == [3]

    def test_loop_carried_definition_reaches_the_head(self):
        cfg, fn = _function_cfg(
            "def f(n):\n"
            "    x = 0\n"
            "    while n:\n"
            "        x = x + 1\n"
            "    return x\n",
            "f",
        )
        reaching = ReachingDefinitions(cfg, fn)
        ret = next(n for n in cfg.stmt_nodes() if n.line == 5)
        assert sorted(n.line for n in reaching.def_nodes("x", ret.index)) == [2, 4]


# --------------------------------------------------------------------------- #
# fixture corpus
# --------------------------------------------------------------------------- #
class TestFlowFixtureCorpus:
    @pytest.mark.parametrize("rule", FLOW_RULES)
    def test_bad_fixture_fires(self, rule):
        fixture = DATA / f"bad_{rule.replace('-', '_')}.py"
        findings = run_lint([fixture], rules=[rule], include_project=False)
        assert findings, f"{fixture.name} must produce {rule} findings"
        assert all(f.rule == rule for f in findings)
        assert all(f.path == str(fixture) and f.line > 0 for f in findings)

    @pytest.mark.parametrize("rule", FLOW_RULES)
    def test_allowed_twin_passes(self, rule):
        fixture = DATA / f"allowed_{rule.replace('-', '_')}.py"
        findings = run_lint([fixture], rules=[rule], include_project=False)
        assert findings == [], [str(f) for f in findings]

    def test_allowed_corpus_clean_under_all_flow_rules(self):
        # pragmas from one flow rule must not read as stale to another
        for rule in FLOW_RULES:
            fixture = DATA / f"allowed_{rule.replace('-', '_')}.py"
            findings = run_lint([fixture], rules=FLOW_RULES, include_project=False)
            assert findings == [], [str(f) for f in findings]

    def test_bad_resource_leak_covers_every_kind(self):
        findings = run_lint(
            [DATA / "bad_resource_leak.py"],
            rules=["resource-leak"],
            include_project=False,
        )
        blob = "\n".join(f.message for f in findings)
        for marker in ("SharedMemory", "mkstemp", "open", "ProcessPoolExecutor"):
            assert marker in blob
        # the class-level obligation (close present, unlink missing)
        assert any("class BrokenBlock" in f.message for f in findings)

    def test_exceptional_path_leak_is_reported_as_such(self):
        findings = lint_text(
            "def f(path, payload):\n"
            "    handle = open(path, 'w')\n"
            "    handle.write(payload)\n"
            "    handle.close()\n",
            rules=["resource-leak"],
        )
        assert len(findings) == 1
        assert "exceptional path" in findings[0].message


# --------------------------------------------------------------------------- #
# mutation: the two seeded mutants each produce exactly one finding
# --------------------------------------------------------------------------- #
_SHARDING = SRC_ROOT / "simulation" / "sharding.py"

_RNG_CLEAN = """\
import numpy as np


def run_round(pool, worker, entropy):
    seq = np.random.SeedSequence(entropy)
    rng = np.random.default_rng(seq.spawn(1)[0])
    future = pool.submit(worker, rng)
    payload = future
    return payload
"""


class TestMutationCatches:
    def test_unmutated_sharding_is_clean(self):
        findings = lint_text(
            _SHARDING.read_text(), str(_SHARDING), rules=["resource-leak"]
        )
        assert findings == [], [str(f) for f in findings]

    def test_shared_block_unlink_removal_is_caught(self):
        src = _SHARDING.read_text()
        assert "self.shm.unlink()" in src, "mutation target moved"
        mutant = src.replace("self.shm.unlink()", "pass")
        findings = lint_text(mutant, "sharding_mutant.py", rules=["resource-leak"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "resource-leak"
        assert "unlink" in finding.message
        assert "_SharedBlock" in finding.message

    def test_parent_rng_reuse_is_caught(self):
        assert lint_text(_RNG_CLEAN, rules=["rng-discipline"]) == []
        mutant = _RNG_CLEAN.replace(
            "payload = future", "payload = (future, rng.random())"
        )
        findings = lint_text(mutant, "rng_mutant.py", rules=["rng-discipline"])
        assert len(findings) == 1
        assert findings[0].rule == "rng-discipline"
        assert "escaped" in findings[0].message

    def test_runner_pool_shutdown_stays_covered(self):
        # the PR's satellite fix: a raising submit loop must not leak the pool
        runner = SRC_ROOT / "simulation" / "runner.py"
        findings = lint_text(
            runner.read_text(), str(runner), rules=["resource-leak"]
        )
        assert findings == [], [str(f) for f in findings]


# --------------------------------------------------------------------------- #
# output formats (--format github, --output report)
# --------------------------------------------------------------------------- #
class TestOutputFormats:
    def test_github_format_emits_error_annotations(self, capsys):
        code = main(
            [
                str(DATA / "bad_resource_leak.py"),
                "--no-registry",
                "--rules",
                "resource-leak",
                "--format",
                "github",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert ",line=" in out
        assert "findings in" in out  # the summary line still prints

    def test_github_annotation_escaping(self):
        annotation = github_annotation(
            Finding("a,b:c.py", 3, "rule", "multi\nline % message")
        )
        assert annotation.startswith("::error file=a%2Cb%3Ac.py,line=3,")
        assert "%0A" in annotation and "%25" in annotation
        assert "\n" not in annotation

    def test_output_report_is_written_atomically(self, tmp_path, capsys):
        report_path = tmp_path / "nested" / "report.json"
        code = main(
            [
                str(DATA / "bad_pickle_safety.py"),
                "--no-registry",
                "--rules",
                "pickle-safety",
                "--output",
                str(report_path),
            ]
        )
        assert code == 1
        report = json.loads(report_path.read_text())
        assert report["tool"] == "repro-lint"
        assert report["rules"] == ["pickle-safety"]
        assert report["count"] == len(report["findings"]) > 0
        assert all(
            set(item) == {"path", "line", "rule", "message"}
            for item in report["findings"]
        )
        assert not list(report_path.parent.glob("*.tmp"))  # no torn temp left

    def test_cli_subcommand_forwards_github_and_output(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        report_path = tmp_path / "report.json"
        code = cli_main(
            [
                "lint",
                str(DATA / "allowed_pickle_safety.py"),
                "--no-registry",
                "--rules",
                "pickle-safety",
                "--format",
                "github",
                "--output",
                str(report_path),
            ]
        )
        assert code == 0
        assert json.loads(report_path.read_text())["count"] == 0


# --------------------------------------------------------------------------- #
# the real tree, under the flow rules specifically
# --------------------------------------------------------------------------- #
class TestSourceTreeFlowClean:
    def test_src_repro_passes_the_flow_rules(self):
        findings = run_lint([SRC_ROOT], rules=FLOW_RULES, include_project=False)
        assert findings == [], "\n" + "\n".join(str(f) for f in findings)

    def test_benchmarks_and_trace_generator_pass(self):
        targets = [
            Path(__file__).parents[1] / "benchmarks",
            Path(__file__).parent / "make_golden_traces.py",
        ]
        findings = run_lint(
            targets, rules=["determinism", *FLOW_RULES], include_project=False
        )
        assert findings == [], "\n" + "\n".join(str(f) for f in findings)
