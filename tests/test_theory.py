"""Tests for the executable theory helpers (edge probabilities, Lemma 2)."""

import numpy as np
import pytest

from repro.analysis import theory
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


class TestPushEdgeProbability:
    def test_existing_edge_and_self_loop_are_zero(self):
        g = gen.complete_graph(4)
        assert theory.push_edge_probability(g, 0, 1) == 0.0
        assert theory.push_edge_probability(g, 2, 2) == 0.0

    def test_k4_minus_edge_matches_hand_computation(self):
        # Missing edge (0,1) in K4-minus-matching: two common neighbours of
        # degree 3 each add it with probability 2/9, independently.
        g = gen.complete_minus_matching(4, 1)
        expected = 1.0 - (1.0 - 2.0 / 9.0) ** 2
        assert theory.push_edge_probability(g, 0, 1) == pytest.approx(expected)

    def test_no_common_neighbor_means_zero(self):
        g = gen.path_graph(4)
        assert theory.push_edge_probability(g, 0, 3) == 0.0

    def test_matches_simulation_frequency(self):
        g = gen.star_graph(6)  # any leaf pair is created only by the centre
        p_theory = theory.push_edge_probability(g, 1, 2)
        rng = np.random.default_rng(0)
        hits = 0
        trials = 4000
        for _ in range(trials):
            work = g.copy()
            PushDiscovery(work, rng=rng).step()
            if work.has_edge(1, 2):
                hits += 1
        p_emp = hits / trials
        assert abs(p_emp - p_theory) < 0.03


class TestPullEdgeProbability:
    def test_zero_cases(self):
        g = gen.complete_graph(3)
        assert theory.pull_edge_probability(g, 0, 1) == 0.0
        assert theory.pull_edge_probability(g, 1, 1) == 0.0

    def test_path_two_hop(self):
        # On the path 0-1-2, node 0 reaches 2 via 1 with prob (1/1)*(1/2).
        g = gen.path_graph(3)
        assert theory.pull_edge_probability(g, 0, 2) == pytest.approx(0.5)
        # node 2 symmetrically reaches 0 with prob 0.5
        assert theory.pull_edge_probability(g, 2, 0) == pytest.approx(0.5)

    def test_matches_simulation_frequency(self):
        g = gen.cycle_graph(6)
        p_u = theory.pull_edge_probability(g, 0, 2)
        p_w = theory.pull_edge_probability(g, 2, 0)
        p_pair = 1.0 - (1.0 - p_u) * (1.0 - p_w)
        rng = np.random.default_rng(1)
        hits = 0
        trials = 4000
        for _ in range(trials):
            work = g.copy()
            PullDiscovery(work, rng=rng).step()
            if work.has_edge(0, 2):
                hits += 1
        assert abs(hits / trials - p_pair) < 0.03


class TestDirectedEdgeProbability:
    def test_directed_cycle(self):
        g = dgen.directed_cycle(5)
        # out-degree 1 everywhere: u -> u+2 is added with probability 1.
        assert theory.directed_edge_probability(g, 0, 2) == pytest.approx(1.0)
        assert theory.directed_edge_probability(g, 0, 3) == 0.0

    def test_zero_for_existing_or_self(self):
        g = dgen.complete_digraph(3)
        assert theory.directed_edge_probability(g, 0, 1) == 0.0
        assert theory.directed_edge_probability(g, 1, 1) == 0.0


class TestExpectedNewEdges:
    def test_complete_graph_zero(self):
        g = gen.complete_graph(5)
        assert theory.expected_new_edges_push(g) == 0.0
        assert theory.expected_new_edges_pull(g) == 0.0

    def test_push_expectation_matches_simulation(self):
        g = gen.cycle_graph(8)
        expected = theory.expected_new_edges_push(g)
        rng = np.random.default_rng(2)
        added = []
        for _ in range(2000):
            work = g.copy()
            result = PushDiscovery(work, rng=rng).step()
            added.append(result.num_added)
        assert abs(np.mean(added) - expected) < 0.15

    def test_pull_expectation_matches_simulation(self):
        g = gen.cycle_graph(8)
        expected = theory.expected_new_edges_pull(g)
        rng = np.random.default_rng(3)
        added = []
        for _ in range(2000):
            work = g.copy()
            result = PullDiscovery(work, rng=rng).step()
            added.append(result.num_added)
        assert abs(np.mean(added) - expected) < 0.15


class TestLemma2:
    def test_bound_value(self):
        assert theory.lemma2_round_bound(10, c=1.0) == pytest.approx(2 * 10 * np.log(10))
        with pytest.raises(ValueError):
            theory.lemma2_round_bound(1)
        with pytest.raises(ValueError):
            theory.lemma2_round_bound(10, c=0)

    def test_empirical_tail_respects_bound(self):
        fraction, bound = theory.lemma2_empirical_quantile(
            m=30, trials=300, c=1.0, rng=np.random.default_rng(4)
        )
        # Lemma 2 promises < 1/m = 1/30; allow slack for Monte-Carlo noise.
        assert fraction <= 0.05
        assert bound == pytest.approx(2 * 30 * np.log(30))

    def test_empirical_validation_args(self):
        with pytest.raises(ValueError):
            theory.lemma2_empirical_quantile(m=10, k=20)
