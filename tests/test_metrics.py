"""Unit tests for the per-round metrics recorder."""

import pytest

from repro.core.directed import DirectedTwoHopWalk
from repro.core.metrics import MetricsRecorder, RoundMetrics
from repro.core.push import PushDiscovery
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen


class TestMetricsRecorder:
    def test_records_every_round(self):
        g = gen.cycle_graph(10)
        proc = PushDiscovery(g, rng=0)
        recorder = MetricsRecorder()
        proc.run(15, callbacks=[recorder])
        assert len(recorder) == 15
        assert [m.round_index for m in recorder.history] == list(range(15))

    def test_entry_fields_consistent(self):
        g = gen.cycle_graph(10)
        proc = PushDiscovery(g, rng=0)
        recorder = MetricsRecorder()
        proc.run(5, callbacks=[recorder])
        last = recorder.history[-1]
        assert isinstance(last, RoundMetrics)
        assert last.num_edges == g.number_of_edges()
        assert last.min_degree == g.min_degree()
        assert last.missing_edges == g.missing_edges()
        assert last.mean_degree == pytest.approx(2 * g.number_of_edges() / g.n)

    def test_expensive_metrics_cadence(self):
        g = gen.cycle_graph(8)
        proc = PushDiscovery(g, rng=0)
        recorder = MetricsRecorder(expensive_every=2)
        proc.run(6, callbacks=[recorder])
        # rounds 0, 2, 4 have diameter; 1, 3, 5 do not
        assert recorder.history[0].diameter is not None
        assert recorder.history[1].diameter is None
        assert recorder.history[2].diameter is not None

    def test_expensive_disabled_by_default(self):
        g = gen.cycle_graph(8)
        proc = PushDiscovery(g, rng=0)
        recorder = MetricsRecorder()
        proc.run(3, callbacks=[recorder])
        assert all(m.diameter is None for m in recorder.history)

    def test_directed_graph_metrics(self):
        g = dgen.directed_cycle(8)
        proc = DirectedTwoHopWalk(g, rng=0)
        recorder = MetricsRecorder()
        proc.run(4, callbacks=[recorder])
        assert len(recorder) == 4
        assert recorder.history[0].min_degree >= 1

    def test_as_arrays_and_series(self):
        g = gen.cycle_graph(10)
        proc = PushDiscovery(g, rng=0)
        recorder = MetricsRecorder()
        proc.run(10, callbacks=[recorder])
        arrays = recorder.as_arrays()
        assert set(arrays) >= {"round_index", "num_edges", "min_degree"}
        assert len(arrays["num_edges"]) == 10
        assert recorder.min_degree_series().shape == (10,)
        assert (recorder.edges_series()[1:] >= recorder.edges_series()[:-1]).all()

    def test_empty_recorder(self):
        recorder = MetricsRecorder()
        assert recorder.as_arrays() == {}
        assert len(recorder) == 0

    def test_clear(self):
        g = gen.cycle_graph(8)
        proc = PushDiscovery(g, rng=0)
        recorder = MetricsRecorder()
        proc.run(3, callbacks=[recorder])
        recorder.clear()
        assert len(recorder) == 0
