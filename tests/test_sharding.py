"""The sharded round engine's trace contract and plumbing.

Three-way contract (see :mod:`repro.simulation.sharding`):

* ``shards=1`` delegates to the wrapped process — draw-for-draw identical
  to the unsharded array backend;
* a fixed ``(seed, shard count)`` always reproduces the same trajectory,
  in-process and on the process pool alike;
* the per-round shard streams are shard-count invariant, so for push and
  pull (and trivially for the deterministic flooding) the edge trajectory
  is *identical* for any ``shards >= 2``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import cli
from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.base import UpdateSemantics
from repro.core.directed import DirectedTwoHopWalk
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.core.variants import FaultyPushDiscovery
from repro.graphs import bitset
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.simulation.engine import make_process
from repro.simulation.experiment import ExperimentSpec
from repro.simulation.runner import run_trials
from repro.simulation.sharding import SHARDABLE_PROCESSES, ShardPlan, ShardedProcess


def canon(edges):
    return [tuple(sorted((int(u), int(v)))) for u, v in edges]


def trajectory(process_cls, n, seed, shards, rounds=6, parallel=False, **kwargs):
    """Per-round canonical added-edge lists of a sharded run."""
    process = process_cls(gen.cycle_graph(n), rng=seed, backend="array", **kwargs)
    with ShardedProcess(process, shards=shards, parallel=parallel) as sharded:
        return [sorted(canon(sharded.step().added_edges)) for _ in range(rounds)]


def directed_trajectory(process_cls, n, seed, shards, rounds=6, parallel=False):
    """Per-round ordered added-edge lists of a sharded run on a strong digraph."""
    process = process_cls(dgen.thm15_strong_lower_bound(n), rng=seed, backend="array")
    with ShardedProcess(process, shards=shards, parallel=parallel) as sharded:
        return [
            sorted((int(u), int(v)) for u, v in sharded.step().added_edges)
            for _ in range(rounds)
        ]


class TestShardPlan:
    def test_bounds_cover_rows_contiguously(self):
        plan = ShardPlan(10, 3)
        assert plan.bounds == [(0, 3), (3, 6), (6, 10)]
        assert plan.bounds[0][0] == 0 and plan.bounds[-1][1] == 10
        for (_, hi), (lo, _) in zip(plan.bounds, plan.bounds[1:]):
            assert hi == lo

    def test_shards_clamped_to_n(self):
        assert ShardPlan(4, 9).shards == 4
        assert ShardPlan(0, 3).shards == 1

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            ShardPlan(8, 0)
        with pytest.raises(ValueError):
            ShardPlan(-1, 2)


class TestShardMergeKernels:
    def test_or_into_range_matches_reference(self):
        rng = np.random.default_rng(0)
        mat = rng.random((9, 130)) < 0.3
        block = rng.random((4, 130)) < 0.3
        dst = bitset.pack_bool_matrix(mat)
        bitset.or_into_range(dst, 3, bitset.pack_bool_matrix(block))
        ref = mat.copy()
        ref[3:7] |= block
        assert np.array_equal(bitset.unpack_bool_matrix(dst, 130), ref)

    def test_or_into_range_rejects_bad_ranges(self):
        dst = bitset.zeros(4, 64)
        with pytest.raises(ValueError):
            bitset.or_into_range(dst, 2, bitset.zeros(3, 64))
        with pytest.raises(ValueError):
            bitset.or_into_range(dst, 0, bitset.zeros(2, 128))

    def test_delta_rows_edges_and_ranges(self):
        base = bitset.zeros(6, 6)
        bitset.set_bit(base, 0, 1)
        bitset.set_bit(base, 1, 0)
        delta = bitset.DeltaRows(6, 6)
        # duplicate proposals and an already-present edge collapse correctly
        delta.add_edges(np.array([0, 2, 2]), np.array([1, 4, 4]))
        block = bitset.zeros(2, 6)
        bitset.set_bit(block, 0, 5)  # row 3 learns 5
        bitset.set_bit(block, 1, 3)  # row 4 learns 3 (mirror of a row-block merge)
        delta.or_into_range(3, block)
        us, vs = delta.new_edges(base)
        assert list(zip(us.tolist(), vs.tolist())) == [(2, 4), (3, 5)]

    def test_delta_rows_directed_drops_self_loops_only(self):
        delta = bitset.DeltaRows(4, 4)
        delta.add_edges(np.array([1, 2, 3]), np.array([0, 2, 1]), directed=True)
        us, vs = delta.new_edges(bitset.zeros(4, 4), directed=True)
        assert list(zip(us.tolist(), vs.tolist())) == [(1, 0), (3, 1)]


class TestTraceContract:
    @pytest.mark.parametrize("process_cls", [PushDiscovery, PullDiscovery])
    def test_shards_1_is_draw_for_draw_unsharded(self, process_cls):
        plain = process_cls(gen.cycle_graph(20), rng=5, backend="array")
        ref = [sorted(canon(plain.step().added_edges)) for _ in range(6)]
        assert trajectory(process_cls, 20, 5, shards=1) == ref
        # ...and the wrapped process's generator consumed the same stream.
        wrapped = process_cls(gen.cycle_graph(20), rng=5, backend="array")
        sharded = ShardedProcess(wrapped, shards=1)
        for _ in range(6):
            sharded.step()
        assert (
            plain.rng.bit_generator.state == wrapped.rng.bit_generator.state
        )

    @pytest.mark.parametrize("process_cls", [PushDiscovery, PullDiscovery])
    def test_fixed_seed_fixed_trajectory(self, process_cls):
        assert trajectory(process_cls, 24, 7, shards=3) == trajectory(
            process_cls, 24, 7, shards=3
        )

    @pytest.mark.parametrize("process_cls", [PushDiscovery, PullDiscovery])
    def test_cross_shard_count_equivalence(self, process_cls):
        """The pinned invariant: any shards >= 2 yields the same trajectory."""
        reference = trajectory(process_cls, 24, 7, shards=2)
        for shards in (3, 4, 5):
            assert trajectory(process_cls, 24, 7, shards=shards) == reference

    def test_push_without_replacement_sharded(self):
        a = trajectory(PushDiscovery, 20, 3, shards=2, without_replacement=True)
        b = trajectory(PushDiscovery, 20, 3, shards=4, without_replacement=True)
        assert a == b

    def test_flooding_sharded_equals_unsharded_rounds(self):
        """Flooding draws no randomness: sharded rounds add the same edge sets."""
        plain = NeighborhoodFlooding(gen.cycle_graph(32), rng=0, backend="array")
        ref = []
        while not plain.is_converged():
            ref.append(sorted(canon(plain.step().added_edges)))
        for shards in (2, 3):
            proc = NeighborhoodFlooding(gen.cycle_graph(32), rng=0, backend="array")
            with ShardedProcess(proc, shards=shards, parallel=False) as sharded:
                got = []
                while not sharded.is_converged():
                    got.append(sorted(canon(sharded.step().added_edges)))
            assert got == ref
            assert proc.total_messages == plain.total_messages
            assert proc.total_bits == plain.total_bits

    def test_sharded_messages_match_unsharded_totals(self):
        """Accounting is activation-shaped, not stream-shaped: totals agree."""
        plain = PushDiscovery(gen.cycle_graph(24), rng=1, backend="array")
        for _ in range(5):
            plain.step()
        proc = PushDiscovery(gen.cycle_graph(24), rng=1, backend="array")
        with ShardedProcess(proc, shards=3) as sharded:
            for _ in range(5):
                sharded.step()
        assert proc.total_messages == plain.total_messages
        assert proc.total_bits == plain.total_bits

    def test_run_to_convergence_completes_the_graph(self):
        proc = PullDiscovery(gen.cycle_graph(16), rng=1, backend="array")
        with ShardedProcess(proc, shards=2) as sharded:
            result = sharded.run_to_convergence(record_history=True)
        assert result.converged
        assert proc.graph.is_complete()
        assert result.rounds == len(result.history)
        assert sum(r.num_added for r in result.history) == result.total_edges_added


class TestFullRegistryTraceContract:
    """PR 5: the directed walk and the payload baselines are shardable too."""

    def test_registry_is_fully_shardable(self):
        assert set(SHARDABLE_PROCESSES) == {
            PushDiscovery,
            PullDiscovery,
            DirectedTwoHopWalk,
            NeighborhoodFlooding,
            NameDropper,
            RandomPointerJump,
        }

    @pytest.mark.parametrize("process_cls", [NameDropper, RandomPointerJump])
    def test_shards_1_is_draw_for_draw_unsharded_payload(self, process_cls):
        plain = process_cls(gen.cycle_graph(20), rng=5, backend="array")
        ref = [sorted(canon(plain.step().added_edges)) for _ in range(6)]
        wrapped = process_cls(gen.cycle_graph(20), rng=5, backend="array")
        sharded = ShardedProcess(wrapped, shards=1)
        got = [sorted(canon(sharded.step().added_edges)) for _ in range(6)]
        assert got == ref
        assert plain.rng.bit_generator.state == wrapped.rng.bit_generator.state

    def test_shards_1_is_draw_for_draw_unsharded_directed_walk(self):
        plain = DirectedTwoHopWalk(
            dgen.thm15_strong_lower_bound(16), rng=4, backend="array"
        )
        ref = [sorted(map(tuple, plain.step().added_edges)) for _ in range(6)]
        wrapped = DirectedTwoHopWalk(
            dgen.thm15_strong_lower_bound(16), rng=4, backend="array"
        )
        sharded = ShardedProcess(wrapped, shards=1)
        got = [sorted(map(tuple, sharded.step().added_edges)) for _ in range(6)]
        assert got == ref
        assert plain.rng.bit_generator.state == wrapped.rng.bit_generator.state

    @pytest.mark.parametrize("process_cls", [NameDropper, RandomPointerJump])
    def test_fixed_seed_fixed_trajectory_payload(self, process_cls):
        assert trajectory(process_cls, 24, 7, shards=3) == trajectory(
            process_cls, 24, 7, shards=3
        )

    @pytest.mark.parametrize("process_cls", [NameDropper, RandomPointerJump])
    def test_cross_shard_count_equivalence_payload(self, process_cls):
        reference = trajectory(process_cls, 24, 7, shards=2)
        for shards in (3, 4, 5):
            assert trajectory(process_cls, 24, 7, shards=shards) == reference

    def test_cross_shard_count_equivalence_directed_walk(self):
        reference = directed_trajectory(DirectedTwoHopWalk, 24, 7, shards=2)
        for shards in (3, 4, 5):
            assert directed_trajectory(DirectedTwoHopWalk, 24, 7, shards=shards) == reference

    def test_cross_shard_count_equivalence_directed_pointer_jump(self):
        reference = directed_trajectory(RandomPointerJump, 20, 9, shards=2)
        for shards in (3, 4):
            assert directed_trajectory(RandomPointerJump, 20, 9, shards=shards) == reference

    def test_sharded_walk_converges_to_transitive_closure(self):
        proc = DirectedTwoHopWalk(
            dgen.thm15_strong_lower_bound(12), rng=3, backend="array"
        )
        with ShardedProcess(proc, shards=3) as sharded:
            result = sharded.run_to_convergence()
        assert result.converged
        assert proc.closure_deficit_count() == 0
        # the strong construction's closure is the complete digraph
        assert proc.graph.number_of_edges() == 12 * 11

    @pytest.mark.parametrize("process_cls", [NameDropper, RandomPointerJump])
    def test_sharded_payload_rounds_complete_the_graph(self, process_cls):
        proc = process_cls(gen.cycle_graph(16), rng=1, backend="array")
        with ShardedProcess(proc, shards=2) as sharded:
            result = sharded.run_to_convergence()
        assert result.converged
        assert proc.graph.is_complete()

    def test_sharded_directed_pointer_jump_tracks_closure(self):
        proc = RandomPointerJump(
            dgen.thm15_strong_lower_bound(12), rng=2, backend="array"
        )
        with ShardedProcess(proc, shards=3) as sharded:
            result = sharded.run_to_convergence()
        assert result.converged
        assert proc.is_converged()
        assert not proc._missing

    @pytest.mark.parametrize(
        "process_cls, graph_factory",
        [
            (NameDropper, lambda: gen.star_graph(20)),
            (RandomPointerJump, lambda: gen.cycle_graph(20)),
        ],
    )
    def test_round_accounting_matches_unsharded_start_state(
        self, process_cls, graph_factory
    ):
        """Messages are activation-shaped: round 0 matches the unsharded round 0."""
        plain = process_cls(graph_factory(), rng=3, backend="array")
        ref = plain.step()
        proc = process_cls(graph_factory(), rng=3, backend="array")
        with ShardedProcess(proc, shards=4) as sharded:
            got = sharded.step()
        assert got.messages_sent == ref.messages_sent
        if process_cls is NameDropper:
            # name-dropper payload sizes depend only on the round-start degrees
            assert got.bits_sent == ref.bits_sent

    @pytest.mark.parametrize(
        "process_cls", [NameDropper, RandomPointerJump, DirectedTwoHopWalk]
    )
    def test_parallel_matches_serial_new_kinds(self, process_cls):
        if process_cls is DirectedTwoHopWalk:
            serial = directed_trajectory(process_cls, 24, 5, shards=3, rounds=4)
            parallel = directed_trajectory(
                process_cls, 24, 5, shards=3, rounds=4, parallel=True
            )
        else:
            serial = trajectory(process_cls, 24, 5, shards=3, rounds=4)
            parallel = trajectory(process_cls, 24, 5, shards=3, rounds=4, parallel=True)
        assert parallel == serial


class TestParallelPath:
    """The process-pool path is semantics-identical to the in-process path."""

    def test_parallel_push_matches_serial(self):
        assert trajectory(PushDiscovery, 20, 5, shards=2, parallel=True) == trajectory(
            PushDiscovery, 20, 5, shards=2, parallel=False
        )

    def test_parallel_flooding_matches_serial(self):
        serial = trajectory(NeighborhoodFlooding, 32, 0, shards=3, rounds=4)
        parallel = trajectory(
            NeighborhoodFlooding, 32, 0, shards=3, rounds=4, parallel=True
        )
        assert parallel == serial


class TestValidation:
    def test_rejects_unshardable_process(self):
        # Kernel registration is exact-type: a subclass that customises the
        # proposal rule (the faulty variants) must opt in explicitly.
        from repro.graphs.array_adjacency import as_backend

        proc = FaultyPushDiscovery(
            as_backend(gen.cycle_graph(8), "array"), failure_prob=0.1, rng=0
        )
        with pytest.raises(ValueError, match="no sharded round kernel"):
            ShardedProcess(proc, shards=2)

    def test_rejects_list_backend(self):
        with pytest.raises(ValueError, match="array graph backend"):
            ShardedProcess(PushDiscovery(gen.cycle_graph(8), rng=0), shards=2)

    def test_rejects_sequential_semantics(self):
        proc = PushDiscovery(
            gen.cycle_graph(8), rng=0, semantics=UpdateSemantics.SEQUENTIAL, backend="array"
        )
        with pytest.raises(ValueError, match="synchronous"):
            ShardedProcess(proc, shards=2)

    def test_rejects_patched_activation(self):
        from repro.core.scheduler import FixedSubsetActivation, ScheduledProcess

        proc = PushDiscovery(gen.cycle_graph(8), rng=0, backend="array")
        ScheduledProcess(proc, FixedSubsetActivation([0, 1]))
        with pytest.raises(ValueError, match="full activation"):
            ShardedProcess(proc, shards=2)

    def test_schedule_cannot_wrap_sharded_process(self):
        """The reverse composition is rejected too: a schedule patched onto a
        ShardedProcess would be a silent no-op (multi-shard rounds assume
        full activation) — the exact bug class this PR's headline fix closed."""
        from repro.core.scheduler import FixedSubsetActivation, ScheduledProcess

        proc = PushDiscovery(gen.cycle_graph(8), rng=0, backend="array")
        sharded = ShardedProcess(proc, shards=2)
        with pytest.raises(TypeError, match="inner process"):
            ScheduledProcess(sharded, FixedSubsetActivation([0, 1]))


class TestHarnessPlumbing:
    def test_make_process_requires_array_backend_for_shards(self):
        with pytest.raises(ValueError, match="backend='array'"):
            make_process("push", gen.cycle_graph(8), rng=0, shards=2)

    def test_make_process_accepts_graph_already_on_array_backend(self):
        """The shard gate reads the actual graph backend, not just the kwarg."""
        from repro.graphs.array_adjacency import as_backend

        proc = make_process("push", as_backend(gen.cycle_graph(8), "array"), rng=0, shards=2)
        assert isinstance(proc, ShardedProcess)
        proc.close()

    def test_make_process_rejects_nonpositive_shards(self):
        for shards in (0, -2):
            with pytest.raises(ValueError, match=">= 1"):
                make_process("push", gen.cycle_graph(8), rng=0, backend="array", shards=shards)

    def test_make_process_builds_sharded_wrapper(self):
        proc = make_process("push", gen.cycle_graph(12), rng=0, backend="array", shards=3)
        assert isinstance(proc, ShardedProcess)
        assert proc.shards == 3
        assert proc.backend == "array"
        run = proc.run_to_convergence()
        proc.close()
        assert run.converged

    def test_run_trials_with_shards_is_deterministic(self):
        spec = ExperimentSpec(
            process="push",
            family="cycle",
            n=24,
            trials=2,
            backend="array",
            shards=2,
            shard_parallel=False,
        )
        a = run_trials(spec, root_seed=99)
        b = run_trials(spec, root_seed=99)
        assert [(t.rounds, t.edges_added, t.messages) for t in a] == [
            (t.rounds, t.edges_added, t.messages) for t in b
        ]
        assert all(t.converged for t in a)

    def test_run_trials_shards_1_matches_presharding_results(self):
        """shards=1 specs reproduce the exact pre-sharding trial results."""
        base = ExperimentSpec(process="pull", family="cycle", n=20, trials=2, backend="array")
        sharded = ExperimentSpec(
            process="pull", family="cycle", n=20, trials=2, backend="array", shards=1
        )
        a = run_trials(base, root_seed=7)
        b = run_trials(sharded, root_seed=7)
        assert [(t.rounds, t.edges_added) for t in a] == [
            (t.rounds, t.edges_added) for t in b
        ]

    def test_cli_accepts_shards(self, capsys):
        assert (
            cli.main(
                [
                    "run",
                    "--process",
                    "push",
                    "--family",
                    "cycle",
                    "--n",
                    "24",
                    "--trials",
                    "2",
                    "--seed",
                    "3",
                    "--backend",
                    "array",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "rounds_mean" in out
