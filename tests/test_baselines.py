"""Unit tests for the baseline algorithms (Name Dropper, Pointer Jump, Flooding)."""

import numpy as np
import pytest

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.push import PushDiscovery
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.graphs.adjacency import DynamicDiGraph
from repro.graphs.closure import is_transitively_closed


class TestNameDropper:
    def test_requires_undirected(self):
        with pytest.raises(TypeError):
            NameDropper(DynamicDiGraph(3, [(0, 1)]))

    def test_converges_fast(self):
        g = gen.path_graph(16)
        proc = NameDropper(g, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert g.is_complete()
        # polylogarithmic: far fewer rounds than n
        assert result.rounds < 16

    def test_messages_are_large(self):
        g = gen.complete_graph(16)
        # one step on an (almost) complete graph sends ~n IDs per message
        g2 = gen.complete_minus_matching(16, 1)
        proc = NameDropper(g2, rng=0)
        result = proc.step()
        id_bits = int(np.ceil(np.log2(16)))
        # each of the 16 nodes sends one message with ~15 IDs
        assert result.bits_sent > 16 * 10 * id_bits

    def test_round_cap_polylog(self):
        # Name Dropper's safety cap is polylogarithmic, hence far below the
        # O(n log^2 n)-shaped cap of the push process at the same size.
        nd_cap = NameDropper(gen.cycle_graph(64), rng=0).default_round_cap()
        push_cap = PushDiscovery(gen.cycle_graph(64), rng=0).default_round_cap()
        assert nd_cap < push_cap / 10

    def test_propose_not_used(self):
        proc = NameDropper(gen.cycle_graph(8), rng=0)
        with pytest.raises(NotImplementedError):
            proc.propose(0)

    def test_much_fewer_rounds_than_push(self):
        nd_rounds = NameDropper(gen.cycle_graph(24), rng=1).run_to_convergence().rounds
        push_rounds = PushDiscovery(gen.cycle_graph(24), rng=1).run_to_convergence().rounds
        assert nd_rounds < push_rounds


class TestRandomPointerJump:
    def test_undirected_converges_to_complete(self):
        g = gen.cycle_graph(12)
        proc = RandomPointerJump(g, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert g.is_complete()

    def test_directed_converges_to_closure(self):
        g = dgen.directed_cycle(8)
        proc = RandomPointerJump(g, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert is_transitively_closed(g)
        assert g.number_of_edges() == 8 * 7

    def test_directed_weakly_connected(self):
        g = dgen.layered_dag(3, 2)
        proc = RandomPointerJump(g, rng=1)
        assert proc.run_to_convergence().converged
        assert is_transitively_closed(g)

    def test_propose_not_used(self):
        with pytest.raises(NotImplementedError):
            RandomPointerJump(gen.cycle_graph(6), rng=0).propose(0)

    def test_already_converged_digraph(self):
        g = dgen.complete_digraph(5)
        proc = RandomPointerJump(g, rng=0)
        assert proc.is_converged()
        assert proc.run_to_convergence().rounds == 0


class TestNeighborhoodFlooding:
    def test_requires_undirected(self):
        with pytest.raises(TypeError):
            NeighborhoodFlooding(DynamicDiGraph(3, [(0, 1)]))

    def test_converges_in_log_diameter_rounds(self):
        g = gen.path_graph(17)  # diameter 16
        proc = NeighborhoodFlooding(g, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert g.is_complete()
        # knowledge radius roughly doubles per round: ceil(log2(16)) + small slack
        assert result.rounds <= 6

    def test_propose_not_used(self):
        with pytest.raises(NotImplementedError):
            NeighborhoodFlooding(gen.cycle_graph(6), rng=0).propose(0)

    def test_uses_far_more_bits_per_round_than_push(self):
        flood_g = gen.cycle_graph(16)
        flood = NeighborhoodFlooding(flood_g, rng=0)
        flood_result = flood.run_to_convergence()
        push_g = gen.cycle_graph(16)
        push = PushDiscovery(push_g, rng=0)
        push.step()
        flood_bits_per_round = flood_result.total_bits / flood_result.rounds
        assert flood_bits_per_round > 10 * push.total_bits


class TestBaselineComparison:
    def test_rounds_ordering_flooding_namedropper_push(self):
        """The round-complexity ordering the paper describes: flooding <= name dropper << push."""
        seeds = [0, 1]
        flood = np.mean(
            [NeighborhoodFlooding(gen.cycle_graph(20), rng=s).run_to_convergence().rounds for s in seeds]
        )
        nd = np.mean(
            [NameDropper(gen.cycle_graph(20), rng=s).run_to_convergence().rounds for s in seeds]
        )
        push = np.mean(
            [PushDiscovery(gen.cycle_graph(20), rng=s).run_to_convergence().rounds for s in seeds]
        )
        assert flood <= nd <= push
        assert push > 5 * nd
