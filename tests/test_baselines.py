"""Unit tests for the baseline algorithms (Name Dropper, Pointer Jump, Flooding)."""

import numpy as np
import pytest

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.base import UpdateSemantics
from repro.core.push import PushDiscovery
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.graphs.adjacency import DynamicDiGraph
from repro.graphs.array_adjacency import as_backend
from repro.graphs.closure import is_transitively_closed


class TestNameDropper:
    def test_requires_undirected(self):
        with pytest.raises(TypeError):
            NameDropper(DynamicDiGraph(3, [(0, 1)]))

    def test_requires_undirected_array_backend(self):
        with pytest.raises(TypeError):
            NameDropper(as_backend(dgen.directed_cycle(6), "array"))

    def test_rejects_non_graph_objects(self):
        with pytest.raises(TypeError, match="protocol"):
            NameDropper(type("NotAGraph", (), {"directed": False})())

    def test_accepts_array_graph(self):
        graph = as_backend(gen.cycle_graph(12), "array")
        proc = NameDropper(graph, rng=0)
        assert proc.run_to_convergence().converged
        assert graph.is_complete()

    def test_converges_fast(self):
        g = gen.path_graph(16)
        proc = NameDropper(g, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert g.is_complete()
        # polylogarithmic: far fewer rounds than n
        assert result.rounds < 16

    def test_messages_are_large(self):
        g = gen.complete_graph(16)
        # one step on an (almost) complete graph sends ~n IDs per message
        g2 = gen.complete_minus_matching(16, 1)
        proc = NameDropper(g2, rng=0)
        result = proc.step()
        id_bits = int(np.ceil(np.log2(16)))
        # each of the 16 nodes sends one message with ~15 IDs
        assert result.bits_sent > 16 * 10 * id_bits

    def test_round_cap_polylog(self):
        # Name Dropper's safety cap is polylogarithmic, hence far below the
        # O(n log^2 n)-shaped cap of the push process at the same size.
        nd_cap = NameDropper(gen.cycle_graph(64), rng=0).default_round_cap()
        push_cap = PushDiscovery(gen.cycle_graph(64), rng=0).default_round_cap()
        assert nd_cap < push_cap / 10

    def test_propose_not_used(self):
        proc = NameDropper(gen.cycle_graph(8), rng=0)
        with pytest.raises(NotImplementedError):
            proc.propose(0)

    def test_much_fewer_rounds_than_push(self):
        nd_rounds = NameDropper(gen.cycle_graph(24), rng=1).run_to_convergence().rounds
        push_rounds = PushDiscovery(gen.cycle_graph(24), rng=1).run_to_convergence().rounds
        assert nd_rounds < push_rounds


class TestNameDropperDrawStream:
    """The RNG contract of both update semantics, pinned generator-state-exact."""

    @pytest.mark.parametrize("backend", ["list", "array"])
    def test_sequential_draws_once_per_active_node(self, backend):
        """Regression for the double-draw bug: one ``rng.integers`` per active
        node, and the round's effect equals the manual index-order replay
        (the old code pre-sampled a discarded pass first, consuming two
        draws per node and corrupting the sampling stream)."""
        base = gen.path_graph(10)
        proc = NameDropper(
            as_backend(base.copy(), backend),
            rng=np.random.default_rng(123),
            semantics=UpdateSemantics.SEQUENTIAL,
        )
        proc.step()
        replay = base.copy()
        rng = np.random.default_rng(123)
        for u in replay.nodes():
            nbrs = list(replay.neighbors(u))
            if not nbrs:
                continue
            v = nbrs[int(rng.integers(len(nbrs)))]
            for w in nbrs + [u]:
                if w != v:
                    replay.add_edge(v, w)
        assert sorted(map(tuple, proc.graph.edge_list())) == replay.edge_list()
        # Identical generator states <=> identical draw counts and kinds.
        assert proc.rng.bit_generator.state == rng.bit_generator.state

    @pytest.mark.parametrize("backend", ["list", "array"])
    def test_synchronous_consumes_one_bulk_draw(self, backend):
        """A synchronous round consumes exactly ``rng.random(n)`` — the shared
        bulk-draw convention that makes backends trace-identical."""
        proc = NameDropper(
            as_backend(gen.path_graph(10), backend), rng=np.random.default_rng(7)
        )
        proc.step()
        rng = np.random.default_rng(7)
        rng.random(10)
        assert proc.rng.bit_generator.state == rng.bit_generator.state

    def test_sequential_differs_from_synchronous(self):
        """Same seed, different semantics: sequential nodes exploit edges added
        earlier in the same round, so the first round already diverges."""
        base = gen.star_graph(9)
        sync = NameDropper(base.copy(), rng=2, semantics=UpdateSemantics.SYNCHRONOUS)
        seq = NameDropper(base.copy(), rng=2, semantics=UpdateSemantics.SEQUENTIAL)
        sync_added = sync.step().num_added
        seq_added = seq.step().num_added
        # The star's hub name-drop floods a leaf with every ID; under
        # sequential semantics later leaves can already use those edges.
        assert sync_added != seq_added or sync.graph.edge_list() != seq.graph.edge_list()


class TestRandomPointerJump:
    def test_undirected_converges_to_complete(self):
        g = gen.cycle_graph(12)
        proc = RandomPointerJump(g, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert g.is_complete()

    def test_directed_converges_to_closure(self):
        g = dgen.directed_cycle(8)
        proc = RandomPointerJump(g, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert is_transitively_closed(g)
        assert g.number_of_edges() == 8 * 7

    def test_directed_weakly_connected(self):
        g = dgen.layered_dag(3, 2)
        proc = RandomPointerJump(g, rng=1)
        assert proc.run_to_convergence().converged
        assert is_transitively_closed(g)

    def test_propose_not_used(self):
        with pytest.raises(NotImplementedError):
            RandomPointerJump(gen.cycle_graph(6), rng=0).propose(0)

    def test_already_converged_digraph(self):
        g = dgen.complete_digraph(5)
        proc = RandomPointerJump(g, rng=0)
        assert proc.is_converged()
        assert proc.run_to_convergence().rounds == 0

    def test_directed_array_backend_converges_to_closure(self):
        g = as_backend(dgen.directed_cycle(8), "array")
        proc = RandomPointerJump(g, rng=0)
        assert proc.run_to_convergence().converged
        assert is_transitively_closed(g)
        assert g.number_of_edges() == 8 * 7

    def test_sequential_semantics_sees_same_round_edges(self):
        """Sequential pointer jump applies immediately: later nodes can pull
        neighbour sets that already grew this round."""
        proc = RandomPointerJump(
            gen.path_graph(12), rng=3, semantics=UpdateSemantics.SEQUENTIAL
        )
        result = proc.run_to_convergence()
        assert result.converged
        assert proc.graph.is_complete()


class TestNeighborhoodFlooding:
    def test_requires_undirected(self):
        with pytest.raises(TypeError):
            NeighborhoodFlooding(DynamicDiGraph(3, [(0, 1)]))

    def test_requires_undirected_array_backend(self):
        with pytest.raises(TypeError):
            NeighborhoodFlooding(as_backend(dgen.directed_cycle(6), "array"))

    def test_accepts_array_graph(self):
        graph = as_backend(gen.path_graph(17), "array")
        proc = NeighborhoodFlooding(graph, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert graph.is_complete()
        assert result.rounds <= 6

    def test_packed_round_accounting_matches_reference(self):
        """One packed round reports the same messages/bits/added-edge set as
        the reference triple loop on the same starting graph."""
        base = gen.make_family("erdos_renyi", 24, np.random.default_rng(5))
        ref = NeighborhoodFlooding(base.copy(), rng=0).step()
        fast = NeighborhoodFlooding(as_backend(base.copy(), "array"), rng=0).step()
        assert fast.messages_sent == ref.messages_sent
        assert fast.bits_sent == ref.bits_sent
        canon = lambda edges: {tuple(sorted((int(u), int(v)))) for u, v in edges}
        assert canon(fast.added_edges) == canon(ref.added_edges)

    def test_packed_round_skips_proposal_materialisation(self):
        """The packed round never builds the Θ(n·m) proposal list (documented
        contract: accounting and added_edges are exact, proposals stay empty)."""
        proc = NeighborhoodFlooding(as_backend(gen.cycle_graph(12), "array"), rng=0)
        result = proc.step()
        assert result.num_added > 0
        assert result.proposed_edges == []

    def test_converges_in_log_diameter_rounds(self):
        g = gen.path_graph(17)  # diameter 16
        proc = NeighborhoodFlooding(g, rng=0)
        result = proc.run_to_convergence()
        assert result.converged
        assert g.is_complete()
        # knowledge radius roughly doubles per round: ceil(log2(16)) + small slack
        assert result.rounds <= 6

    def test_propose_not_used(self):
        with pytest.raises(NotImplementedError):
            NeighborhoodFlooding(gen.cycle_graph(6), rng=0).propose(0)

    def test_uses_far_more_bits_per_round_than_push(self):
        flood_g = gen.cycle_graph(16)
        flood = NeighborhoodFlooding(flood_g, rng=0)
        flood_result = flood.run_to_convergence()
        push_g = gen.cycle_graph(16)
        push = PushDiscovery(push_g, rng=0)
        push.step()
        flood_bits_per_round = flood_result.total_bits / flood_result.rounds
        assert flood_bits_per_round > 10 * push.total_bits


class TestBaselineComparison:
    def test_rounds_ordering_flooding_namedropper_push(self):
        """The round-complexity ordering the paper describes: flooding <= name dropper << push."""
        seeds = [0, 1]
        flood = np.mean(
            [NeighborhoodFlooding(gen.cycle_graph(20), rng=s).run_to_convergence().rounds for s in seeds]
        )
        nd = np.mean(
            [NameDropper(gen.cycle_graph(20), rng=s).run_to_convergence().rounds for s in seeds]
        )
        push = np.mean(
            [PushDiscovery(gen.cycle_graph(20), rng=s).run_to_convergence().rounds for s in seeds]
        )
        assert flood <= nd <= push
        assert push > 5 * nd
