"""Unit tests for the pull (two-hop walk) process."""

import pytest

from repro.core.base import UpdateSemantics
from repro.core.pull import PullDiscovery
from repro.graphs import generators as gen
from repro.graphs import properties as props
from repro.graphs import validation
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


class TestPullBasics:
    def test_requires_undirected_graph(self):
        with pytest.raises(TypeError):
            PullDiscovery(DynamicDiGraph(3, [(0, 1)]))

    def test_propose_endpoint_is_within_two_hops(self, small_cycle, rng):
        proc = PullDiscovery(small_cycle, rng=rng)
        two_hop = props.neighborhood_within_distance(small_cycle, 0, 2) | {0}
        for _ in range(50):
            edge = proc.propose(0)
            if edge is None:
                continue
            u, w = edge
            assert u == 0
            assert w in two_hop and w != 0

    def test_isolated_node_proposes_none(self, rng):
        g = DynamicGraph(3, [(1, 2)])
        proc = PullDiscovery(g, rng=rng)
        assert proc.propose(0) is None

    def test_walk_returning_home_is_no_proposal(self, rng):
        # On a single edge the two-hop walk always returns to the start.
        g = DynamicGraph(2, [(0, 1)])
        proc = PullDiscovery(g, rng=rng)
        assert proc.propose(0) is None
        assert proc.propose(1) is None

    def test_two_node_graph_is_already_converged(self, rng):
        g = DynamicGraph(2, [(0, 1)])
        proc = PullDiscovery(g, rng=rng)
        assert proc.is_converged()

    def test_step_keeps_graph_valid(self, small_star, rng):
        proc = PullDiscovery(small_star, rng=rng)
        for _ in range(10):
            proc.step()
        assert validation.check_graph_invariants(small_star) == []

    def test_message_accounting_three_per_node(self, small_cycle, rng):
        proc = PullDiscovery(small_cycle, rng=rng)
        result = proc.step()
        assert result.messages_sent == 3 * small_cycle.n


class TestPullConvergence:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: gen.cycle_graph(10),
            lambda: gen.path_graph(10),
            lambda: gen.star_graph(10),
            lambda: gen.lollipop_graph(5, 4),
            lambda: gen.grid_graph(3, 3),
        ],
    )
    def test_converges_to_complete_graph(self, graph_factory):
        graph = graph_factory()
        proc = PullDiscovery(graph, rng=17)
        result = proc.run_to_convergence()
        assert result.converged
        assert graph.is_complete()

    def test_determinism_same_seed(self):
        runs = []
        for _ in range(2):
            g = gen.path_graph(12)
            runs.append(PullDiscovery(g, rng=99).run_to_convergence().rounds)
        assert runs[0] == runs[1]

    def test_sequential_semantics_converges(self):
        g = gen.star_graph(10)
        proc = PullDiscovery(g, rng=3, semantics=UpdateSemantics.SEQUENTIAL)
        assert proc.run_to_convergence().converged

    def test_added_edges_always_incident_to_proposer(self):
        g = gen.cycle_graph(12)
        proc = PullDiscovery(g, rng=21)
        result = proc.step()
        # every pull proposal has the proposing node as one endpoint
        for u, w in result.proposed_edges:
            assert 0 <= u < 12 and 0 <= w < 12 and u != w

    def test_star_center_becomes_less_central(self):
        # On a star, pulls quickly connect leaves to each other.
        g = gen.star_graph(12)
        proc = PullDiscovery(g, rng=2)
        proc.run(30)
        leaf_edges = sum(
            1 for u, v in g.edges() if u != 0 and v != 0
        )
        assert leaf_edges > 0
