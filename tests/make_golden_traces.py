"""Regenerate the golden seeded traces under ``tests/data/``.

Run from the repository root after an *intentional* change to the RNG draw
convention (which invalidates the recorded traces)::

    PYTHONPATH=src python tests/make_golden_traces.py

The traces pin the exact per-round added edges of the reference (list)
backend; ``tests/test_golden_traces.py`` asserts that both backends still
reproduce them bit-for-bit.  Never regenerate to paper over an accidental
drift — the whole point is to catch one.

Two trace flavours are recorded:

* the gossip processes (push/pull) record each round's added edges in
  exact application order;
* the baselines (PR 3) record each round's added edges as canonically
  sorted ``(min, max)`` pairs (``canonical_edges: true`` in the JSON),
  because the packed flooding round discovers the same per-round edge
  sets in canonical rather than scan order — the *sets*, the round count
  and the message/bit totals are the pinned contract.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.graphs import generators as gen

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_SEED = 20120614
GOLDEN_N = 64

#: filename -> (process class, registry name, canonical-edge-order flag)
GOLDEN_CASES = {
    "golden_push_cycle_n64.json": (PushDiscovery, "push", False),
    "golden_pull_cycle_n64.json": (PullDiscovery, "pull", False),
    "golden_name_dropper_cycle_n64.json": (NameDropper, "name_dropper", True),
    "golden_pointer_jump_cycle_n64.json": (RandomPointerJump, "pointer_jump", True),
    "golden_flooding_cycle_n64.json": (NeighborhoodFlooding, "flooding", True),
}


def canonical_round(edges) -> list:
    """Canonically sorted ``[u, v]`` pairs (``u < v``) for one round."""
    return sorted([min(int(u), int(v)), max(int(u), int(v))] for u, v in edges)


def build_trace(process_cls, process_name: str, canonical: bool) -> dict:
    """Run the reference backend to convergence and serialise its trace."""
    graph = gen.cycle_graph(GOLDEN_N)
    process = process_cls(graph, rng=GOLDEN_SEED)
    result = process.run_to_convergence(record_history=True)
    assert result.converged, "golden runs must converge"
    added_by_round = [
        [
            r.round_index,
            canonical_round(r.added_edges)
            if canonical
            else [[int(u), int(v)] for u, v in r.added_edges],
        ]
        for r in result.history
        if r.added_edges
    ]
    return {
        "process": process_name,
        "family": "cycle",
        "n": GOLDEN_N,
        "seed": GOLDEN_SEED,
        "canonical_edges": canonical,
        "rounds": result.rounds,
        "total_edges_added": result.total_edges_added,
        "total_messages": result.total_messages,
        "total_bits": result.total_bits,
        "added_by_round": added_by_round,
    }


def main() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    for filename, (process_cls, name, canonical) in GOLDEN_CASES.items():
        trace = build_trace(process_cls, name, canonical)
        path = DATA_DIR / filename
        path.write_text(json.dumps(trace, separators=(",", ":")) + "\n")
        print(f"wrote {path} ({trace['rounds']} rounds, {trace['total_edges_added']} edges)")


if __name__ == "__main__":
    main()
