"""Property tests: word-packed bitset kernels ≡ naive boolean references.

Every kernel in :mod:`repro.graphs.bitset` has a one-line ``bool``-matrix
reference; hypothesis drives random matrices, random digraphs and random
edge batches through both and demands identical answers.  The closure
kernels are additionally checked against the original per-node Python BFS
(kept in :mod:`repro.graphs.closure` as the oracle), and the packed
membership storage of the array backend is pinned to the list backend's
behaviour under batches containing self loops and duplicates.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.push import PushDiscovery
from repro.graphs import bitset, closure
from repro.graphs import generators as gen
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.array_adjacency import ArrayDiGraph, ArrayGraph

FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def bool_matrices(draw, max_rows=9, max_bits=140):
    """A random boolean matrix whose width crosses word boundaries."""
    rows = draw(st.integers(min_value=0, max_value=max_rows))
    n_bits = draw(st.integers(min_value=0, max_value=max_bits))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.random((rows, n_bits)) < draw(st.floats(min_value=0.0, max_value=1.0))


@st.composite
def digraph_edge_lists(draw, max_nodes=12, max_edges=40):
    """A random (n, directed edge list) pair; repeats and self loops allowed."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    return n, edges


# --------------------------------------------------------------------------- #
# pack / unpack / bit ops
# --------------------------------------------------------------------------- #
class TestPackUnpack:
    @FAST
    @given(bool_matrices())
    def test_roundtrip(self, mat):
        packed = bitset.pack_bool_matrix(mat)
        assert packed.dtype == np.uint64
        assert packed.shape == (mat.shape[0], bitset.words_for(mat.shape[1]))
        assert np.array_equal(bitset.unpack_bool_matrix(packed, mat.shape[1]), mat)

    @FAST
    @given(bool_matrices())
    def test_popcounts_match_sum(self, mat):
        packed = bitset.pack_bool_matrix(mat)
        assert np.array_equal(bitset.row_popcounts(packed), mat.sum(axis=1))
        assert bitset.count_total(packed) == int(mat.sum())

    def test_zeros_allocates_word_rows(self):
        bits = bitset.zeros(5, 130)
        assert bits.shape == (5, 3)
        assert bits.dtype == np.uint64
        assert bitset.count_total(bits) == 0

    def test_memory_is_an_eighth_of_bool(self):
        n = 512
        assert bitset.zeros(n, n).nbytes * 8 == np.zeros((n, n), dtype=bool).nbytes


class TestBitOps:
    @FAST
    @given(bool_matrices(max_rows=8, max_bits=100), st.integers(0, 2**31 - 1))
    def test_get_set_clear_bits_match_reference(self, mat, seed):
        rows, n_bits = mat.shape
        if rows == 0 or n_bits == 0:
            return
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 25))
        rs = rng.integers(0, rows, size=k)
        cs = rng.integers(0, n_bits, size=k)

        packed = bitset.pack_bool_matrix(mat)
        assert np.array_equal(bitset.get_bits(packed, rs, cs), mat[rs, cs])

        bitset.set_bits(packed, rs, cs)
        ref = mat.copy()
        ref[rs, cs] = True
        assert np.array_equal(bitset.unpack_bool_matrix(packed, n_bits), ref)

        bitset.clear_bits(packed, rs, cs)
        ref[rs, cs] = False
        assert np.array_equal(bitset.unpack_bool_matrix(packed, n_bits), ref)

    @FAST
    @given(bool_matrices(max_rows=8, max_bits=100), st.integers(0, 2**31 - 1))
    def test_or_rows_matches_any(self, mat, seed):
        rows, n_bits = mat.shape
        if rows == 0:
            return
        rng = np.random.default_rng(seed)
        sel = np.flatnonzero(rng.random(rows) < 0.5)
        packed = bitset.pack_bool_matrix(mat)
        merged = bitset.or_rows(packed, sel)
        ref = mat[sel].any(axis=0) if sel.size else np.zeros(n_bits, dtype=bool)
        assert np.array_equal(
            bitset.unpack_bool_matrix(merged.reshape(1, -1), n_bits)[0], ref
        )

    @FAST
    @given(bool_matrices(max_rows=8, max_bits=100), st.integers(0, 2**31 - 1))
    def test_rows_or_into_matches_reference(self, mat, seed):
        """Scatter row-union delivery ≡ per-delivery ``|=`` on the bool matrix,
        including duplicate destinations and the chunked gather path."""
        rows, n_bits = mat.shape
        if rows == 0 or n_bits == 0:
            return
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 30))
        dst = rng.integers(0, rows, size=k)
        src = rng.integers(0, rows, size=k)
        packed = bitset.pack_bool_matrix(mat)
        bitset.rows_or_into(packed, dst, bitset.pack_bool_matrix(mat), src, chunk=3)
        ref = mat.copy()
        for d, s in zip(dst.tolist(), src.tolist()):
            ref[d] |= mat[s]
        assert np.array_equal(bitset.unpack_bool_matrix(packed, n_bits), ref)
        # payload-row form (one pre-gathered row per delivery)
        packed2 = bitset.pack_bool_matrix(mat)
        bitset.rows_or_into(packed2, dst, bitset.pack_bool_matrix(mat[src]), chunk=7)
        assert np.array_equal(bitset.unpack_bool_matrix(packed2, n_bits), ref)

    def test_rows_or_into_rejects_misaligned_payloads(self):
        bits = bitset.zeros(4, 10)
        with pytest.raises(ValueError):
            bitset.rows_or_into(bits, np.array([0, 1]), bitset.zeros(3, 10))
        with pytest.raises(ValueError):
            bitset.rows_or_into(bits, np.array([0, 1]), bits, np.array([0]))

    @FAST
    @given(bool_matrices(max_rows=8, max_bits=100), st.integers(0, 2**31 - 1))
    def test_delta_edges_matches_reference(self, mat, seed):
        rows, n_bits = mat.shape
        if rows == 0 or n_bits == 0 or rows != n_bits:
            return
        rng = np.random.default_rng(seed)
        grown = mat | (rng.random(mat.shape) < 0.3)
        old = bitset.pack_bool_matrix(mat)
        new = bitset.pack_bool_matrix(grown)
        us, vs = bitset.delta_edges(old, new, n_bits, directed=True)
        ref_us, ref_vs = np.nonzero(grown & ~mat)
        assert np.array_equal(us, ref_us) and np.array_equal(vs, ref_vs)
        # The undirected form reports each edge once (u < v) and never a
        # self loop, so the reference excludes the diagonal (k=1).
        uu, vu = bitset.delta_edges(old, new, n_bits, directed=False)
        ref_uu, ref_vu = np.nonzero(np.triu(grown & ~mat, k=1))
        assert np.array_equal(uu, ref_uu) and np.array_equal(vu, ref_vu)
        assert bool((uu < vu).all())

    @FAST
    @given(bool_matrices(max_rows=7, max_bits=80))
    def test_indices_and_transpose(self, mat):
        rows, n_bits = mat.shape
        packed = bitset.pack_bool_matrix(mat)
        for u in range(rows):
            assert np.array_equal(
                bitset.indices_from_bits(packed[u], n_bits), np.flatnonzero(mat[u])
            )
        if rows == n_bits:
            transposed = bitset.transpose_bits(packed, n_bits)
            assert np.array_equal(bitset.unpack_bool_matrix(transposed, n_bits), mat.T)


# --------------------------------------------------------------------------- #
# closure / reachability kernels vs the Python-BFS oracle
# --------------------------------------------------------------------------- #
class TestClosureKernels:
    @FAST
    @given(digraph_edge_lists())
    def test_closure_matches_bfs_oracle(self, n_edges):
        n, edges = n_edges
        g = DynamicDiGraph(n, edges)
        assert np.array_equal(
            closure.reachability_matrix(g), closure.reachability_matrix_bfs(g)
        )

    @FAST
    @given(digraph_edge_lists())
    def test_reachable_from_matches_bfs_oracle(self, n_edges):
        n, edges = n_edges
        g = DynamicDiGraph(n, edges)
        for source in range(n):
            assert closure.reachable_from(g, source) == closure.reachable_from_bfs(g, source)

    @FAST
    @given(digraph_edge_lists())
    def test_kernels_agree_across_backends(self, n_edges):
        n, edges = n_edges
        g_list = DynamicDiGraph(n, edges)
        g_array = ArrayDiGraph.from_graph(g_list)
        assert np.array_equal(
            closure.reachability_matrix(g_list), closure.reachability_matrix(g_array)
        )
        assert closure.transitive_closure_edges(g_list) == closure.transitive_closure_edges(
            g_array
        )
        assert closure.is_transitively_closed(g_list) == closure.is_transitively_closed(
            g_array
        )

    @FAST
    @given(digraph_edge_lists())
    def test_bfs_distances_bits_matches_queue_bfs(self, n_edges):
        n, edges = n_edges
        g = DynamicDiGraph(n, edges)
        bits = closure.adjacency_bits(g)
        for source in range(n):
            ref = np.full(n, -1, dtype=np.int64)
            ref[source] = 0
            frontier = [source]
            d = 0
            while frontier:
                d += 1
                nxt = []
                for u in frontier:
                    for v in g.out_neighbors(u):
                        if ref[v] < 0:
                            ref[v] = d
                            nxt.append(v)
                frontier = nxt
            assert np.array_equal(bitset.bfs_distances_bits(bits, source), ref)


# --------------------------------------------------------------------------- #
# packed membership storage ≡ naive bool-matrix graph behaviour
# --------------------------------------------------------------------------- #
class TestPackedMembershipStorage:
    @FAST
    @given(digraph_edge_lists(max_nodes=10, max_edges=35))
    def test_undirected_batches_match_bool_reference(self, n_edges):
        """Random batches (self loops, duplicates included) against DynamicGraph."""
        n, edges = n_edges
        ref = DynamicGraph(n)
        g = ArrayGraph(n)
        half = len(edges) // 2
        for batch in (edges[:half], edges[half:]):
            assert g.add_edges_batch(batch) == ref.add_edges_batch(batch)
        assert np.array_equal(g.adjacency_matrix(), ref.adjacency_matrix())
        assert np.array_equal(
            bitset.unpack_bool_matrix(g.adjacency_bits(), n), ref.adjacency_matrix()
        )
        for u, v in edges:
            assert g.has_edge(u, v) == ref.has_edge(u, v)
        assert not any(g.has_edge(u, u) for u in range(n))

    @FAST
    @given(digraph_edge_lists(max_nodes=10, max_edges=35))
    def test_directed_batches_match_bool_reference(self, n_edges):
        n, edges = n_edges
        ref = DynamicDiGraph(n)
        g = ArrayDiGraph(n)
        half = len(edges) // 2
        for batch in (edges[:half], edges[half:]):
            assert g.add_edges_batch(batch) == ref.add_edges_batch(batch)
        assert np.array_equal(g.adjacency_matrix(), ref.adjacency_matrix())
        for u, v in edges:
            assert g.has_edge(u, v) == ref.has_edge(u, v)
        assert not any(g.has_edge(u, u) for u in range(n))

    def test_membership_memory_is_packed(self):
        n = 256
        g = ArrayGraph(n)
        assert g.membership_nbytes() * 8 == np.zeros((n, n), dtype=bool).nbytes
        d = ArrayDiGraph(n)
        assert d.membership_nbytes() == g.membership_nbytes()


class TestGoldenTraceRegression:
    """The storage swap must not move a single trace byte (no RNG change)."""

    def test_array_backend_reproduces_golden_push_trace(self):
        golden = json.loads(
            (Path(__file__).parent / "data" / "golden_push_cycle_n64.json").read_text()
        )
        graph = gen.cycle_graph(golden["n"])
        process = PushDiscovery(graph, rng=golden["seed"], backend="array")
        assert isinstance(process.graph, ArrayGraph)
        # Storage really is packed words, not bytes.
        n = golden["n"]
        assert process.graph.membership_nbytes() == bitset.words_for(n) * 8 * n
        result = process.run_to_convergence(record_history=True)
        replayed = [
            [r.round_index, [[int(u), int(v)] for u, v in r.added_edges]]
            for r in result.history
            if r.added_edges
        ]
        assert result.rounds == golden["rounds"]
        assert replayed == golden["added_by_round"]
