"""Tests for result persistence (io), ASCII plotting, and markdown reports."""

import json

import pytest

from repro.analysis.report import ReportBuilder, ReportSection, markdown_table
from repro.core.push import PushDiscovery
from repro.graphs import generators as gen
from repro.simulation import io as sim_io
from repro.simulation.plotting import ascii_plot, loglog_slope_annotation, sparkline
from repro.simulation.trace import TraceRecorder


class TestRowPersistence:
    ROWS = [
        {"process": "push", "n": 16, "rounds_mean": 52.5},
        {"process": "push", "n": 32, "rounds_mean": 120.0},
    ]

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "rows.json"
        sim_io.save_rows_json(self.ROWS, path, metadata={"seed": 1})
        loaded = sim_io.load_rows_json(path)
        assert loaded["metadata"]["seed"] == 1
        assert loaded["rows"] == self.ROWS

    def test_json_is_valid_json(self, tmp_path):
        path = sim_io.save_rows_json(self.ROWS, tmp_path / "rows.json")
        json.loads(path.read_text())  # must not raise

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "rows.csv"
        sim_io.save_rows_csv(self.ROWS, path)
        loaded = sim_io.load_rows_csv(path)
        assert len(loaded) == 2
        assert loaded[0]["process"] == "push"
        assert float(loaded[1]["rounds_mean"]) == 120.0

    def test_csv_empty_rows(self, tmp_path):
        path = sim_io.save_rows_csv([], tmp_path / "empty.csv")
        assert sim_io.load_rows_csv(path) == []

    def test_csv_union_of_columns(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = sim_io.save_rows_csv(rows, tmp_path / "u.csv")
        loaded = sim_io.load_rows_csv(path)
        assert set(loaded[0]) == {"a", "b"}

    def test_atomic_write_replaces_not_truncates(self, tmp_path):
        """An overwrite leaves either the old or the new content, never a mix."""
        path = tmp_path / "rows.json"
        sim_io.save_rows_json(self.ROWS, path)
        before = path.read_text()
        sim_io.save_rows_json(self.ROWS * 10, path)
        after = path.read_text()
        assert json.loads(after)["rows"] == self.ROWS * 10
        assert len(after) > len(before)
        # staging files are cleaned up
        assert list(tmp_path.glob("*.tmp")) == []

    def test_atomic_write_helpers(self, tmp_path):
        target = sim_io.atomic_write_text(tmp_path / "deep" / "a.txt", "payload")
        assert target.read_text() == "payload"
        sim_io.atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"
        assert list((tmp_path / "deep").glob("*.tmp")) == []


class TestTracePersistence:
    def test_trace_roundtrip(self, tmp_path):
        g = gen.cycle_graph(10)
        proc = PushDiscovery(g, rng=0)
        recorder = TraceRecorder(probes={"mean_deg": lambda p: p.graph.degrees().mean()})
        proc.run(8, callbacks=[recorder])
        path = sim_io.save_trace(recorder.trace, tmp_path / "trace.json", metadata={"n": 10})
        loaded = sim_io.load_trace(path)
        assert loaded.rounds == recorder.trace.rounds
        assert loaded.num_edges == recorder.trace.num_edges
        assert loaded.custom["mean_deg"] == recorder.trace.custom["mean_deg"]

    def test_load_trace_truncated_json(self, tmp_path):
        path = tmp_path / "trace.json"
        g = gen.cycle_graph(6)
        proc = PushDiscovery(g, rng=0)
        recorder = TraceRecorder()
        proc.run(3, callbacks=[recorder])
        sim_io.save_trace(recorder.trace, path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            sim_io.load_trace(path)

    def test_load_trace_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"metadata": {}}))
        with pytest.raises(ValueError, match="not a saved trace"):
            sim_io.load_trace(path)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        out = sparkline([3, 3, 3])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_monotone_series_uses_extremes(self):
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out[0] == "▁" and out[-1] == "█"
        assert len(out) == 8


class TestAsciiPlot:
    def test_basic_plot_contains_markers(self):
        chart = ascii_plot([1, 2, 3, 4], [1, 4, 9, 16], width=20, height=8, title="squares")
        assert "squares" in chart
        assert chart.count("*") >= 3  # some points may share a cell

    def test_loglog_plot(self):
        chart = ascii_plot([8, 16, 32, 64], [10, 40, 160, 640], logx=True, logy=True)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], [1], width=20, height=8)
        with pytest.raises(ValueError):
            ascii_plot([], [], width=20, height=8)
        with pytest.raises(ValueError):
            ascii_plot([1, 2], [3, 4], width=2, height=2)
        with pytest.raises(ValueError):
            ascii_plot([0, 1], [1, 2], logx=True)

    def test_loglog_slope_annotation(self):
        note = loglog_slope_annotation([8, 64], [10, 640])
        assert "2.00" in note
        with pytest.raises(ValueError):
            loglog_slope_annotation([1], [1])
        with pytest.raises(ValueError):
            loglog_slope_annotation([0, 2], [1, 2])


class TestMarkdownReport:
    ROWS = [{"n": 16, "rounds": 52.5}, {"n": 32, "rounds": 120.0}]

    def test_markdown_table(self):
        table = markdown_table(self.ROWS)
        lines = table.splitlines()
        assert lines[0] == "| n | rounds |"
        assert lines[1].startswith("|---")
        assert len(lines) == 4
        assert markdown_table([]) == "*(no data)*"

    def test_markdown_table_bool_and_missing(self):
        table = markdown_table([{"ok": True}, {"ok": False, "extra": 1}])
        assert "yes" in table and "no" in table

    def test_section_render(self):
        section = ReportSection(title="Scaling", body="Some prose.", rows=self.ROWS, code="x = 1")
        text = section.render()
        assert text.startswith("## Scaling")
        assert "Some prose." in text
        assert "```" in text

    def test_builder_write(self, tmp_path):
        builder = ReportBuilder(title="Report", preamble="Intro.")
        builder.add_section("A", rows=self.ROWS)
        builder.add_section("B", body="text only", level=3)
        path = builder.write(tmp_path / "report.md")
        content = path.read_text()
        assert content.startswith("# Report")
        assert "## A" in content and "### B" in content
        assert "| n | rounds |" in content
