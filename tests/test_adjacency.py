"""Unit tests for the dynamic adjacency structures."""

import numpy as np
import pytest

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


class TestDynamicGraphBasics:
    def test_empty_graph(self):
        g = DynamicGraph(5)
        assert g.n == 5
        assert g.number_of_edges() == 0
        assert g.min_degree() == 0
        assert not g.is_complete()
        assert g.missing_edges() == 10

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            DynamicGraph(-1)

    def test_add_edge_returns_true_only_when_new(self):
        g = DynamicGraph(3)
        assert g.add_edge(0, 1) is True
        assert g.add_edge(0, 1) is False
        assert g.add_edge(1, 0) is False  # same undirected edge
        assert g.number_of_edges() == 1

    def test_self_loop_rejected(self):
        g = DynamicGraph(3)
        assert g.add_edge(1, 1) is False
        assert g.number_of_edges() == 0

    def test_out_of_range_node_raises(self):
        g = DynamicGraph(3)
        with pytest.raises(IndexError):
            g.add_edge(0, 3)
        with pytest.raises(IndexError):
            g.degree(5)

    def test_degrees_and_neighbors_symmetric(self):
        g = DynamicGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.degree(1) == 2
        assert set(g.neighbors(1)) == {0, 2}
        assert 1 in g.neighbors(0)
        assert g.degrees().tolist() == [1, 2, 2, 1]

    def test_min_max_degree(self):
        g = DynamicGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.min_degree() == 1
        assert g.max_degree() == 3

    def test_has_edge(self):
        g = DynamicGraph(3, [(0, 2)])
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 1)

    def test_edge_list_sorted_canonical(self):
        g = DynamicGraph(4, [(3, 2), (1, 0)])
        assert g.edge_list() == [(0, 1), (2, 3)]

    def test_is_complete_and_missing_edges(self):
        g = DynamicGraph(3, [(0, 1), (1, 2)])
        assert not g.is_complete()
        assert g.missing_edges() == 1
        g.add_edge(0, 2)
        assert g.is_complete()
        assert g.missing_edges() == 0

    def test_add_edges_from_counts_new_only(self):
        g = DynamicGraph(4)
        added = g.add_edges_from([(0, 1), (1, 0), (2, 3), (2, 2)])
        assert added == 2

    def test_equality(self):
        a = DynamicGraph(3, [(0, 1)])
        b = DynamicGraph(3, [(1, 0)])
        c = DynamicGraph(3, [(1, 2)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DynamicGraph(2))

    def test_repr(self):
        assert repr(DynamicGraph(3, [(0, 1)])) == "DynamicGraph(n=3, m=1)"


class TestDynamicGraphSampling:
    def test_random_neighbor_uniform(self, rng):
        g = DynamicGraph(4, [(0, 1), (0, 2), (0, 3)])
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(3000):
            counts[g.random_neighbor(0, rng)] += 1
        for c in counts.values():
            assert 800 < c < 1200

    def test_random_neighbor_isolated_raises(self, rng):
        g = DynamicGraph(2)
        with pytest.raises(ValueError):
            g.random_neighbor(0, rng)

    def test_random_neighbor_pair_with_replacement(self, rng):
        g = DynamicGraph(3, [(0, 1), (0, 2)])
        seen_equal = False
        for _ in range(200):
            v, w = g.random_neighbor_pair(0, rng)
            assert v in (1, 2) and w in (1, 2)
            if v == w:
                seen_equal = True
        assert seen_equal  # with-replacement sampling must allow v == w

    def test_random_neighbor_pair_isolated_raises(self, rng):
        g = DynamicGraph(2)
        with pytest.raises(ValueError):
            g.random_neighbor_pair(1, rng)


class TestDynamicGraphConversions:
    def test_adjacency_matrix_roundtrip(self):
        g = DynamicGraph(4, [(0, 1), (2, 3), (1, 3)])
        mat = g.adjacency_matrix()
        assert mat.shape == (4, 4)
        assert mat[0, 1] and mat[1, 0]
        assert not mat.diagonal().any()
        g2 = DynamicGraph.from_adjacency_matrix(mat)
        assert g2 == g

    def test_from_adjacency_matrix_rejects_non_square(self):
        with pytest.raises(ValueError):
            DynamicGraph.from_adjacency_matrix(np.zeros((2, 3)))

    def test_copy_is_independent(self):
        g = DynamicGraph(3, [(0, 1)])
        c = g.copy()
        c.add_edge(1, 2)
        assert g.number_of_edges() == 1
        assert c.number_of_edges() == 2

    def test_subgraph_relabels_and_filters(self):
        g = DynamicGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub, mapping = g.subgraph([1, 2, 3])
        assert sub.n == 3
        assert sub.number_of_edges() == 2
        assert mapping == {1: 0, 2: 1, 3: 2}

    def test_subgraph_duplicate_nodes_rejected(self):
        g = DynamicGraph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.subgraph([0, 0, 1])

    def test_networkx_roundtrip(self):
        nx = pytest.importorskip("networkx")
        g = DynamicGraph(4, [(0, 1), (1, 2), (2, 3)])
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_edges() == 3
        back = DynamicGraph.from_networkx(nx_graph)
        assert back == g


class TestDynamicDiGraph:
    def test_empty(self):
        g = DynamicDiGraph(4)
        assert g.n == 4
        assert g.number_of_edges() == 0
        assert g.out_degree(0) == 0
        assert g.in_degree(0) == 0

    def test_add_edge_directed_distinct_directions(self):
        g = DynamicDiGraph(3)
        assert g.add_edge(0, 1) is True
        assert g.add_edge(1, 0) is True  # opposite direction is a different edge
        assert g.add_edge(0, 1) is False
        assert g.number_of_edges() == 2

    def test_self_loop_rejected(self):
        g = DynamicDiGraph(2)
        assert g.add_edge(0, 0) is False

    def test_degrees(self):
        g = DynamicDiGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.out_degrees().tolist() == [2, 1, 0]
        assert g.in_degrees().tolist() == [0, 1, 2]

    def test_out_neighbors(self):
        g = DynamicDiGraph(3, [(0, 1), (0, 2)])
        assert set(g.out_neighbors(0)) == {1, 2}
        assert list(g.out_neighbors(1)) == []

    def test_random_out_neighbor(self, rng):
        g = DynamicDiGraph(3, [(0, 1), (0, 2)])
        seen = {g.random_out_neighbor(0, rng) for _ in range(100)}
        assert seen == {1, 2}
        with pytest.raises(ValueError):
            g.random_out_neighbor(1, rng)

    def test_to_undirected(self):
        g = DynamicDiGraph(3, [(0, 1), (1, 0), (1, 2)])
        und = g.to_undirected()
        assert und.number_of_edges() == 2
        assert und.has_edge(0, 1) and und.has_edge(1, 2)

    def test_adjacency_matrix_and_roundtrip(self):
        g = DynamicDiGraph(3, [(0, 1), (2, 0)])
        mat = g.adjacency_matrix()
        assert mat[0, 1] and mat[2, 0]
        assert not mat[1, 0]
        assert DynamicDiGraph.from_adjacency_matrix(mat) == g

    def test_copy_independent(self):
        g = DynamicDiGraph(3, [(0, 1)])
        c = g.copy()
        c.add_edge(1, 2)
        assert g.number_of_edges() == 1
        assert c.number_of_edges() == 2

    def test_equality_and_repr(self):
        a = DynamicDiGraph(2, [(0, 1)])
        b = DynamicDiGraph(2, [(0, 1)])
        assert a == b
        assert "DynamicDiGraph" in repr(a)
        with pytest.raises(TypeError):
            hash(a)

    def test_edge_list(self):
        g = DynamicDiGraph(3, [(2, 1), (0, 1)])
        assert g.edge_list() == [(0, 1), (2, 1)]
