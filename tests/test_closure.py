"""Unit tests for transitive closure / reachability utilities."""

import pytest

from repro.graphs import directed_generators as dgen
from repro.graphs.adjacency import DynamicDiGraph
from repro.graphs import closure


class TestReachability:
    def test_reachable_from_path(self):
        g = dgen.directed_path(4)
        assert closure.reachable_from(g, 0) == {1, 2, 3}
        assert closure.reachable_from(g, 2) == {3}
        assert closure.reachable_from(g, 3) == set()

    def test_reachable_from_cycle_includes_self(self):
        g = dgen.directed_cycle(4)
        assert closure.reachable_from(g, 0) == {0, 1, 2, 3}

    def test_reachability_matrix(self):
        g = dgen.directed_path(3)
        mat = closure.reachability_matrix(g)
        assert mat[0, 2] and mat[0, 1] and mat[1, 2]
        assert not mat[2, 0]
        assert not mat[0, 0]  # no cycle through 0

    def test_reachability_matrix_cycle_diagonal(self):
        g = dgen.directed_cycle(3)
        mat = closure.reachability_matrix(g)
        assert mat.all()


class TestClosure:
    def test_transitive_closure_edges_path(self):
        g = dgen.directed_path(4)
        edges = closure.transitive_closure_edges(g)
        assert edges == {(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)}

    def test_transitive_closure_graph(self):
        g = dgen.directed_cycle(4)
        tc = closure.transitive_closure_graph(g)
        assert tc.number_of_edges() == 4 * 3  # complete digraph

    def test_closure_deficit(self):
        g = dgen.directed_path(3)
        target = closure.transitive_closure_edges(g)
        assert closure.closure_deficit(g, target) == [(0, 2)]
        g.add_edge(0, 2)
        assert closure.closure_deficit(g, target) == []

    def test_is_transitively_closed(self):
        g = dgen.directed_path(3)
        assert not closure.is_transitively_closed(g)
        g.add_edge(0, 2)
        assert closure.is_transitively_closed(g)
        assert closure.is_transitively_closed(dgen.complete_digraph(4))

    def test_closure_of_thm15_is_complete_digraph(self):
        g = dgen.thm15_strong_lower_bound(8)
        edges = closure.transitive_closure_edges(g)
        assert len(edges) == 8 * 7  # strongly connected -> closure is complete


class TestIncrementalClosure:
    """IncrementalClosure ≡ full Warshall recompute under random edge batches."""

    @staticmethod
    def _random_case(seed):
        import numpy as np
        from repro.graphs import bitset

        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 14))
        density = rng.random() * 0.3
        mat = rng.random((n, n)) < density
        np.fill_diagonal(mat, False)
        return rng, n, bitset.pack_bool_matrix(mat)

    def test_matches_recompute_under_random_batches(self):
        import numpy as np
        from repro.graphs import bitset

        for seed in range(25):
            rng, n, bits = self._random_case(seed)
            inc = closure.IncrementalClosure(bits.copy(), n)
            current = bits.copy()
            for _ in range(int(rng.integers(1, 5))):
                batch = int(rng.integers(0, 2 * n + 1))
                us = rng.integers(0, n, size=batch).astype(np.int64)
                vs = rng.integers(0, n, size=batch).astype(np.int64)
                keep = us != vs
                us, vs = us[keep], vs[keep]
                if us.size:
                    bitset.set_bits(current, us, vs)
                inc.add_edges(us, vs)
                expected = bitset.transitive_closure_bits(current, n)
                assert np.array_equal(inc.closure_bits(), expected), (
                    f"seed={seed}: incremental closure diverged from recompute"
                )

    def test_in_closure_edges_are_noops(self):
        import numpy as np

        g = dgen.thm15_strong_lower_bound(8)
        inc = closure.IncrementalClosure.from_graph(g)
        before = inc.closure_bits().copy()
        # every pair is in the strong construction's closure already
        us, vs = np.nonzero(~np.eye(8, dtype=bool))
        assert inc.add_edges(us.astype(np.int64), vs.astype(np.int64)) == 0
        assert np.array_equal(inc.closure_bits(), before)

    def test_scalar_edge_extends_closure(self):
        g = dgen.directed_path(3)  # 0 -> 1 -> 2
        inc = closure.IncrementalClosure.from_graph(g)
        assert inc.add_edge(2, 0)  # closes the cycle
        mat = closure.reachability_matrix(dgen.directed_cycle(3))
        import numpy as np
        from repro.graphs import bitset

        assert np.array_equal(bitset.unpack_bool_matrix(inc.closure_bits(), 3), mat)

    def test_deficit_count_matches_closure_deficit(self):
        g = dgen.layered_dag(3, 2)
        inc = closure.IncrementalClosure.from_graph(g)
        expected = len(closure.closure_deficit(g, closure.transitive_closure_edges(g)))
        assert inc.deficit_count(closure.adjacency_bits(g)) == expected

    def test_batch_with_internal_dependencies(self):
        import numpy as np
        from repro.graphs import bitset

        # (0,1) then (1,2) in ONE batch: the second edge must see the first.
        inc = closure.IncrementalClosure(bitset.zeros(3, 3), 3)
        inc.add_edges(np.array([0, 1]), np.array([1, 2]))
        expected = bitset.transitive_closure_bits(
            closure.adjacency_bits(DynamicDiGraph(3, [(0, 1), (1, 2)])), 3
        )
        assert np.array_equal(inc.closure_bits(), expected)

    def test_endpoint_length_mismatch_raises(self):
        import numpy as np
        from repro.graphs import bitset

        with pytest.raises(ValueError, match="disagree"):
            bitset.closure_add_edges(bitset.zeros(3, 3), np.array([0]), np.array([1, 2]))
