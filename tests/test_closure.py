"""Unit tests for transitive closure / reachability utilities."""

import pytest

from repro.graphs import directed_generators as dgen
from repro.graphs.adjacency import DynamicDiGraph
from repro.graphs import closure


class TestReachability:
    def test_reachable_from_path(self):
        g = dgen.directed_path(4)
        assert closure.reachable_from(g, 0) == {1, 2, 3}
        assert closure.reachable_from(g, 2) == {3}
        assert closure.reachable_from(g, 3) == set()

    def test_reachable_from_cycle_includes_self(self):
        g = dgen.directed_cycle(4)
        assert closure.reachable_from(g, 0) == {0, 1, 2, 3}

    def test_reachability_matrix(self):
        g = dgen.directed_path(3)
        mat = closure.reachability_matrix(g)
        assert mat[0, 2] and mat[0, 1] and mat[1, 2]
        assert not mat[2, 0]
        assert not mat[0, 0]  # no cycle through 0

    def test_reachability_matrix_cycle_diagonal(self):
        g = dgen.directed_cycle(3)
        mat = closure.reachability_matrix(g)
        assert mat.all()


class TestClosure:
    def test_transitive_closure_edges_path(self):
        g = dgen.directed_path(4)
        edges = closure.transitive_closure_edges(g)
        assert edges == {(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)}

    def test_transitive_closure_graph(self):
        g = dgen.directed_cycle(4)
        tc = closure.transitive_closure_graph(g)
        assert tc.number_of_edges() == 4 * 3  # complete digraph

    def test_closure_deficit(self):
        g = dgen.directed_path(3)
        target = closure.transitive_closure_edges(g)
        assert closure.closure_deficit(g, target) == [(0, 2)]
        g.add_edge(0, 2)
        assert closure.closure_deficit(g, target) == []

    def test_is_transitively_closed(self):
        g = dgen.directed_path(3)
        assert not closure.is_transitively_closed(g)
        g.add_edge(0, 2)
        assert closure.is_transitively_closed(g)
        assert closure.is_transitively_closed(dgen.complete_digraph(4))

    def test_closure_of_thm15_is_complete_digraph(self):
        g = dgen.thm15_strong_lower_bound(8)
        edges = closure.transitive_closure_edges(g)
        assert len(edges) == 8 * 7  # strongly connected -> closure is complete
