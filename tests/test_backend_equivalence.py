"""Cross-backend equivalence: list and array backends produce identical seeded traces.

The vectorized array backend is only trustworthy if it is *bit-identical*
to the reference list backend: same RNG stream consumption, same neighbour
choices, same per-round added edges, same totals.  These tests run push,
pull, and the directed two-hop walk to convergence on seeded graph
families under both backends and compare everything the trace exposes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.flooding import NeighborhoodFlooding
from repro.baselines.name_dropper import NameDropper
from repro.baselines.pointer_jump import RandomPointerJump
from repro.core.base import UpdateSemantics
from repro.core.directed import DirectedTwoHopWalk
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.core.variants import FaultyPullDiscovery, FaultyPushDiscovery
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.graphs.array_adjacency import as_backend
from repro.simulation.engine import make_process

SEEDS = [0, 7, 20120614]

UNDIRECTED_FAMILIES = {
    "path": lambda: gen.path_graph(28),
    "star": lambda: gen.star_graph(28),
    # the registered experiment family (connectivity-repaired Erdős–Rényi)
    "erdos_renyi": lambda: gen.make_family("erdos_renyi", 28, np.random.default_rng(99)),
}

DIRECTED_FAMILIES = {
    "bidirected_path": lambda: dgen.bidirected_path(16),
    "bidirected_star": lambda: dgen.bidirected_star(16),
    "random_strong": lambda: dgen.random_strongly_connected_digraph(
        16, rng=np.random.default_rng(99)
    ),
}


def run_trace(process_cls, base_graph, seed, backend, normalize=False, **kwargs):
    """Run to convergence and return every trace-visible quantity.

    ``normalize=True`` canonicalises undirected edge orientation — needed
    for flooding, whose packed round reports new edges as ``u < v`` while
    the list loop records them in delivery orientation (same edge sets).
    """
    graph = as_backend(base_graph.copy(), backend)
    process = process_cls(graph, rng=seed, **kwargs)
    result = process.run_to_convergence(record_history=True)

    def canon(u, v):
        u, v = int(u), int(v)
        return (u, v) if not normalize or u < v else (v, u)

    per_round_added = [
        frozenset(canon(u, v) for u, v in r.added_edges) for r in result.history
    ]
    return {
        "rounds": result.rounds,
        "converged": result.converged,
        "added": per_round_added,
        "messages": result.total_messages,
        "bits": result.total_bits,
        "edges": sorted((int(u), int(v)) for u, v in process.graph.edge_list()),
    }


class TestUndirectedEquivalence:
    @pytest.mark.parametrize("family", sorted(UNDIRECTED_FAMILIES))
    @pytest.mark.parametrize("process_cls", [PushDiscovery, PullDiscovery])
    def test_push_pull_trace_identical(self, process_cls, family):
        base = UNDIRECTED_FAMILIES[family]()
        for seed in SEEDS:
            ref = run_trace(process_cls, base, seed, "list")
            fast = run_trace(process_cls, base, seed, "array")
            assert ref["rounds"] == fast["rounds"]
            assert ref["converged"] and fast["converged"]
            assert ref["added"] == fast["added"]
            assert ref["messages"] == fast["messages"]
            assert ref["bits"] == fast["bits"]
            assert ref["edges"] == fast["edges"]

    def test_push_without_replacement_trace_identical(self):
        base = gen.path_graph(20)
        ref = run_trace(PushDiscovery, base, 5, "list", without_replacement=True)
        fast = run_trace(PushDiscovery, base, 5, "array", without_replacement=True)
        assert ref == fast

    @pytest.mark.parametrize("process_cls", [FaultyPushDiscovery, FaultyPullDiscovery])
    def test_faulty_variants_trace_identical(self, process_cls):
        base = gen.path_graph(20)
        kwargs = {"failure_prob": 0.25, "participation_prob": 0.75}
        ref = run_trace(process_cls, base, 11, "list", **kwargs)
        fast = run_trace(process_cls, base, 11, "array", **kwargs)
        assert ref == fast


class TestBaselineEquivalence:
    """The three baselines (PR 3) are trace-identical across backends too."""

    @pytest.mark.parametrize("family", sorted(UNDIRECTED_FAMILIES))
    @pytest.mark.parametrize(
        "process_cls", [NameDropper, RandomPointerJump, NeighborhoodFlooding]
    )
    def test_baseline_trace_identical(self, process_cls, family):
        base = UNDIRECTED_FAMILIES[family]()
        for seed in SEEDS:
            ref = run_trace(process_cls, base, seed, "list", normalize=True)
            fast = run_trace(process_cls, base, seed, "array", normalize=True)
            assert ref == fast

    @pytest.mark.parametrize("family", sorted(DIRECTED_FAMILIES))
    def test_directed_pointer_jump_trace_identical(self, family):
        base = DIRECTED_FAMILIES[family]()
        for seed in SEEDS:
            ref = run_trace(RandomPointerJump, base, seed, "list")
            fast = run_trace(RandomPointerJump, base, seed, "array")
            assert ref == fast

    @pytest.mark.parametrize("process_cls", [NameDropper, RandomPointerJump])
    def test_sequential_baseline_trace_identical(self, process_cls):
        """Sequential rounds use scalar draws; both backends consume the same stream."""
        base = gen.path_graph(18)
        ref = run_trace(
            process_cls, base, 13, "list", semantics=UpdateSemantics.SEQUENTIAL
        )
        fast = run_trace(
            process_cls, base, 13, "array", semantics=UpdateSemantics.SEQUENTIAL
        )
        assert ref == fast

    @pytest.mark.parametrize("process_cls", [NameDropper, RandomPointerJump])
    def test_exact_added_order_parity(self, process_cls):
        """Name Dropper / pointer jump packed rounds reproduce the exact edge
        application order of the reference loop (not just the sets) — the
        invariant that keeps neighbour rows, and hence future draws, aligned."""
        base = gen.cycle_graph(24)
        runs = {}
        for backend in ("list", "array"):
            graph = as_backend(base.copy(), backend)
            process = process_cls(graph, rng=9)
            result = process.run_to_convergence(record_history=True)
            runs[backend] = [
                [(int(u), int(v)) for u, v in r.added_edges] for r in result.history
            ]
        assert runs["list"] == runs["array"]


class TestDirectedEquivalence:
    @pytest.mark.parametrize("family", sorted(DIRECTED_FAMILIES))
    def test_directed_trace_identical(self, family):
        base = DIRECTED_FAMILIES[family]()
        for seed in SEEDS:
            ref = run_trace(DirectedTwoHopWalk, base, seed, "list")
            fast = run_trace(DirectedTwoHopWalk, base, seed, "array")
            assert ref["rounds"] == fast["rounds"]
            assert ref["converged"] and fast["converged"]
            assert ref["added"] == fast["added"]
            assert ref["messages"] == fast["messages"]
            assert ref["bits"] == fast["bits"]
            assert ref["edges"] == fast["edges"]


class TestEngineBackendOption:
    def test_make_process_backend_equivalence(self):
        base = gen.cycle_graph(24)
        results = {}
        for backend in ("list", "array"):
            proc = make_process("push", base.copy(), rng=17, backend=backend)
            run = proc.run_to_convergence()
            results[backend] = (run.rounds, run.total_messages, run.total_bits)
        assert results["list"] == results["array"]

    @pytest.mark.parametrize("name", ["name_dropper", "pointer_jump", "flooding"])
    def test_make_process_accepts_array_for_baselines(self, name):
        """Baselines run on both backends end-to-end with identical seeded totals."""
        base = gen.cycle_graph(16)
        results = {}
        for backend in ("list", "array"):
            proc = make_process(name, base.copy(), rng=3, backend=backend)
            assert proc.backend == backend
            run = proc.run_to_convergence()
            assert run.converged
            results[backend] = (run.rounds, run.total_messages, run.total_bits)
        assert results["list"] == results["array"]

    def test_pointer_jump_classifies_array_graphs(self):
        """Handed an array graph directly, pointer jump picks the right mode."""
        from repro.graphs import directed_generators as dgen

        directed = make_process(
            "pointer_jump_directed", as_backend(dgen.directed_cycle(8), "array"), rng=0
        )
        assert directed._directed
        assert directed.run_to_convergence().converged
        undirected = make_process("pointer_jump", as_backend(gen.cycle_graph(8), "array"), rng=0)
        assert not undirected._directed
        assert undirected.run_to_convergence().converged

    def test_process_backend_kwarg_converts_graph(self):
        proc = PushDiscovery(gen.cycle_graph(12), rng=0, backend="array")
        assert proc.backend == "array"
        assert type(proc.graph).__name__ == "ArrayGraph"

    def test_neighbor_rows_stay_aligned_after_convergence(self):
        """The strong invariant behind trace equality: identical row order."""
        base = gen.path_graph(18)
        ref = PushDiscovery(base.copy(), rng=9)
        ref.run_to_convergence()
        fast = PushDiscovery(base.copy(), rng=9, backend="array")
        fast.run_to_convergence()
        for u in range(base.n):
            assert list(ref.graph.neighbors(u)) == fast.graph.neighbors(u).tolist()


@pytest.mark.slow
class TestLargeEquivalenceSweep:
    """Full-size sweep (n close to the benchmark scale); run with -m slow."""

    def test_push_large_cycle_trace_identical(self):
        base = gen.cycle_graph(96)
        ref = run_trace(PushDiscovery, base, 20120614, "list")
        fast = run_trace(PushDiscovery, base, 20120614, "array")
        assert ref == fast

    def test_pull_large_er_trace_identical(self):
        base = gen.erdos_renyi_graph(96, 0.08, rng=np.random.default_rng(1))
        ref = run_trace(PullDiscovery, base, 20120614, "list")
        fast = run_trace(PullDiscovery, base, 20120614, "array")
        assert ref == fast
