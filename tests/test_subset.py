"""Unit tests for group (subset) discovery."""

import pytest

from repro.core.subset import SubsetDiscovery
from repro.graphs import generators as gen


class TestSubsetDiscovery:
    def test_requires_at_least_two_members(self):
        with pytest.raises(ValueError):
            SubsetDiscovery(gen.cycle_graph(8), [3], rng=0)

    def test_requires_connected_induced_subgraph(self):
        g = gen.cycle_graph(8)
        with pytest.raises(ValueError):
            SubsetDiscovery(g, [0, 4], rng=0)  # opposite nodes of a cycle: no induced edge

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            SubsetDiscovery(gen.cycle_graph(8), [0, 1, 2], process="flood", rng=0)

    def test_host_graph_not_mutated(self):
        host = gen.cycle_graph(10)
        before = host.number_of_edges()
        group = SubsetDiscovery(host, [0, 1, 2, 3], rng=0)
        group.run_to_convergence()
        assert host.number_of_edges() == before

    def test_group_converges_to_complete_subgraph(self):
        host = gen.cycle_graph(20)
        members = list(range(6))
        group = SubsetDiscovery(host, members, process="push", rng=1)
        result = group.run_to_convergence()
        assert result.converged
        assert group.is_group_complete()
        # every pair of members is in the discovered pairs (host labels)
        pairs = set(group.discovered_pairs())
        for i in members:
            for j in members:
                if i < j:
                    assert (i, j) in pairs

    def test_pull_process_variant(self):
        host = gen.grid_graph(4, 4)
        members = [0, 1, 2, 5, 6]
        group = SubsetDiscovery(host, members, process="pull", rng=2)
        assert group.run_to_convergence().converged

    def test_label_translation_roundtrip(self):
        host = gen.cycle_graph(12)
        members = [4, 5, 6, 7]
        group = SubsetDiscovery(host, members, rng=0)
        for host_label in members:
            sub = group.to_subgraph_label(host_label)
            assert group.to_host_label(sub) == host_label

    def test_k_property(self):
        group = SubsetDiscovery(gen.cycle_graph(9), [0, 1, 2, 3, 4], rng=0)
        assert group.k == 5

    def test_group_of_whole_graph_equals_plain_process(self):
        host = gen.path_graph(8)
        group = SubsetDiscovery(host, list(range(8)), rng=3)
        result = group.run_to_convergence()
        assert result.converged
        assert group.subgraph.is_complete()
