"""Unit tests for the simulation substrate: rng, trace, engine registry, experiments, runner."""

import numpy as np
import pytest

from repro.core.push import PushDiscovery
from repro.graphs import generators as gen
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.simulation import bounds
from repro.simulation.engine import (
    PROCESS_REGISTRY,
    make_process,
    measure_convergence_rounds,
    process_names,
    run_process,
)
from repro.simulation.experiment import ExperimentSpec, SweepSpec
from repro.simulation.rng import SeedSequenceFactory, rng_from_seed, spawn_rngs
from repro.simulation.runner import run_sweep, run_trials, summarize_trials, sweep_table
from repro.simulation.trace import TraceRecorder


class TestRng:
    def test_rng_from_seed_deterministic(self):
        a = rng_from_seed(5).integers(1000, size=10)
        b = rng_from_seed(5).integers(1000, size=10)
        assert (a == b).all()

    def test_spawn_rngs_independent_and_deterministic(self):
        first = [r.integers(1000) for r in spawn_rngs(7, 3)]
        second = [r.integers(1000) for r in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) > 1
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)

    def test_seed_factory_index_stability(self):
        factory = SeedSequenceFactory(11)
        value_direct = factory.rng_for_index(3).integers(10_000)
        # Handing out other streams first must not change stream 3.
        factory2 = SeedSequenceFactory(11)
        for _ in range(5):
            factory2.next_rng()
        assert factory2.rng_for_index(3).integers(10_000) == value_direct
        assert factory2.spawned == 5
        with pytest.raises(ValueError):
            factory.rng_for_index(-1)


class TestTrace:
    def test_trace_records_series(self):
        g = gen.cycle_graph(10)
        proc = PushDiscovery(g, rng=0)
        recorder = TraceRecorder()
        proc.run(12, callbacks=[recorder])
        trace = recorder.trace
        assert len(trace) == 12
        assert trace.num_edges[-1] == g.number_of_edges()
        arrays = trace.as_arrays()
        assert arrays["min_degree"].shape == (12,)

    def test_trace_every_k(self):
        g = gen.cycle_graph(10)
        proc = PushDiscovery(g, rng=0)
        recorder = TraceRecorder(every=3)
        proc.run(10, callbacks=[recorder])
        assert recorder.trace.rounds == [0, 3, 6, 9]
        with pytest.raises(ValueError):
            TraceRecorder(every=0)

    def test_custom_probes(self):
        g = gen.cycle_graph(8)
        proc = PushDiscovery(g, rng=0)
        recorder = TraceRecorder(probes={"mean_degree": lambda p: p.graph.degrees().mean()})
        proc.run(5, callbacks=[recorder])
        assert len(recorder.trace.custom["mean_degree"]) == 5
        assert "mean_degree" in recorder.trace.as_dict()

    def test_rounds_to_first_complete(self):
        g = gen.cycle_graph(6)
        proc = PushDiscovery(g, rng=0)
        recorder = TraceRecorder()
        proc.run_to_convergence(callbacks=[recorder])
        total_pairs = 6 * 5 // 2
        hit = recorder.trace.rounds_to_first_complete(total_pairs)
        assert hit is not None
        assert recorder.trace.rounds_to_first_complete(10**6) is None


class TestEngineRegistry:
    def test_registry_contains_all_processes(self):
        assert {"push", "pull", "directed_pull", "name_dropper", "pointer_jump", "flooding"} <= set(
            process_names()
        )

    def test_make_process_push(self):
        proc = make_process("push", gen.cycle_graph(6), rng=0)
        assert isinstance(proc, PushDiscovery)

    def test_make_process_unknown(self):
        with pytest.raises(KeyError):
            make_process("bogus", gen.cycle_graph(6))

    def test_make_process_graph_kind_mismatch(self):
        with pytest.raises(TypeError):
            make_process("directed_pull", gen.cycle_graph(6))
        with pytest.raises(TypeError):
            make_process("push", DynamicDiGraph(4, [(0, 1)]))

    def test_pointer_jump_accepts_both_kinds(self):
        make_process("pointer_jump", gen.cycle_graph(6), rng=0)
        make_process("pointer_jump_directed", DynamicDiGraph(4, [(0, 1), (1, 2)]), rng=0)

    def test_measure_convergence_rounds_copy_semantics(self):
        g = gen.cycle_graph(8)
        before = g.number_of_edges()
        result = measure_convergence_rounds("push", g, rng=0)
        assert result.converged
        assert g.number_of_edges() == before  # original untouched
        measure_convergence_rounds("push", g, rng=0, copy_graph=False)
        assert g.is_complete()

    def test_run_process_wrapper(self):
        proc = make_process("push", gen.cycle_graph(8), rng=0)
        assert run_process(proc).converged


class TestExperimentSpecs:
    def test_build_graph_from_family(self, rng):
        spec = ExperimentSpec(process="push", family="cycle", n=12)
        g = spec.build_graph(rng)
        assert isinstance(g, DynamicGraph)
        assert g.n == 12

    def test_build_graph_directed(self, rng):
        spec = ExperimentSpec(process="directed_pull", family="directed_cycle", n=8, directed=True)
        assert isinstance(spec.build_graph(rng), DynamicDiGraph)

    def test_custom_factory(self):
        spec = ExperimentSpec(
            process="push",
            family="custom",
            n=5,
            graph_factory=lambda n, rng: gen.star_graph(n),
        )
        g = spec.build_graph()
        assert g.degree(0) == 4

    def test_describe(self):
        spec = ExperimentSpec(process="push", family="cycle", n=10, label="demo")
        assert "push" in spec.describe() and "demo" in spec.describe()

    def test_sweep_expansion(self):
        sweep = SweepSpec(processes=["push", "pull"], families=["cycle"], sizes=[8, 16], trials=2)
        specs = sweep.expand()
        assert len(specs) == len(sweep) == 4
        assert {s.process for s in specs} == {"push", "pull"}
        assert all(s.trials == 2 for s in specs)
        assert len(list(iter(sweep))) == 4


class TestRunner:
    def test_run_trials_count_and_determinism(self):
        spec = ExperimentSpec(process="push", family="cycle", n=10, trials=3)
        a = run_trials(spec, root_seed=1)
        b = run_trials(spec, root_seed=1)
        assert len(a) == 3
        assert [t.rounds for t in a] == [t.rounds for t in b]
        assert all(t.converged for t in a)

    def test_summarize_trials(self):
        spec = ExperimentSpec(process="push", family="cycle", n=10, trials=3)
        trials = run_trials(spec, root_seed=2)
        summary = summarize_trials(trials)
        assert summary["trials"] == 3
        assert summary["rounds_min"] <= summary["rounds_mean"] <= summary["rounds_max"]
        assert summary["converged_fraction"] == 1.0
        with pytest.raises(ValueError):
            summarize_trials([])

    def test_sweep_table_rows_sorted(self):
        sweep = SweepSpec(processes=["push"], families=["cycle"], sizes=[12, 8], trials=2)
        results = run_sweep(sweep.expand(), root_seed=3)
        rows = sweep_table(results)
        assert [r["n"] for r in rows] == [8.0, 12.0]
        assert all(r["process"] == "push" for r in rows)

    def test_max_rounds_limits_trials(self):
        spec = ExperimentSpec(process="push", family="cycle", n=20, trials=1, max_rounds=2)
        trials = run_trials(spec, root_seed=0)
        assert trials[0].rounds == 2
        assert not trials[0].converged


class TestBounds:
    def test_bound_curves_positive_and_ordered(self):
        for n in (4, 16, 64, 256):
            assert 0 < bounds.n_log_n(n) <= bounds.n_log2_n(n) * 2
            assert bounds.n_squared(n) <= bounds.n_squared_log_n(n)

    def test_n_log_k(self):
        assert bounds.n_log_k(10, 1) == pytest.approx(10 * np.log(2))
        assert bounds.n_log_k(10, 100) == pytest.approx(10 * np.log(100))

    def test_registry(self):
        assert set(bounds.BOUND_REGISTRY) >= {"n_log_n", "n_log2_n", "n_squared"}
        for fn in bounds.BOUND_REGISTRY.values():
            assert fn(32) > 0
