"""Unit tests for the undirected graph family generators."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs import properties as props


class TestDeterministicFamilies:
    def test_path_graph(self):
        g = gen.path_graph(6)
        assert g.number_of_edges() == 5
        assert g.degree(0) == 1 and g.degree(3) == 2
        assert props.is_connected(g)

    def test_path_graph_single_node(self):
        assert gen.path_graph(1).number_of_edges() == 0

    def test_path_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            gen.path_graph(0)

    def test_cycle_graph(self):
        g = gen.cycle_graph(7)
        assert g.number_of_edges() == 7
        assert all(g.degree(u) == 2 for u in g.nodes())
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_star_graph(self):
        g = gen.star_graph(8)
        assert g.degree(0) == 7
        assert all(g.degree(u) == 1 for u in range(1, 8))
        with pytest.raises(ValueError):
            gen.star_graph(1)

    def test_complete_graph(self):
        g = gen.complete_graph(6)
        assert g.is_complete()
        assert g.number_of_edges() == 15

    def test_complete_bipartite(self):
        g = gen.complete_bipartite_graph(2, 3)
        assert g.number_of_edges() == 6
        assert g.degree(0) == 3 and g.degree(2) == 2
        with pytest.raises(ValueError):
            gen.complete_bipartite_graph(0, 3)

    def test_grid_graph(self):
        g = gen.grid_graph(3, 4)
        assert g.n == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4
        assert props.is_connected(g)

    def test_hypercube(self):
        g = gen.hypercube_graph(3)
        assert g.n == 8
        assert all(g.degree(u) == 3 for u in g.nodes())
        assert props.is_connected(g)

    def test_hypercube_dim_zero(self):
        g = gen.hypercube_graph(0)
        assert g.n == 1 and g.number_of_edges() == 0

    def test_binary_tree(self):
        g = gen.binary_tree_graph(7)
        assert g.number_of_edges() == 6
        assert props.is_connected(g)
        assert g.degree(0) == 2

    def test_caterpillar(self):
        g = gen.caterpillar_graph(4, 2)
        assert g.n == 12
        assert g.number_of_edges() == 3 + 8
        assert props.is_connected(g)

    def test_lollipop(self):
        g = gen.lollipop_graph(4, 3)
        assert g.n == 7
        assert g.number_of_edges() == 6 + 3
        assert props.is_connected(g)

    def test_barbell(self):
        g = gen.barbell_graph(3, 2)
        assert g.n == 8
        assert props.is_connected(g)
        # two triangles (3 edges each) + path of 3 edges joining them
        assert g.number_of_edges() == 3 + 3 + 3

    def test_wheel(self):
        g = gen.wheel_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(u) == 3 for u in range(1, 6))
        with pytest.raises(ValueError):
            gen.wheel_graph(3)

    def test_double_star(self):
        g = gen.double_star_graph(2, 3)
        assert g.n == 7
        assert g.degree(0) == 3 and g.degree(1) == 4
        assert props.is_connected(g)


class TestPaperConstructions:
    def test_fig1c_nonmonotone_is_paw(self):
        g = gen.fig1c_nonmonotone()
        assert g.n == 4
        assert g.number_of_edges() == 4
        assert props.is_connected(g)
        # one pendant node, one degree-3 node, two degree-2 nodes
        assert sorted(g.degrees().tolist()) == [1, 2, 2, 3]

    def test_fig1c_triangle_subgraph_complete(self):
        t = gen.fig1c_triangle_subgraph()
        assert t.n == 3
        assert t.is_complete()

    def test_fig1c_path_subgraph(self):
        p = gen.fig1c_path_subgraph()
        assert p.number_of_edges() == 3
        assert sorted(p.degrees().tolist()) == [1, 1, 2, 2]

    def test_nonmonotone_pair_is_nested(self):
        sparser, denser = gen.nonmonotone_supergraph_pair()
        assert sparser.n == denser.n == 4
        assert denser.number_of_edges() == sparser.number_of_edges() + 1
        for u, v in sparser.edges():
            assert denser.has_edge(u, v)

    def test_complete_minus_matching(self):
        g = gen.complete_minus_matching(8, 3)
        assert g.missing_edges() == 3
        assert not g.has_edge(0, 1)
        assert not g.has_edge(2, 3)
        assert not g.has_edge(4, 5)
        assert g.has_edge(6, 7)
        with pytest.raises(ValueError):
            gen.complete_minus_matching(4, 3)

    def test_complete_minus_random_edges(self, rng):
        g = gen.complete_minus_random_edges(10, 5, rng)
        assert g.missing_edges() == 5
        with pytest.raises(ValueError):
            gen.complete_minus_random_edges(4, 10, rng)


class TestRandomFamilies:
    def test_erdos_renyi_bounds_and_connectivity(self, rng):
        g = gen.erdos_renyi_graph(30, 0.2, rng, ensure_connected=True)
        assert props.is_connected(g)
        assert g.n == 30

    def test_erdos_renyi_p_zero_and_one(self, rng):
        assert gen.erdos_renyi_graph(10, 0.0, rng).number_of_edges() == 0
        assert gen.erdos_renyi_graph(6, 1.0, rng).is_complete()
        with pytest.raises(ValueError):
            gen.erdos_renyi_graph(5, 1.5, rng)

    def test_gnm_random_graph(self, rng):
        g = gen.gnm_random_graph(12, 20, rng)
        assert g.number_of_edges() == 20
        with pytest.raises(ValueError):
            gen.gnm_random_graph(4, 10, rng)

    def test_random_tree(self, rng):
        g = gen.random_tree(25, rng)
        assert g.number_of_edges() == 24
        assert props.is_connected(g)

    def test_barabasi_albert(self, rng):
        g = gen.barabasi_albert_graph(40, 2, rng)
        assert props.is_connected(g)
        assert g.min_degree() >= 1
        assert g.max_degree() > 2  # hubs emerge
        with pytest.raises(ValueError):
            gen.barabasi_albert_graph(5, 5, rng)

    def test_watts_strogatz(self, rng):
        g = gen.watts_strogatz_graph(20, 4, 0.1, rng)
        assert props.is_connected(g)
        assert g.min_degree() >= 4
        with pytest.raises(ValueError):
            gen.watts_strogatz_graph(10, 3, 0.1, rng)
        with pytest.raises(ValueError):
            gen.watts_strogatz_graph(10, 12, 0.1, rng)

    def test_random_regular(self, rng):
        g = gen.random_regular_graph(10, 3, rng)
        assert all(g.degree(u) == 3 for u in g.nodes())
        with pytest.raises(ValueError):
            gen.random_regular_graph(5, 3, rng)  # n*d odd

    def test_random_connected_graph(self, rng):
        g = gen.random_connected_graph(30, 0.05, rng)
        assert props.is_connected(g)


class TestFamilyRegistry:
    def test_registry_names_nonempty(self):
        names = gen.family_names()
        assert "cycle" in names and "erdos_renyi" in names

    @pytest.mark.parametrize("name", gen.family_names())
    def test_every_family_builds_connected_graph(self, name, rng):
        g = gen.make_family(name, 20, rng)
        assert g.n >= 10
        assert props.is_connected(g)
        assert g.min_degree() >= 1

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            gen.make_family("nope", 10)
