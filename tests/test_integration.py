"""Integration tests: end-to-end checks of the paper's claims at laptop scale.

These tests run the same pipelines as the benchmark harnesses, just at
smaller sizes and trial counts, so the full paper-shaped story is exercised
by ``pytest tests/`` alone.
"""

import numpy as np
import pytest

from repro.analysis.degree_growth import measure_degree_growth_phases
from repro.analysis.lower_bounds import lower_bound_ratio_check
from repro.analysis.nonmonotonicity import nonmonotonicity_gap
from repro.analysis.scaling import measure_scaling
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.simulation import bounds
from repro.simulation.engine import measure_convergence_rounds
from repro.simulation.runner import run_trials, summarize_trials
from repro.simulation.experiment import ExperimentSpec


class TestTheorem8And12UpperBounds:
    """Undirected push/pull complete in O(n log² n) — check the ratio stays bounded."""

    @pytest.mark.parametrize("process", ["push", "pull"])
    def test_rounds_within_constant_of_n_log2_n(self, process):
        sizes = [12, 24, 48]
        m = measure_scaling(process, "cycle", sizes=sizes, trials=2, seed=10)
        ok, info = pytest.importorskip("repro.simulation.stats").bounded_ratio(
            sizes, m.mean_rounds, bounds.n_log2_n, spread_tolerance=8.0
        )
        assert ok, f"rounds / n log^2 n drifted: {info}"
        # and the growth is clearly superlinear but at most ~ n^2
        assert 1.0 <= m.power_fit.exponent < 2.0

    @pytest.mark.parametrize("family", ["path", "star", "erdos_renyi", "barabasi_albert"])
    def test_push_converges_across_families(self, family):
        spec = ExperimentSpec(process="push", family=family, n=24, trials=2)
        trials = run_trials(spec, root_seed=11)
        assert all(t.converged for t in trials)


class TestTheorem9LowerBound:
    """Ω(n log k): even with k missing edges, rounds scale like n."""

    def test_dense_start_still_needs_linear_rounds(self):
        sizes = [16, 32, 48]
        check = lower_bound_ratio_check(
            "push",
            instance_factory=lambda n: gen.complete_minus_matching(n, max(1, n // 8)),
            sizes=sizes,
            bound=lambda n: bounds.n_log_k(n, max(1.0, n / 8.0)),
            trials=2,
            seed=12,
        )
        assert check.non_vanishing
        assert check.power_fit_exponent > 0.6


class TestTheorem14Directed:
    def test_directed_upper_bound_shape(self):
        sizes = [8, 12, 16]
        m = measure_scaling(
            "directed_pull", "random_strong", sizes=sizes, trials=2, seed=13,
            directed=True, poly_exponent=2.0,
        )
        # superlinear growth, consistent with a quadratic-ish bound at these sizes
        assert m.power_fit.exponent > 1.0
        ratios = m.normalized_by(bounds.n_squared_log_n)
        assert (ratios <= 5.0).all()

    def test_weakly_connected_lower_bound_instance_grows_superlinearly(self):
        # On the Theorem-14 construction the per-shortcut success probability
        # decays like 1/n^2, so the measured rounds must grow clearly faster
        # than linearly in n (the undirected processes are ~n at these sizes).
        check = lower_bound_ratio_check(
            "directed_pull",
            instance_factory=dgen.thm14_weak_lower_bound,
            sizes=[16, 32, 48],
            bound=bounds.n_squared,
            trials=2,
            seed=21,
            min_fraction_of_first=0.1,
        )
        assert check.power_fit_exponent > 1.4
        assert all(r > 0 for r in check.ratios)


class TestTheorem15StrongLowerBound:
    def test_strongly_connected_construction_grows_superlinearly(self):
        sizes = [8, 12, 16, 20]
        check = lower_bound_ratio_check(
            "directed_pull",
            instance_factory=dgen.thm15_strong_lower_bound,
            sizes=sizes,
            bound=bounds.n_squared,
            trials=2,
            seed=14,
            min_fraction_of_first=0.1,
        )
        assert check.power_fit_exponent > 1.2  # clearly superlinear
        assert all(r > 0 for r in check.ratios)

    def test_directed_much_slower_than_undirected_counterpart(self):
        """The paper's separation: directionality greatly impedes discovery."""
        n = 16
        directed_rounds = measure_convergence_rounds(
            "directed_pull", dgen.thm15_strong_lower_bound(n), rng=3, copy_graph=False
        ).rounds
        undirected_rounds = measure_convergence_rounds(
            "pull", gen.cycle_graph(n), rng=3, copy_graph=False
        ).rounds
        assert directed_rounds > undirected_rounds


class TestFigure1cNonmonotonicity:
    def test_gap_reproduced_for_push(self):
        gap = nonmonotonicity_gap("push")
        assert gap["fig1c_gap"] > 0
        assert gap["pair_gap"] > 0.3


class TestMinDegreeGrowthEngine:
    def test_phase_lengths_normalised_by_n_log_n_stay_small(self):
        phases = measure_degree_growth_phases(gen.cycle_graph(32), process="push", rng=15)
        assert phases
        # Each constant-factor growth phase is O(n log n): at this size the
        # constant is comfortably below 5.
        assert max(p.normalized_length for p in phases) < 5.0


class TestBandwidthComparison:
    def test_gossip_uses_fewer_bits_per_round_but_more_rounds_than_name_dropper(self):
        n = 24
        push_res = measure_convergence_rounds("push", gen.cycle_graph(n), rng=16, copy_graph=False)
        nd_res = measure_convergence_rounds(
            "name_dropper", gen.cycle_graph(n), rng=16, copy_graph=False
        )
        assert push_res.rounds > nd_res.rounds  # gossip pays in rounds
        push_bits_per_round = push_res.total_bits / push_res.rounds
        nd_bits_per_round = nd_res.total_bits / nd_res.rounds
        assert push_bits_per_round < nd_bits_per_round  # but wins on bandwidth


class TestGroupDiscoveryCorollary:
    def test_group_rounds_scale_with_k_not_host_size(self):
        from repro.social.group_discovery import discover_group

        host_small = gen.cycle_graph(40)
        host_large = gen.cycle_graph(160)
        k = 10
        r_small = discover_group(host_small, members=list(range(k)), seed=17).rounds
        r_large = discover_group(host_large, members=list(range(k)), seed=17).rounds
        assert r_small == r_large
        # and both are far below what the large host itself would need
        full_large = measure_convergence_rounds(
            "push", gen.cycle_graph(160), rng=17, copy_graph=False
        ).rounds
        assert r_large < full_large
