"""Fixture: broad except handlers that swallow silently."""


def bare_swallow(fn):
    try:
        return fn()
    except:  # noqa: E722
        return None


def broad_swallow(fn):
    try:
        return fn()
    except Exception:
        pass


def base_swallow(fn):
    try:
        return fn()
    except BaseException:
        return -1
