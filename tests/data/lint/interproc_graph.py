"""Aliased-import resolution shapes for the call-graph golden tests.

Calls the helper module through a module alias (``import ... as H``), a
from-import alias (``... import draw_mean as dm``) and an imported
class (static and class methods through the class name).  The golden
tests assert the exact resolved edges.
"""

import interproc_helpers as H
from interproc_helpers import Widget
from interproc_helpers import draw_mean as dm


def use_alias():
    pool = H.make_pool(1)
    H.close_pool(pool)
    return Widget.offset(3)


def use_from_alias(rng):
    w = Widget.default()
    return dm(rng, 2) + w.size
