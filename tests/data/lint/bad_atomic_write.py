"""Fixture: non-atomic result writes outside simulation/io.py."""

import json
from pathlib import Path


def torn_write(path, rows):
    with open(path, "w") as fh:
        json.dump(rows, fh)


def torn_binary(path, blob):
    with open(path, mode="wb") as fh:
        fh.write(blob)


def torn_pathlib(path, text):
    Path(path).write_text(text)
