"""Cross-module helper library for the interprocedural fixture corpus.

Imported (by name, never executed) from the ``interproc_*`` fixtures.
Exercises every call-graph shape the golden tests pin down: a project
decorator built on ``functools.wraps`` (summaries must see through it),
resource factories and releasers (ownership transfer through returns
and parameters), a spawn-derived generator factory, mutual recursion
(one SCC, must-release fixed point) and bound/static/class methods.
"""

from __future__ import annotations

import functools
from concurrent.futures import ThreadPoolExecutor

import numpy as np


def logged(fn):
    """Transparent project decorator (functools.wraps pattern)."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


def make_pool(workers):
    """Acquire: the caller owns the returned executor."""
    return ThreadPoolExecutor(max_workers=workers)


def close_pool(pool):
    """Release: discharges the shutdown obligation of ``pool``."""
    pool.shutdown()


@logged
def draw_mean(rng, n):
    """Draws from the caller's generator (summary: draws parameter 0)."""
    total = 0.0
    for _ in range(n):
        total += float(rng.random())
    return total / n


def spawn_child(ss):
    """Spawn-derived child stream (summary: returns_spawn_rng)."""
    return np.random.default_rng(ss.spawn(1)[0])


def rec_ping(pool, depth):
    """Mutually recursive releaser: shuts ``pool`` down on every path."""
    if depth == 0:
        pool.shutdown()
        return 0
    return rec_pong(pool, depth - 1)


def rec_pong(pool, depth):
    return rec_ping(pool, depth)


class Widget:
    """Method-resolution shapes: bound, static and class methods."""

    def __init__(self, size):
        self.size = size

    def area(self):
        return self._scale(self.size)

    def _scale(self, value):
        return value * 2

    @staticmethod
    def offset(value):
        return value + 1

    @classmethod
    def default(cls):
        return cls(8)
