"""Fixture: the pragma'd/atomic twin of bad_atomic_write.py."""

import json
from pathlib import Path

from repro.simulation.io import atomic_write_text


def pragma_escape_hatch(path, rows):
    with open(path, "w") as fh:  # repro-lint: allow[atomic-write]
        json.dump(rows, fh)


def atomic_is_the_way(path, rows):
    atomic_write_text(Path(path), json.dumps(rows))


def reading_is_fine(path):
    with open(path) as fh:
        return fh.read()


def explicit_read_mode_is_fine(path):
    with open(path, "rb") as fh:
        return fh.read()
