"""Fixture: every statement here violates the determinism rule."""

import random
import time
from datetime import datetime

import numpy as np


def unseeded_generator():
    return np.random.default_rng()


def global_numpy_draw(n):
    return np.random.random(n)


def stdlib_draw(items):
    random.shuffle(items)
    return random.choice(items)


def wall_clock_seed():
    return int(time.time()) ^ datetime.now().microsecond
