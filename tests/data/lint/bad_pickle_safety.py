"""Known-bad corpus: submit() payloads that die at the pickle boundary."""


def submit_lambda(pool, values):
    return pool.submit(lambda value: value + 1, values)


def submit_local_function(pool, item):
    def helper(value):
        return value * 2

    return pool.submit(helper, item)


def submit_lambda_alias(pool, item):
    transform = lambda value: value - 1  # noqa: E731
    return pool.submit(transform, item)


def submit_bound_method_of_local_class(pool, item):
    class Local:
        def work(self, value):
            return value

    worker = Local()
    return pool.submit(worker.work, item)


def submit_instance_of_local_class(pool, item):
    class Local:
        pass

    payload = Local()
    return pool.submit(item, payload)
