"""Clean twins of the interprocedural mutants: summaries prove safety.

Same cross-module shapes as ``interproc_leak_mutant`` and
``interproc_rng_mutant``, with the obligations actually discharged: the
helper-acquired executor is released through ``close_pool`` on every
path (including the return, which unwinds through the ``finally``), and
the parent respawns a fresh child stream instead of drawing from the
escaped one.  Zero findings with or without summaries.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from interproc_helpers import close_pool, make_pool, spawn_child


def releases_through_helper(jobs):
    pool = make_pool(2)
    try:
        return len(jobs)
    finally:
        close_pool(pool)


def respawns_after_escape(seed, jobs):
    ss = np.random.SeedSequence(seed)
    worker_rng = spawn_child(ss)
    results = []
    with ThreadPoolExecutor(max_workers=2) as pool:
        for job in jobs:
            results.append(pool.submit(job, worker_rng))
        local_rng = spawn_child(ss)
        baseline = float(local_rng.random())
    return baseline, [r.result() for r in results]
