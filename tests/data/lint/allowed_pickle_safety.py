"""Allowed corpus: module-level callables and plain data pickle fine."""


def module_level_worker(value):
    return value + 1


class ModuleLevelWorker:
    def work(self, value):
        return value * 2


def submit_module_function(pool, item):
    return pool.submit(module_level_worker, item)


def submit_bound_method_of_module_class(pool, item):
    worker = ModuleLevelWorker()
    return pool.submit(worker.work, item)


def submit_plain_data(pool, worker, payload):
    return pool.submit(worker, (payload, {"k": 1}, [2, 3]))


def suppressed_local_helper(pool, item):
    def helper(value):
        return value

    return pool.submit(helper, item)  # repro-lint: allow[pickle-safety]
