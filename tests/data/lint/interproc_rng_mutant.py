"""Escaped generator drawn in a callee: visible only with summaries.

``rng`` is spawn-derived (so the submit itself is fine) and escapes to
the pool workers; the parent then hands the same stream to
``draw_mean`` — a helper in another module that draws from it.  Without
summaries the helper call is opaque and the rule stays silent; with
them the callee's ``draws`` fact fires exactly one finding, on the
``draw_mean`` line.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from interproc_helpers import draw_mean


def parent(seed, jobs):
    ss = np.random.SeedSequence(seed)
    rng = np.random.default_rng(ss.spawn(1)[0])
    results = []
    with ThreadPoolExecutor(max_workers=2) as pool:
        for job in jobs:
            results.append(pool.submit(job, rng))
        baseline = draw_mean(rng, 8)
    return baseline, [r.result() for r in results]
