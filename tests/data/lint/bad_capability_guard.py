"""Fixture: isinstance dispatch against concrete graph backends."""

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


def record(graph, sink):
    if isinstance(graph, DynamicGraph):
        sink.append(graph.n)
    if isinstance(graph, (DynamicGraph, DynamicDiGraph)):
        sink.append("either")
