"""Packed-kernel contract compliance twin (fixture corpus; never imported).

Every construct the ``bad_`` twin gets wrong, done right: canonical
``(n + 63) >> 6`` widths, bitwise-only set algebra, identical-view
``out=`` targets, and complements that only ever appear under an AND
mask (including as the mask operand of a ``bitwise_and.at`` scatter).
"""

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_for",
    "zeros",
    "or_rows",
    "or_into_range",
    "clear_bits",
]

WORD_BITS = 64


def words_for(n_bits):
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def zeros(rows, n_bits):
    return np.zeros((rows, (n_bits + 63) >> 6), dtype=np.uint64)


def or_rows(bits, rows):
    return np.bitwise_or.reduce(bits[rows], axis=0)


def or_into_range(dst_bits, lo, src_block):
    hi = lo + src_block.shape[0]
    np.bitwise_or(dst_bits[lo:hi], src_block, out=dst_bits[lo:hi])


def clear_bits(bits, rows, cols):
    mask = np.zeros(bits.shape[1], dtype=np.uint64)
    keep = bits[rows] & ~mask
    np.bitwise_and.at(bits, rows, ~mask)
    return keep
