"""Allowed corpus: every acquisition is released on all paths (or handed off)."""
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory


def safe_with(path, payload):
    # with-managed handles release by construction
    with open(path, "w") as handle:  # repro-lint: allow[atomic-write]
        handle.write(payload)


def safe_finally(path, payload):
    handle = open(path, "w")  # repro-lint: allow[atomic-write]
    try:
        handle.write(payload)
    finally:
        handle.close()


def safe_ownership_transfer(registry):
    # the registry owns the segment now; releasing it is its problem
    shm = shared_memory.SharedMemory(create=True, size=64)
    registry.append(shm)


def safe_return():
    # returning the handle transfers ownership to the caller
    shm = shared_memory.SharedMemory(create=True, size=64)
    return shm


def safe_tmp(data, target):
    fd, tmp = tempfile.mkstemp()
    try:
        with os.fdopen(fd, "wb") as handle:  # repro-lint: allow[atomic-write]
            handle.write(data)
        os.replace(tmp, target)
    except BaseException:
        os.unlink(tmp)
        raise


def safe_pool(jobs, worker):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        return [pool.submit(worker, job).result() for job in jobs]
    finally:
        pool.shutdown()


class ManagedBlock:
    """Class-level obligations satisfied: close and unlink both present."""

    def acquire(self):
        self.shm = shared_memory.SharedMemory(create=True, size=64)

    def release(self):
        self.shm.close()
        self.shm.unlink()


def suppressed_leak():
    # justified exception documented here for the corpus
    shm = shared_memory.SharedMemory(create=True, size=64)  # repro-lint: allow[resource-leak]
    shm.buf[0] = 1
