"""Known-bad corpus: every acquisition here leaks on some CFG path."""
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory


def leak_plain():
    shm = shared_memory.SharedMemory(create=True, size=64)
    shm.buf[0] = 1
    # neither close() nor unlink() on any path


def leak_on_exception(path, payload):
    handle = open(path, "w")
    handle.write(payload)  # may raise -> the close below never runs
    handle.close()


def leak_tmp_path(data):
    fd, tmp = tempfile.mkstemp()
    os.close(fd)
    return len(data)  # tmp is never unlinked or replaced


def leak_pool(jobs, worker):
    pool = ProcessPoolExecutor(max_workers=2)
    futures = [pool.submit(worker, job) for job in jobs]
    results = [future.result() for future in futures]  # may raise
    pool.shutdown()
    return results


class BrokenBlock:
    """Class-level obligation: the segment is closed but never unlinked."""

    def acquire(self):
        self.shm = shared_memory.SharedMemory(create=True, size=64)

    def release(self):
        self.shm.close()
