"""Packed-kernel contract violations (fixture corpus; never imported).

Shaped like the kernel module (``WORD_BITS`` + ``words_for``) so the
definition-side checks run.  One violation per contract clause:
completeness, stale parameter, non-canonical widths (floor and true
division), arithmetic upcast, partially aliased ``out=``, aliased
augmented assignment, and an unmasked complement.
"""

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_for",
    "zeros",
    "renamed_kernel",
]

WORD_BITS = 64


def words_for(n_bits):
    return n_bits // 64


def zeros(rows, n_bits):
    return np.zeros((rows, n_bits / 64), dtype=np.uint64)


def renamed_kernel(bits):
    return bits


def popcount(words):
    return words


def or_rows(bits, rows):
    merged = bits[rows[0]] + bits[rows[1]]
    return merged


def transitive_closure_bits(bits, n_bits):
    reach = np.array(bits, dtype=np.uint64, copy=True)
    np.bitwise_or(reach, reach[0][None, :], out=reach)
    reach |= reach[0]
    inverted = ~reach
    return inverted
