"""Cross-function resource leak: visible only with callee summaries.

The executor is acquired through ``make_pool`` — a helper in another
module — and shut down on only one path out of ``leaky``.  Without the
interprocedural layer the helper call is opaque, no obligation is ever
created, and the rule stays silent; with summaries the factory's
``returns_resource`` fact creates the obligation and the early return
leaks it.  Exactly one finding, on the acquisition line.
"""

from interproc_helpers import make_pool


def leaky(jobs):
    pool = make_pool(2)
    if not jobs:
        return 0
    done = len(jobs)
    pool.shutdown()
    return done
