"""Fixture: the pragma'd twin of bad_determinism.py — lint must pass."""

import random
import time
from datetime import datetime

import numpy as np


def unseeded_generator():
    return np.random.default_rng()  # repro-lint: allow[determinism]


def global_numpy_draw(n):
    return np.random.random(n)  # repro-lint: allow[determinism]


def stdlib_draw(items):
    # repro-lint: allow[determinism]
    random.shuffle(items)
    return random.choice(items)  # repro-lint: allow[determinism]


def wall_clock_seed():
    return int(time.time()) ^ datetime.now().microsecond  # repro-lint: allow[determinism]


def seeded_is_always_fine(seed):
    rng = np.random.default_rng(seed)
    return rng.random(4)
