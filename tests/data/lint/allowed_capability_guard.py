"""Fixture: the pragma'd twin of bad_capability_guard.py — lint must pass."""

from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph


def record(graph, sink):
    if isinstance(graph, DynamicGraph):  # repro-lint: allow[capability-guard]
        sink.append(graph.n)
    # repro-lint: allow[capability-guard]
    if isinstance(graph, (DynamicGraph, DynamicDiGraph)):
        sink.append("either")


def capability_dispatch_is_fine(graph, sink):
    if hasattr(graph, "packed_rows"):
        sink.append("packed")
    if isinstance(sink, list):
        sink.append("plain isinstance against non-backends is fine")
