"""Known-bad corpus: generators cross the pool boundary without discipline."""
import numpy as np


def unspawned_into_pool(pool, worker, seed):
    rng = np.random.default_rng(seed)  # not SeedSequence.spawn-derived
    return pool.submit(worker, rng)


def unspawned_inside_payload(pool, worker, seed):
    rng = np.random.default_rng(seed)
    payload = {"rng": rng, "n": 8}
    return pool.submit(worker, payload)


def parent_draw_after_escape(pool, worker, entropy):
    seq = np.random.SeedSequence(entropy)
    rng = np.random.default_rng(seq.spawn(1)[0])
    future = pool.submit(worker, rng)
    jitter = rng.random()  # the worker owns that stream now
    return future, jitter
