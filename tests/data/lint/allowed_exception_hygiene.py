"""Fixture: the pragma'd/handled twin of bad_exception_hygiene.py."""

import logging

logger = logging.getLogger(__name__)


def bare_swallow(fn):
    try:
        return fn()
    except:  # noqa: E722  # repro-lint: allow[exception-hygiene]
        return None


def logging_is_fine(fn):
    try:
        return fn()
    except Exception:
        logger.warning("fn failed")
        return None


def reraise_is_fine(fn):
    try:
        return fn()
    except BaseException:
        raise


def using_the_exception_is_fine(fn, results):
    try:
        return fn()
    except Exception as exc:
        results.append(exc)
        return None


def narrow_is_fine(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        return None
