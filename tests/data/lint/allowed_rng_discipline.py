"""Allowed corpus: spawn-derived worker streams, parent keeps its own."""
import numpy as np


def spawned_child_into_pool(pool, worker, entropy):
    seq = np.random.SeedSequence(entropy)
    child = seq.spawn(1)[0]
    rng = np.random.default_rng(child)
    return pool.submit(worker, rng)


def spawn_key_into_pool(pool, worker, entropy, round_index):
    seq = np.random.SeedSequence(entropy, spawn_key=(round_index,))
    rng = np.random.default_rng(seq)
    return pool.submit(worker, rng)


def parent_keeps_its_own_stream(pool, worker, entropy):
    seq = np.random.SeedSequence(entropy)
    worker_rng = np.random.default_rng(seq.spawn(1)[0])
    parent_rng = np.random.default_rng(seq.spawn(1)[0])
    future = pool.submit(worker, worker_rng)
    return future, parent_rng.random()  # a different stream: fine


def entropy_ints_not_generators(pool, worker, entropy, count):
    # passing seed *material* (ints) is the house style; no generator escapes
    return [pool.submit(worker, entropy + i) for i in range(count)]


def suppressed_unspawned(pool, worker, seed):
    rng = np.random.default_rng(seed)
    return pool.submit(worker, rng)  # repro-lint: allow[rng-discipline]
