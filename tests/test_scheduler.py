"""Tests for activation schedules and the scheduled-process wrapper."""

import numpy as np
import pytest

from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.core.scheduler import (
    BernoulliActivation,
    FixedSubsetActivation,
    FullActivation,
    PoissonLikeActivation,
    RoundRobinActivation,
    ScheduledProcess,
)
from repro.graphs import generators as gen


class TestSchedules:
    def test_full_activation(self, rng):
        assert list(FullActivation().active_nodes(5, 0, rng)) == [0, 1, 2, 3, 4]

    def test_bernoulli_activation_rate(self, rng):
        sched = BernoulliActivation(0.5)
        counts = [len(list(sched.active_nodes(100, r, rng))) for r in range(200)]
        assert 35 < np.mean(counts) < 65
        with pytest.raises(ValueError):
            BernoulliActivation(0.0)
        with pytest.raises(ValueError):
            BernoulliActivation(1.5)

    def test_fixed_subset(self, rng):
        sched = FixedSubsetActivation([3, 1, 3])
        assert list(sched.active_nodes(10, 0, rng)) == [1, 3]
        with pytest.raises(ValueError):
            FixedSubsetActivation([])

    def test_fixed_subset_rejects_out_of_range_ids(self, rng):
        """Out-of-range ids raise at first use instead of silently shrinking."""
        sched = FixedSubsetActivation([1, 3])
        with pytest.raises(ValueError, match="node 3"):
            sched.active_nodes(2, 0, rng)
        # the same schedule is still usable at a valid size
        assert list(sched.active_nodes(4, 0, rng)) == [1, 3]
        with pytest.raises(ValueError, match="non-negative"):
            FixedSubsetActivation([-1, 2])

    def test_round_robin(self, rng):
        sched = RoundRobinActivation()
        assert list(sched.active_nodes(4, 0, rng)) == [0]
        assert list(sched.active_nodes(4, 5, rng)) == [1]

    def test_poisson_like(self, rng):
        sched = PoissonLikeActivation()
        picks = {list(sched.active_nodes(6, r, rng))[0] for r in range(200)}
        assert picks == set(range(6))


class TestScheduledProcess:
    def test_wrapper_converges_with_round_robin(self):
        g = gen.cycle_graph(8)
        proc = ScheduledProcess(PushDiscovery(g, rng=0), RoundRobinActivation())
        result = proc.run_to_convergence(max_rounds=100_000)
        assert result.converged
        assert g.is_complete()

    def test_one_node_per_tick_means_one_proposal_per_tick(self):
        g = gen.cycle_graph(8)
        proc = ScheduledProcess(PushDiscovery(g, rng=1), PoissonLikeActivation())
        result = proc.step()
        assert len(result.proposed_edges) <= 1
        assert result.messages_sent <= 2

    def test_asynchronous_ticks_roughly_n_times_synchronous_rounds(self):
        """n one-node ticks do the work of one synchronous round (within a small factor)."""
        n = 12
        sync_rounds = []
        async_ticks = []
        for seed in range(3):
            g_sync = gen.cycle_graph(n)
            sync_rounds.append(PushDiscovery(g_sync, rng=seed).run_to_convergence().rounds)
            g_async = gen.cycle_graph(n)
            wrapped = ScheduledProcess(PushDiscovery(g_async, rng=seed), PoissonLikeActivation())
            async_ticks.append(wrapped.run_to_convergence(max_rounds=500_000).rounds)
        ratio = np.mean(async_ticks) / (n * np.mean(sync_rounds))
        assert 0.3 < ratio < 3.0

    def test_fixed_subset_connects_every_active_incident_pair_only(self):
        # With only the even nodes acting, every pair touching an active node
        # eventually appears (pull edges are always incident to the actor),
        # but pairs of two passive nodes can never be created.
        g = gen.cycle_graph(10)
        active = list(range(0, 10, 2))
        proc = ScheduledProcess(PullDiscovery(g, rng=2), FixedSubsetActivation(active))
        proc.run(5000)
        active_set = set(active)
        for u in range(10):
            for v in range(u + 1, 10):
                if u in active_set or v in active_set:
                    assert g.has_edge(u, v), f"active-incident pair ({u},{v}) missing"
        # the cycle's only passive-passive edges are the original ones, so the
        # graph cannot be complete
        assert not g.is_complete()

    def test_pass_through_properties(self):
        g = gen.cycle_graph(6)
        proc = ScheduledProcess(PushDiscovery(g, rng=0), FullActivation())
        assert proc.graph is g
        assert not proc.is_converged()
        proc.step()
        assert proc.process.round_index == 1
