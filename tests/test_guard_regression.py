"""Pinning the silent-no-op guard bug class shut (PR 5).

Two seed-era layers still gated on ``isinstance(graph, DynamicGraph)``:
``EvolutionTracker`` silently recorded zero snapshots on the array backend,
and ``NetworkSimulator`` rejected ``ArrayGraph`` topologies outright —
the same failure mode PR 3 removed from the baselines and PR 4 removed
from the activation schedules.  These tests

* run every recorder/callback (``EvolutionTracker``, the E8 degree-growth
  watcher, ``MetricsRecorder``, ``TraceRecorder``) over **both** backends
  and assert non-empty, matching output;
* assert no ``isinstance(.., DynamicGraph)`` guard survives outside
  ``repro/graphs/`` (a lint-style sweep over the source tree), so the bug
  class cannot silently return.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.degree_growth import _MinDegreeWatcher
from repro.core.metrics import MetricsRecorder
from repro.graphs import generators as gen
from repro.graphs.array_adjacency import as_backend
from repro.network.simulator import NetworkSimulator
from repro.simulation.engine import make_process
from repro.simulation.trace import TraceRecorder
from repro.social.evolution import EvolutionTracker, simulate_social_evolution
from repro.social.group_discovery import discover_group

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

BACKENDS = ["list", "array"]


def run_with_callback(backend, callback, n=16, rounds=12, seed=3):
    proc = make_process("push", gen.cycle_graph(n), rng=seed, backend=backend)
    proc.run(rounds, callbacks=[callback])
    return proc


class TestRecordersOnBothBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_evolution_tracker_records_snapshots(self, backend):
        """Fails before the fix: the array backend recorded zero snapshots."""
        tracker = EvolutionTracker(every=4, probe_nodes=6, rng=1)
        run_with_callback(backend, tracker)
        assert len(tracker.snapshots) > 0
        assert all(s.num_edges > 0 for s in tracker.snapshots)

    def test_evolution_tracker_backend_equivalence(self):
        """Same seed, same snapshots on either backend."""
        rows = {}
        for backend in BACKENDS:
            tracker = EvolutionTracker(every=4, probe_nodes=6, rng=1)
            run_with_callback(backend, tracker)
            rows[backend] = tracker.as_rows()
        assert rows["list"] == rows["array"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metrics_recorder_records(self, backend):
        recorder = MetricsRecorder()
        run_with_callback(backend, recorder)
        assert len(recorder.history) > 0
        assert recorder.edges_series().max() > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trace_recorder_records(self, backend):
        recorder = TraceRecorder()
        run_with_callback(backend, recorder)
        assert len(recorder.trace) > 0
        assert max(recorder.trace.min_degree) >= 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_degree_growth_watcher_records(self, backend):
        watcher = _MinDegreeWatcher([3, 4])
        run_with_callback(backend, watcher, rounds=60)
        assert watcher.hit_round  # at least one threshold reached

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_simulate_social_evolution_backends(self, backend):
        snaps = simulate_social_evolution(
            gen.cycle_graph(14), rounds=12, every=4, seed=2, backend=backend
        )
        assert len(snaps) >= 2  # baseline + at least one recorded round


class TestNetworkSimulatorBackends:
    def test_accepts_array_graph_topology(self):
        """Fails before the fix: TypeError for ArrayGraph."""
        topo = as_backend(gen.cycle_graph(10), "array")
        sim = NetworkSimulator(topo, protocol="push", rng=3)
        stats = sim.run_to_convergence(max_rounds=20_000)
        assert sim.is_converged()
        assert stats.discoveries > 0

    def test_same_seed_same_rounds_across_backends(self):
        list_sim = NetworkSimulator(gen.cycle_graph(10), protocol="push", rng=7)
        array_sim = NetworkSimulator(
            as_backend(gen.cycle_graph(10), "array"), protocol="push", rng=7
        )
        a = list_sim.run_to_convergence(max_rounds=20_000)
        b = array_sim.run_to_convergence(max_rounds=20_000)
        assert (a.rounds, a.messages_sent, a.discoveries) == (
            b.rounds,
            b.messages_sent,
            b.discoveries,
        )

    def test_still_rejects_directed_graphs(self):
        from repro.graphs.adjacency import DynamicDiGraph

        with pytest.raises(TypeError):
            NetworkSimulator(DynamicDiGraph(3, [(0, 1)]))


class TestGroupDiscoveryBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_discover_group_runs_on_backend(self, backend):
        host = gen.barabasi_albert_graph(48, 3, np.random.default_rng(0))
        result = discover_group(host, k=10, process="push", seed=5, backend=backend)
        assert result.converged
        assert result.group_size == 10

    def test_discover_group_list_array_equivalence(self):
        """The E9 scenario is trace-identical across backends for a fixed seed."""
        host = gen.barabasi_albert_graph(48, 3, np.random.default_rng(0))
        results = {
            backend: discover_group(host, k=10, process="push", seed=5, backend=backend)
            for backend in BACKENDS
        }
        assert results["list"].members == results["array"].members
        assert results["list"].rounds == results["array"].rounds


class TestNoStaleBackendGuards:
    """Thin shim: the guard sweep lives in repro-lint's capability-guard rule.

    The one-off AST sweep this class used to carry was generalized into
    ``repro.quality`` (see ``docs/linting.md``); this delegation keeps the
    historical entry point (and the CI step name) meaningful.
    """

    def test_no_isinstance_dynamicgraph_outside_graphs_layer(self):
        from repro.quality import run_lint

        offenders = run_lint(
            [SRC_ROOT], rules=["capability-guard"], include_project=False
        )
        assert not offenders, (
            "stale isinstance(DynamicGraph) backend guards found (use the "
            "capability checks from baselines/_packed.py instead): "
            f"{[str(f) for f in offenders]}"
        )
