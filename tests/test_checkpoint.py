"""Exact checkpoint/resume: the draw-for-draw equivalence contract.

The property pinned here is the crash-tolerance substrate's whole point:
a run checkpointed at any round and resumed — in this process or a fresh
one — reproduces the uninterrupted run exactly (same contact graphs, same
counters, same bit-generator end state), for every registered process, on
both graph backends, sharded and not.  The format tests pin the failure
modes: truncated envelopes, checksum mismatches and foreign versions all
refuse to resume instead of continuing from corrupt state.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen
from repro.simulation.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    capture_checkpoint,
    latest_checkpoint,
    load_checkpoint,
    restore_process,
    resume_from_checkpoint,
    save_checkpoint,
)
from repro.simulation.engine import (
    PROCESS_REGISTRY,
    make_process,
    measure_convergence_rounds,
)
from repro.simulation.sharding import SHARDABLE_PROCESSES, ShardedProcess

ALL_NAMES = sorted(PROCESS_REGISTRY)
SHARDABLE_NAMES = sorted(
    name
    for name, (ctor, _) in PROCESS_REGISTRY.items()
    if ctor in SHARDABLE_PROCESSES
)
BACKENDS = ("list", "array")
N = 12
SEED = 20120614
CHECKPOINT_AT = 4  # run this many rounds (capped by convergence) before snapshotting


def canon(edges):
    return sorted((int(u), int(v)) for u, v in edges)


def build(name: str, backend: str, shards: int = 1):
    rng = np.random.default_rng(SEED)
    _, needs_directed = PROCESS_REGISTRY[name]
    if needs_directed:
        graph = dgen.make_directed_family("random_strong", N, rng)
    else:
        graph = gen.make_family("cycle", N, rng)
    return make_process(
        name,
        graph,
        rng=rng,
        backend=backend,
        shards=shards,
        shard_seed=777 if shards > 1 else None,
        shard_parallel=False if shards > 1 else None,
    )


def assert_same_end_state(a, b) -> None:
    """The two processes agree on every piece of observable end state."""
    assert a.round_index == b.round_index
    assert a.total_edges_added == b.total_edges_added
    assert a.total_messages == b.total_messages
    assert a.total_bits == b.total_bits
    assert canon(a.graph.edges()) == canon(b.graph.edges())
    assert a.rng.bit_generator.state == b.rng.bit_generator.state
    assert a.is_converged() == b.is_converged()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ALL_NAMES)
def test_resume_equivalence_every_process(name, backend, tmp_path):
    """checkpoint-at-k + resume == uninterrupted, for the whole registry."""
    uninterrupted = build(name, backend)
    interrupted = build(name, backend)
    interrupted.run(max_rounds=CHECKPOINT_AT)
    k = interrupted.round_index  # fast convergers stop before CHECKPOINT_AT
    path = save_checkpoint(interrupted, tmp_path / f"round_{k:08d}")
    resumed = restore_process(load_checkpoint(path))
    assert_same_end_state(interrupted, resumed)

    uninterrupted.run_to_convergence()
    resumed.run_to_convergence()
    assert_same_end_state(uninterrupted, resumed)


@pytest.mark.parametrize("shards", [1, 3])
@pytest.mark.parametrize("name", SHARDABLE_NAMES)
def test_resume_equivalence_sharded(name, shards, tmp_path):
    """The sharded wrapper checkpoints and resumes through the same format."""
    uninterrupted = build(name, "array", shards=shards)
    interrupted = build(name, "array", shards=shards)
    interrupted.run(max_rounds=CHECKPOINT_AT)
    k = interrupted.round_index
    path = save_checkpoint(interrupted, tmp_path / f"round_{k:08d}")
    resumed = restore_process(load_checkpoint(path))
    try:
        if shards > 1:
            assert isinstance(resumed, ShardedProcess)
            assert resumed.shards == interrupted.shards
        uninterrupted.run_to_convergence()
        resumed.run_to_convergence()
        assert_same_end_state(uninterrupted, resumed)
    finally:
        for process in (uninterrupted, interrupted, resumed):
            close = getattr(process, "close", None)
            if close is not None:
                close()


def test_resume_from_checkpoint_reports_total_rounds(tmp_path):
    """resume_from_checkpoint's RunResult equals the uninterrupted run's."""
    uninterrupted = build("push", "list")
    reference = uninterrupted.run_to_convergence()

    interrupted = build("push", "list")
    interrupted.run(max_rounds=CHECKPOINT_AT)
    path = save_checkpoint(interrupted, tmp_path / "snap")
    result = resume_from_checkpoint(path)
    assert result.rounds == reference.rounds
    assert result.converged == reference.converged
    assert result.total_edges_added == reference.total_edges_added
    assert result.total_messages == reference.total_messages
    assert result.total_bits == reference.total_bits


def test_resume_in_fresh_process(tmp_path):
    """A brand-new interpreter resumes to the same end state (true crash shape)."""
    uninterrupted = build("pull", "array")
    uninterrupted.run_to_convergence()

    interrupted = build("pull", "array")
    interrupted.run(max_rounds=CHECKPOINT_AT)
    path = save_checkpoint(interrupted, tmp_path / "snap")

    script = (
        "import json, sys\n"
        "from repro.simulation.checkpoint import load_checkpoint, restore_process\n"
        f"process = restore_process(load_checkpoint({str(path)!r}))\n"
        "process.run_to_convergence()\n"
        "print(json.dumps({\n"
        "    'rounds': process.round_index,\n"
        "    'edges': sorted((int(u), int(v)) for u, v in process.graph.edges()),\n"
        "    'rng': str(process.rng.bit_generator.state),\n"
        "}))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        cwd=str(Path(__file__).resolve().parent.parent),
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    fresh = json.loads(out.stdout)
    assert fresh["rounds"] == uninterrupted.round_index
    assert [tuple(edge) for edge in fresh["edges"]] == canon(uninterrupted.graph.edges())
    assert fresh["rng"] == str(uninterrupted.rng.bit_generator.state)


def test_periodic_checkpoints_via_measure(tmp_path):
    """measure_convergence_rounds(checkpoint_every=) writes resumable snapshots."""
    rng = np.random.default_rng(SEED)
    graph = gen.make_family("cycle", N, rng)
    reference = measure_convergence_rounds(
        "push", graph, rng=np.random.default_rng(SEED), checkpoint_every=3,
        checkpoint_dir=tmp_path,
    )
    stems = sorted(p.stem for p in tmp_path.glob("round_*.json"))
    assert stems, "no checkpoints written"
    assert all(int(s.split("_")[1]) % 3 == 0 for s in stems)

    latest = latest_checkpoint(tmp_path)
    assert latest.stem == stems[-1]
    result = resume_from_checkpoint(latest)
    assert result.rounds == reference.rounds
    assert result.total_edges_added == reference.total_edges_added


def test_checkpoint_requires_dir():
    rng = np.random.default_rng(SEED)
    graph = gen.make_family("cycle", N, rng)
    with pytest.raises(ValueError, match="checkpoint_dir"):
        measure_convergence_rounds("push", graph, rng=rng, checkpoint_every=5)


def test_envelope_format_and_checksum(tmp_path):
    process = build("push", "array")
    process.run(max_rounds=2)
    path = save_checkpoint(process, tmp_path / "snap")
    envelope = json.loads(path.read_text())
    assert envelope["format"] == "repro-gossip-trial-checkpoint"
    assert envelope["version"] == CHECKPOINT_VERSION
    assert envelope["checksum"]["algorithm"] == "sha256"
    assert envelope["meta"]["process"] == "push"
    assert envelope["meta"]["round_index"] == process.round_index


def test_load_rejects_truncated_envelope(tmp_path):
    process = build("push", "list")
    process.run(max_rounds=2)
    path = save_checkpoint(process, tmp_path / "snap")
    raw = path.read_text()
    path.write_text(raw[: len(raw) // 2])
    with pytest.raises(CheckpointError, match="JSON"):
        load_checkpoint(path)


def test_load_rejects_corrupt_payload(tmp_path):
    process = build("push", "list")
    process.run(max_rounds=2)
    path = save_checkpoint(process, tmp_path / "snap")
    npz = path.with_suffix(".npz")
    data = npz.read_bytes()
    npz.write_bytes(data[:-1] + bytes([data[-1] ^ 0xFF]))
    with pytest.raises(CheckpointError, match="checksum"):
        load_checkpoint(path)


def test_load_rejects_unknown_version(tmp_path):
    process = build("push", "list")
    process.run(max_rounds=2)
    path = save_checkpoint(process, tmp_path / "snap")
    envelope = json.loads(path.read_text())
    envelope["version"] = CHECKPOINT_VERSION + 1
    path.write_text(json.dumps(envelope))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path)


def test_load_rejects_missing_payload(tmp_path):
    process = build("push", "list")
    process.run(max_rounds=2)
    path = save_checkpoint(process, tmp_path / "snap")
    path.with_suffix(".npz").unlink()
    with pytest.raises(CheckpointError, match="payload"):
        load_checkpoint(path)


def test_latest_checkpoint_empty_dir(tmp_path):
    with pytest.raises(CheckpointError, match="no round_"):
        latest_checkpoint(tmp_path)


def test_instance_patched_process_not_checkpointable():
    from repro.core.variants import ChurnModel

    process = build("push", "list")
    ChurnModel(process, rng=1)
    with pytest.raises(CheckpointError, match="instance-patched"):
        capture_checkpoint(process)


def test_unregistered_process_not_checkpointable():
    from repro.core.push import PushDiscovery

    class Custom(PushDiscovery):
        pass

    rng = np.random.default_rng(SEED)
    process = Custom(gen.make_family("cycle", N, rng), rng=rng)
    with pytest.raises(CheckpointError, match="not a registered process"):
        capture_checkpoint(process)
