"""Unit tests for the directed two-hop walk process."""

import pytest

from repro.core.directed import DirectedTwoHopWalk
from repro.graphs import directed_generators as dgen
from repro.graphs.adjacency import DynamicDiGraph, DynamicGraph
from repro.graphs.closure import is_transitively_closed, transitive_closure_edges
from repro.graphs import validation


class TestDirectedWalkBasics:
    def test_requires_directed_graph(self):
        with pytest.raises(TypeError):
            DirectedTwoHopWalk(DynamicGraph(3, [(0, 1)]))

    def test_target_closure_computed_at_start(self):
        g = dgen.directed_path(4)
        proc = DirectedTwoHopWalk(g, rng=0)
        assert proc.target_closure == transitive_closure_edges(dgen.directed_path(4))
        assert proc.missing_closure_edges() == {(0, 2), (0, 3), (1, 3)}

    def test_propose_follows_out_edges(self, rng):
        g = dgen.directed_cycle(5)
        proc = DirectedTwoHopWalk(g, rng=rng)
        for u in range(5):
            edge = proc.propose(u)
            # on a directed cycle the two-hop endpoint is exactly u+2
            assert edge == (u, (u + 2) % 5)

    def test_node_without_out_edges_proposes_none(self, rng):
        g = dgen.directed_path(3)
        proc = DirectedTwoHopWalk(g, rng=rng)
        assert proc.propose(2) is None

    def test_two_hop_back_to_self_is_no_proposal(self, rng):
        g = DynamicDiGraph(2, [(0, 1), (1, 0)])
        proc = DirectedTwoHopWalk(g, rng=rng)
        assert proc.propose(0) is None
        assert proc.is_converged()  # closure is already present

    def test_missing_counter_tracks_added_edges(self):
        g = dgen.directed_path(4)
        proc = DirectedTwoHopWalk(g, rng=1)
        before = len(proc.missing_closure_edges())
        proc.apply_edge((0, 2))
        assert len(proc.missing_closure_edges()) == before - 1

    def test_non_closure_edge_does_not_affect_counter(self):
        # Adding an edge not in the target closure (impossible for the real
        # process, but apply_edge is public) must not corrupt the counter.
        g = dgen.directed_path(4)
        proc = DirectedTwoHopWalk(g, rng=1)
        before = proc.missing_closure_edges()
        proc.apply_edge((3, 0))
        assert proc.missing_closure_edges() == before


class TestDirectedWalkConvergence:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: dgen.directed_cycle(8),
            lambda: dgen.bidirected_path(6),
            lambda: dgen.directed_path(6),
            lambda: dgen.layered_dag(3, 3),
            lambda: dgen.thm15_strong_lower_bound(8),
            lambda: dgen.thm14_weak_lower_bound(8),
        ],
    )
    def test_converges_to_transitive_closure(self, graph_factory):
        graph = graph_factory()
        target = transitive_closure_edges(graph)
        proc = DirectedTwoHopWalk(graph, rng=5)
        result = proc.run_to_convergence()
        assert result.converged
        for u, v in target:
            assert graph.has_edge(u, v)
        assert is_transitively_closed(graph)
        assert validation.check_digraph_invariants(graph) == []

    def test_strongly_connected_converges_to_complete_digraph(self):
        g = dgen.thm15_strong_lower_bound(8)
        proc = DirectedTwoHopWalk(g, rng=3)
        proc.run_to_convergence()
        assert g.number_of_edges() == 8 * 7

    def test_determinism(self):
        runs = []
        for _ in range(2):
            g = dgen.directed_cycle(10)
            runs.append(DirectedTwoHopWalk(g, rng=77).run_to_convergence().rounds)
        assert runs[0] == runs[1]

    def test_edges_never_leave_initial_closure(self):
        # The process can only add edges (u, w) where w is reachable from u
        # in G_0, so the final edge set is contained in the target closure.
        g = dgen.layered_dag(3, 2)
        initial_edges = set(g.edges())
        proc = DirectedTwoHopWalk(g, rng=9)
        target = proc.target_closure
        proc.run_to_convergence()
        assert set(g.edges()) <= (target | initial_edges)

    def test_default_round_cap_quadratic(self):
        g = dgen.directed_cycle(16)
        proc = DirectedTwoHopWalk(g, rng=0)
        assert proc.default_round_cap() >= 16 * 16
