"""Unit tests for the analysis layer: scaling, non-monotonicity, degree growth, lower bounds."""

import numpy as np
import pytest

from repro.analysis.degree_growth import measure_degree_growth_phases
from repro.analysis.lower_bounds import lower_bound_ratio_check
from repro.analysis.nonmonotonicity import (
    exact_expected_convergence_time,
    monte_carlo_expected_convergence_time,
    nonmonotonicity_gap,
)
from repro.analysis.scaling import measure_scaling
from repro.graphs import generators as gen
from repro.graphs.adjacency import DynamicGraph
from repro.simulation import bounds


class TestExactExpectation:
    def test_complete_graph_takes_zero_rounds(self):
        assert exact_expected_convergence_time(gen.complete_graph(4), "push") == 0.0
        assert exact_expected_convergence_time(gen.complete_graph(3), "pull") == 0.0

    def test_triangle_plus_pendant_positive(self):
        val = exact_expected_convergence_time(gen.fig1c_nonmonotone(), "push")
        assert val > 1.0

    def test_known_value_single_missing_edge_push(self):
        # K4 minus one edge: only the two common neighbours of the missing
        # pair can add it, each with probability 2/9 per round (ordered pair
        # of distinct specific neighbours out of 3^2), so per round the edge
        # appears with probability 1 - (7/9)^2 and E[T] = 1 / (1 - 49/81).
        g = gen.complete_minus_matching(4, 1)
        expected = 1.0 / (1.0 - (7.0 / 9.0) ** 2)
        assert exact_expected_convergence_time(g, "push") == pytest.approx(expected, rel=1e-9)

    def test_rejects_large_graphs(self):
        with pytest.raises(ValueError):
            exact_expected_convergence_time(gen.cycle_graph(8), "push")

    def test_rejects_unknown_process(self):
        with pytest.raises(ValueError):
            exact_expected_convergence_time(gen.complete_graph(3), "flood")

    def test_pull_le_push_on_path(self):
        # Empirically the two-hop walk completes small paths faster than
        # triangulation (endpoints can act); sanity-check the exact engine
        # reproduces that ordering.
        path = gen.fig1c_path_subgraph()
        assert exact_expected_convergence_time(path, "pull") < exact_expected_convergence_time(
            path, "push"
        )


class TestMonteCarloExpectation:
    def test_matches_exact_within_error(self):
        g = gen.fig1c_nonmonotone()
        exact = exact_expected_convergence_time(g, "push")
        mean, sem = monte_carlo_expected_convergence_time(g, "push", trials=1500, seed=0)
        assert abs(mean - exact) < max(5 * sem, 0.3)

    def test_deterministic_given_seed(self):
        g = gen.fig1c_nonmonotone()
        a = monte_carlo_expected_convergence_time(g, "push", trials=50, seed=3)
        b = monte_carlo_expected_convergence_time(g, "push", trials=50, seed=3)
        assert a == b

    def test_rejects_unknown_process(self):
        with pytest.raises(ValueError):
            monte_carlo_expected_convergence_time(gen.complete_graph(3), "flood")


class TestNonmonotonicity:
    def test_fig1c_gap_positive_for_push(self):
        gap = nonmonotonicity_gap("push")
        assert gap["fig1c_gap"] > 0
        assert gap["fig1c_triangle"] == 0.0

    def test_same_node_set_pair_gap_positive_for_push(self):
        gap = nonmonotonicity_gap("push")
        assert gap["pair_gap"] > 0
        assert gap["pair_diamond"] > gap["pair_cycle4"]

    def test_exact_values_match_hand_computation(self):
        # The 4-cycle and diamond expected times are exactly computable; pin
        # them to guard against regressions in the exact engine.
        gap = nonmonotonicity_gap("push")
        assert gap["pair_cycle4"] == pytest.approx(2.0792, abs=1e-3)
        assert gap["pair_diamond"] == pytest.approx(2.5312, abs=1e-3)


class TestScalingMeasurement:
    def test_push_cycle_scaling_shape(self):
        m = measure_scaling("push", "cycle", sizes=[8, 16, 32], trials=2, seed=1)
        assert len(m.mean_rounds) == 3
        assert m.mean_rounds[0] < m.mean_rounds[-1]
        # between the lower bound (n log n -> exponent ~1+) and a loose cap
        assert 0.9 < m.power_fit.exponent < 2.0
        rows = m.as_rows()
        assert len(rows) == 3 and rows[0]["n"] == 8

    def test_normalized_by_bound(self):
        m = measure_scaling("push", "cycle", sizes=[8, 16], trials=2, seed=2)
        ratios = m.normalized_by(bounds.n_log2_n)
        assert (ratios > 0).all()

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            measure_scaling("push", "cycle", sizes=[8], trials=1)


class TestDegreeGrowth:
    def test_phases_cover_growth_to_completion(self):
        g = gen.cycle_graph(16)
        phases = measure_degree_growth_phases(g, process="push", rng=3)
        assert phases, "at least one growth phase should be recorded"
        assert phases[-1].threshold == 15  # n - 1
        # thresholds strictly increase and rounds are non-decreasing
        thresholds = [p.threshold for p in phases]
        assert thresholds == sorted(set(thresholds))
        assert all(p.length >= 0 for p in phases)
        assert all(p.normalized_length >= 0 for p in phases)

    def test_growth_factor_validation(self):
        with pytest.raises(ValueError):
            measure_degree_growth_phases(gen.cycle_graph(8), growth_factor=1.0)

    def test_original_graph_untouched(self):
        g = gen.cycle_graph(12)
        measure_degree_growth_phases(g, process="pull", rng=1)
        assert g.number_of_edges() == 12


class TestLowerBoundCheck:
    def test_push_on_sparse_graphs_respects_n_log_n_shape(self):
        check = lower_bound_ratio_check(
            "push",
            instance_factory=gen.cycle_graph,
            sizes=[8, 16, 32],
            bound=bounds.n_log_n,
            trials=2,
            seed=0,
        )
        assert check.non_vanishing
        assert all(r > 0.1 for r in check.ratios)
        assert check.power_fit_exponent > 0.9

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            lower_bound_ratio_check(
                "push", gen.cycle_graph, sizes=[8], bound=bounds.n_log_n
            )
