"""Unit tests for the social-evolution and group-discovery layers."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.social.evolution import EvolutionTracker, simulate_social_evolution
from repro.social.group_discovery import discover_group, sample_connected_group
from repro.graphs import properties as props


class TestEvolutionTracker:
    def test_snapshot_fields(self):
        g = gen.barabasi_albert_graph(30, 2, np.random.default_rng(0))
        tracker = EvolutionTracker(every=5, probe_nodes=8, rng=1)
        snap = tracker.snapshot(g, 0)
        assert snap.num_edges == g.number_of_edges()
        assert snap.mean_degree == pytest.approx(props.average_degree(g))
        assert snap.diameter is not None and snap.diameter >= 1
        assert snap.mean_second_degree >= 0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            EvolutionTracker(every=0)

    def test_simulate_social_evolution_series(self):
        g = gen.watts_strogatz_graph(24, 4, 0.1, np.random.default_rng(2))
        snaps = simulate_social_evolution(g, process="push", rounds=30, every=10, seed=3)
        # baseline + one snapshot per recorded round
        assert len(snaps) >= 3
        assert snaps[0].round_index == 0
        # the original graph is untouched
        assert g.number_of_edges() == gen.watts_strogatz_graph(
            24, 4, 0.1, np.random.default_rng(2)
        ).number_of_edges()

    def test_evolution_trends(self):
        """Triangulation should raise clustering and shrink the diameter over time."""
        g = gen.cycle_graph(20)
        snaps = simulate_social_evolution(g, process="push", rounds=120, every=30, seed=4)
        first, last = snaps[0], snaps[-1]
        assert last.num_edges > first.num_edges
        assert last.mean_degree > first.mean_degree
        assert last.diameter is not None and first.diameter is not None
        assert last.diameter <= first.diameter
        assert last.average_clustering >= first.average_clustering

    def test_as_rows(self):
        g = gen.cycle_graph(12)
        snaps = simulate_social_evolution(g, rounds=10, every=5, seed=0)
        tracker = EvolutionTracker(every=5)
        tracker.snapshots = snaps
        rows = tracker.as_rows()
        assert len(rows) == len(snaps)
        assert set(rows[0]) >= {"round", "edges", "clustering", "second_degree"}


class TestGroupDiscovery:
    def test_sample_connected_group(self):
        g = gen.grid_graph(5, 5)
        group = sample_connected_group(g, 8, rng=1)
        assert len(group) == 8
        sub, _ = g.subgraph(group)
        assert props.is_connected(sub)

    def test_sample_group_size_validation(self):
        g = gen.cycle_graph(10)
        with pytest.raises(ValueError):
            sample_connected_group(g, 0)
        with pytest.raises(ValueError):
            sample_connected_group(g, 11)

    def test_discover_group_with_explicit_members(self):
        host = gen.cycle_graph(30)
        result = discover_group(host, members=[0, 1, 2, 3, 4], seed=2)
        assert result.converged
        assert result.group_size == 5
        assert result.host_size == 30
        assert result.rounds > 0
        assert result.rounds_over_k_log2_k > 0

    def test_discover_group_sampled(self):
        host = gen.barabasi_albert_graph(60, 2, np.random.default_rng(3))
        result = discover_group(host, k=8, process="pull", seed=4)
        assert result.converged
        assert result.group_size == 8

    def test_exactly_one_of_members_or_k(self):
        host = gen.cycle_graph(10)
        with pytest.raises(ValueError):
            discover_group(host)
        with pytest.raises(ValueError):
            discover_group(host, members=[0, 1], k=3)

    def test_group_rounds_independent_of_host_size(self):
        """The O(k log^2 k) guarantee: same group size, very different hosts."""
        small_host = gen.cycle_graph(20)
        large_host = gen.cycle_graph(200)
        r_small = discover_group(small_host, members=list(range(8)), seed=5).rounds
        r_large = discover_group(large_host, members=list(range(8)), seed=5).rounds
        # identical induced subgraph (a path of 8) and identical seed -> identical rounds
        assert r_small == r_large
