"""Unit tests for the stopping predicates."""

import pytest

from repro.core import convergence as conv
from repro.core.directed import DirectedTwoHopWalk
from repro.core.push import PushDiscovery
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen


class TestPredicates:
    def test_complete_graph_reached_undirected(self):
        proc = PushDiscovery(gen.complete_graph(4), rng=0)
        assert conv.complete_graph_reached(proc)
        proc2 = PushDiscovery(gen.cycle_graph(5), rng=0)
        assert not conv.complete_graph_reached(proc2)

    def test_complete_graph_reached_directed(self):
        proc = DirectedTwoHopWalk(dgen.complete_digraph(4), rng=0)
        assert conv.complete_graph_reached(proc)
        proc2 = DirectedTwoHopWalk(dgen.directed_cycle(4), rng=0)
        assert not conv.complete_graph_reached(proc2)

    def test_closure_reached_delegates_to_process(self):
        proc = DirectedTwoHopWalk(dgen.complete_digraph(3), rng=0)
        assert conv.closure_reached(proc)
        proc2 = DirectedTwoHopWalk(dgen.directed_path(4), rng=0)
        assert not conv.closure_reached(proc2)

    def test_min_degree_reached(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        assert conv.min_degree_reached(2)(proc)
        assert not conv.min_degree_reached(3)(proc)

    def test_min_degree_reached_directed_uses_out_degree(self):
        proc = DirectedTwoHopWalk(dgen.directed_cycle(5), rng=0)
        assert conv.min_degree_reached(1)(proc)
        assert not conv.min_degree_reached(2)(proc)

    def test_edge_count_reached(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        assert conv.edge_count_reached(6)(proc)
        assert not conv.edge_count_reached(7)(proc)

    def test_rounds_elapsed(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        pred = conv.rounds_elapsed(2)
        assert not pred(proc)
        proc.step()
        proc.step()
        assert pred(proc)

    def test_any_of_all_of(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        true_pred = conv.edge_count_reached(1)
        false_pred = conv.edge_count_reached(1000)
        assert conv.any_of(true_pred, false_pred)(proc)
        assert not conv.all_of(true_pred, false_pred)(proc)
        assert conv.all_of(true_pred, true_pred)(proc)

    def test_predicate_used_in_run(self):
        g = gen.cycle_graph(12)
        proc = PushDiscovery(g, rng=1)
        result = proc.run(10_000, until=conv.min_degree_reached(4))
        assert g.min_degree() >= 4
        assert result.converged
