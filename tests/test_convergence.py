"""Unit tests for the stopping predicates and the incremental counters behind them."""

import numpy as np
import pytest

from repro.core import convergence as conv
from repro.core.base import UpdateSemantics
from repro.core.directed import DirectedTwoHopWalk
from repro.core.pull import PullDiscovery
from repro.core.push import PushDiscovery
from repro.graphs import directed_generators as dgen
from repro.graphs import generators as gen


class TestPredicates:
    def test_complete_graph_reached_undirected(self):
        proc = PushDiscovery(gen.complete_graph(4), rng=0)
        assert conv.complete_graph_reached(proc)
        proc2 = PushDiscovery(gen.cycle_graph(5), rng=0)
        assert not conv.complete_graph_reached(proc2)

    def test_complete_graph_reached_directed(self):
        proc = DirectedTwoHopWalk(dgen.complete_digraph(4), rng=0)
        assert conv.complete_graph_reached(proc)
        proc2 = DirectedTwoHopWalk(dgen.directed_cycle(4), rng=0)
        assert not conv.complete_graph_reached(proc2)

    def test_closure_reached_delegates_to_process(self):
        proc = DirectedTwoHopWalk(dgen.complete_digraph(3), rng=0)
        assert conv.closure_reached(proc)
        proc2 = DirectedTwoHopWalk(dgen.directed_path(4), rng=0)
        assert not conv.closure_reached(proc2)

    def test_min_degree_reached(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        assert conv.min_degree_reached(2)(proc)
        assert not conv.min_degree_reached(3)(proc)

    def test_min_degree_reached_directed_uses_out_degree(self):
        proc = DirectedTwoHopWalk(dgen.directed_cycle(5), rng=0)
        assert conv.min_degree_reached(1)(proc)
        assert not conv.min_degree_reached(2)(proc)

    def test_edge_count_reached(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        assert conv.edge_count_reached(6)(proc)
        assert not conv.edge_count_reached(7)(proc)

    def test_rounds_elapsed(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        pred = conv.rounds_elapsed(2)
        assert not pred(proc)
        proc.step()
        proc.step()
        assert pred(proc)

    def test_any_of_all_of(self):
        proc = PushDiscovery(gen.cycle_graph(6), rng=0)
        true_pred = conv.edge_count_reached(1)
        false_pred = conv.edge_count_reached(1000)
        assert conv.any_of(true_pred, false_pred)(proc)
        assert not conv.all_of(true_pred, false_pred)(proc)
        assert conv.all_of(true_pred, true_pred)(proc)

    def test_predicate_used_in_run(self):
        g = gen.cycle_graph(12)
        proc = PushDiscovery(g, rng=1)
        result = proc.run(10_000, until=conv.min_degree_reached(4))
        assert g.min_degree() >= 4
        assert result.converged


class TestIncrementalCounters:
    """The cached degree/min-degree counters track the graph exactly."""

    @pytest.mark.parametrize("backend", ["list", "array"])
    @pytest.mark.parametrize("process_cls", [PushDiscovery, PullDiscovery])
    def test_degree_view_tracks_graph_every_round(self, process_cls, backend):
        proc = process_cls(gen.cycle_graph(16), rng=7, backend=backend)
        assert np.array_equal(proc.degree_view(), proc.graph.degrees())
        assert proc.cached_min_degree() == proc.graph.min_degree()
        for _ in range(40):
            proc.step()
            assert np.array_equal(proc.degree_view(), proc.graph.degrees())
            assert proc.cached_min_degree() == proc.graph.min_degree()

    @pytest.mark.parametrize("backend", ["list", "array"])
    def test_degree_view_tracks_directed_out_degrees(self, backend):
        proc = DirectedTwoHopWalk(dgen.directed_cycle(12), rng=3, backend=backend)
        for _ in range(30):
            proc.step()
            assert np.array_equal(proc.degree_view(), proc.graph.out_degrees())
            assert proc.cached_min_degree() == int(proc.graph.out_degrees().min())

    def test_degree_view_tracks_sequential_semantics(self):
        proc = PushDiscovery(gen.cycle_graph(10), rng=5, semantics=UpdateSemantics.SEQUENTIAL)
        for _ in range(25):
            proc.step()
            assert np.array_equal(proc.degree_view(), proc.graph.degrees())
            assert proc.cached_min_degree() == proc.graph.min_degree()

    def test_cache_self_heals_after_external_mutation(self):
        """Edges added behind the engine's back are picked up via the edge count."""
        proc = PushDiscovery(gen.cycle_graph(8), rng=0)
        assert proc.cached_min_degree() == 2
        proc.graph.add_edge(0, 4)
        assert np.array_equal(proc.degree_view(), proc.graph.degrees())
        assert proc.cached_min_degree() == proc.graph.min_degree()
