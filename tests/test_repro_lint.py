"""Tests for the repro-lint static-analysis subsystem (`repro.quality`).

Three layers of coverage:

* fixture corpus — for every file-scope rule, a known-bad snippet under
  ``tests/data/lint/`` must fire and its pragma'd twin must pass;
* framework semantics — pragma targeting, malformed/unknown/stale pragma
  findings, parse-error findings, rule selection, CLI exit codes;
* the real tree — ``src/repro/`` lints clean end-to-end (registry
  cross-check included), which is the contract CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.quality import CHECKER_REGISTRY, Finding, lint_text, main, run_lint
from repro.quality.registry_check import (
    RegistryConsistencyChecker,
    RegistrySnapshot,
    collect_snapshot,
    cross_check,
)

DATA = Path(__file__).parent / "data" / "lint"
SRC_ROOT = Path(__file__).parents[1] / "src" / "repro"

FILE_RULES = ["determinism", "capability-guard", "exception-hygiene", "atomic-write"]


# --------------------------------------------------------------------------- #
# fixture corpus: every rule fires on its bad twin, passes on the allowed one
# --------------------------------------------------------------------------- #
class TestFixtureCorpus:
    @pytest.mark.parametrize("rule", FILE_RULES)
    def test_bad_fixture_fires(self, rule):
        fixture = DATA / f"bad_{rule.replace('-', '_')}.py"
        findings = run_lint([fixture], rules=[rule], include_project=False)
        assert findings, f"{fixture.name} must produce {rule} findings"
        assert all(f.rule == rule for f in findings)
        assert all(f.path == str(fixture) and f.line > 0 for f in findings)

    @pytest.mark.parametrize("rule", FILE_RULES)
    def test_allowed_twin_passes(self, rule):
        fixture = DATA / f"allowed_{rule.replace('-', '_')}.py"
        findings = run_lint([fixture], rules=[rule], include_project=False)
        assert findings == [], [str(f) for f in findings]

    def test_bad_corpus_counts(self):
        # The bad determinism fixture has one violation per entropy source.
        fixture = DATA / "bad_determinism.py"
        findings = run_lint([fixture], rules=["determinism"], include_project=False)
        assert len(findings) >= 5  # default_rng, np draw, 2 stdlib, 2 wall-clock

    def test_allowed_corpus_is_fully_clean(self):
        # All rules together (pragmas from one rule must not trip another).
        for rule in FILE_RULES:
            fixture = DATA / f"allowed_{rule.replace('-', '_')}.py"
            findings = run_lint([fixture], include_project=False)
            assert findings == [], [str(f) for f in findings]


# --------------------------------------------------------------------------- #
# framework semantics
# --------------------------------------------------------------------------- #
class TestPragmas:
    def test_same_line_pragma_suppresses(self):
        src = "import numpy as np\nrng = np.random.default_rng()  # repro-lint: allow[determinism]\n"
        assert lint_text(src) == []

    def test_previous_line_pragma_suppresses_next_line(self):
        src = (
            "import numpy as np\n"
            "# repro-lint: allow[determinism]\n"
            "rng = np.random.default_rng()\n"
        )
        assert lint_text(src) == []

    def test_pragma_only_covers_its_line(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng()  # repro-lint: allow[determinism]\n"
            "b = np.random.default_rng()\n"
        )
        findings = lint_text(src)
        assert [f.line for f in findings] == [3]
        assert findings[0].rule == "determinism"

    def test_pragma_only_covers_its_rule(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: allow[atomic-write]\n"
        )
        rules = {f.rule for f in lint_text(src)}
        # The determinism finding survives AND the misdirected pragma is stale.
        assert rules == {"determinism", "pragma"}

    def test_malformed_pragma_is_a_finding(self):
        findings = lint_text("x = 1  # repro-lint: allow\n")
        assert [f.rule for f in findings] == ["pragma"]
        assert "malformed" in findings[0].message

    def test_unknown_rule_pragma_is_a_finding(self):
        findings = lint_text("x = 1  # repro-lint: allow[no-such-rule]\n")
        assert [f.rule for f in findings] == ["pragma"]
        assert "no-such-rule" in findings[0].message

    def test_unused_pragma_is_a_finding(self):
        findings = lint_text("x = 1  # repro-lint: allow[determinism]\n")
        assert [f.rule for f in findings] == ["pragma"]
        assert "unused" in findings[0].message

    def test_pragma_for_unselected_rule_is_not_stale(self):
        # Running a rule subset must not call other rules' pragmas unused.
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: allow[determinism]\n"
        )
        assert lint_text(src, rules=["atomic-write"]) == []

    def test_multi_rule_pragma(self):
        src = (
            "import numpy as np\n"
            "from pathlib import Path\n"
            "def f(p):\n"
            "    # repro-lint: allow[determinism, atomic-write]\n"
            "    Path(p).write_text(str(np.random.default_rng()))\n"
        )
        assert lint_text(src) == []


class TestFramework:
    def test_syntax_error_is_a_parse_finding(self):
        findings = lint_text("def broken(:\n")
        assert [f.rule for f in findings] == ["parse"]

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(KeyError):
            run_lint([DATA / "bad_determinism.py"], rules=["nope"])

    def test_findings_are_sorted_and_printable(self):
        findings = run_lint(
            [DATA / "bad_determinism.py", DATA / "bad_atomic_write.py"],
            include_project=False,
        )
        assert findings == sorted(findings)
        rendered = str(findings[0])
        assert findings[0].path in rendered and f"[{findings[0].rule}]" in rendered

    def test_registry_has_the_five_shipped_rules(self):
        assert set(FILE_RULES) | {"registry-consistency"} <= set(CHECKER_REGISTRY)

    def test_io_py_is_exempt_from_atomic_write(self):
        checker = CHECKER_REGISTRY["atomic-write"]()
        assert not checker.applies_to(SRC_ROOT / "simulation" / "io.py")
        assert checker.applies_to(SRC_ROOT / "analysis" / "report.py")

    def test_graphs_layer_is_exempt_from_capability_guard(self):
        checker = CHECKER_REGISTRY["capability-guard"]()
        assert not checker.applies_to(SRC_ROOT / "graphs" / "adjacency.py")
        assert checker.applies_to(SRC_ROOT / "simulation" / "engine.py")


# --------------------------------------------------------------------------- #
# registry-consistency
# --------------------------------------------------------------------------- #
class TestRegistryConsistency:
    def test_allowed_snapshot_is_clean(self):
        snapshot = RegistrySnapshot.from_json(
            json.loads((DATA / "allowed_registry.json").read_text())
        )
        assert cross_check(snapshot) == []

    def test_bad_snapshot_fires_every_invariant(self):
        snapshot = RegistrySnapshot.from_json(
            json.loads((DATA / "bad_registry.json").read_text())
        )
        problems = cross_check(snapshot)
        anchors = {anchor for anchor, _ in problems}
        assert anchors == {
            "array_backend",
            "shardable",
            "unshardable",
            "shard_kinds",
            "checkpoint",
            "cli",
        }
        messages = "\n".join(m for _, m in problems)
        assert "ghost" in messages  # stale exemption
        assert "pull_v2" in messages  # undeclared shard kind
        assert "push2" in messages  # ambiguous checkpoint lookup
        assert "carrier_pigeon" in messages  # bad CLI default

    def test_live_registries_are_consistent(self):
        assert cross_check(collect_snapshot()) == []

    def test_live_break_is_detected(self, monkeypatch):
        # Un-exempt the faulty variants: they are registered but unshardable,
        # so the invariant "registered => shardable or exempt" must fire.
        import repro.simulation.sharding as sharding

        monkeypatch.setattr(sharding, "UNSHARDABLE_PROCESSES", frozenset())
        findings = list(RegistryConsistencyChecker().check_project(None))
        assert findings
        assert all(isinstance(f, Finding) for f in findings)
        assert any("faulty_push" in f.message for f in findings)
        # The finding anchors at the SHARDABLE_PROCESSES definition site.
        assert any(f.path.endswith("sharding.py") and f.line > 1 for f in findings)


# --------------------------------------------------------------------------- #
# CLI entry points
# --------------------------------------------------------------------------- #
class TestCli:
    def test_exit_one_on_findings(self, capsys):
        assert main([str(DATA / "bad_determinism.py"), "--no-registry"]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out

    def test_exit_zero_on_clean(self, capsys):
        assert main([str(DATA / "allowed_determinism.py"), "--no-registry"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main([str(DATA / "bad_atomic_write.py"), "--no-registry", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload and all(
            set(item) == {"path", "line", "rule", "message"} for item in payload
        )

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in FILE_RULES + ["registry-consistency"]:
            assert rule in out

    def test_rule_selection(self, capsys):
        code = main(
            [str(DATA / "bad_determinism.py"), "--no-registry", "--rules", "atomic-write"]
        )
        assert code == 0  # determinism violations invisible to atomic-write

    def test_repro_gossip_lint_subcommand(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", "--list-rules"]) == 0
        assert "determinism" in capsys.readouterr().out
        assert cli_main(["lint", str(DATA / "bad_determinism.py"), "--no-registry"]) == 1


# --------------------------------------------------------------------------- #
# the real tree
# --------------------------------------------------------------------------- #
class TestSourceTreeIsClean:
    def test_src_repro_lints_clean_end_to_end(self):
        findings = run_lint([SRC_ROOT])
        assert findings == [], "\n" + "\n".join(str(f) for f in findings)


# --------------------------------------------------------------------------- #
# the satellite RNG fixes: explicit-seed contract regression tests
# --------------------------------------------------------------------------- #
class TestExplicitSeedContract:
    def test_generators_reject_none(self):
        from repro.graphs import generators as gen

        with pytest.raises(ValueError, match="explicit rng"):
            gen.erdos_renyi_graph(10, 0.5)

    def test_directed_generators_reject_none(self):
        from repro.graphs import directed_generators as dgen

        with pytest.raises(ValueError, match="explicit rng"):
            dgen.random_digraph(10, 0.5)

    def test_generators_accept_int_seed(self):
        from repro.graphs import generators as gen

        a = gen.erdos_renyi_graph(16, 0.3, rng=7)
        b = gen.erdos_renyi_graph(16, 0.3, rng=np.random.default_rng(7))
        assert sorted(a.edge_list()) == sorted(b.edge_list())

    def test_lemma2_rejects_none_and_accepts_int(self):
        from repro.analysis import theory

        with pytest.raises(ValueError, match="explicit rng"):
            theory.lemma2_empirical_quantile(m=20, trials=10)
        f1, b1 = theory.lemma2_empirical_quantile(m=20, trials=10, rng=3)
        f2, b2 = theory.lemma2_empirical_quantile(
            m=20, trials=10, rng=np.random.default_rng(3)
        )
        assert (f1, b1) == (f2, b2)

    def test_deterministic_families_still_work_without_rng(self):
        from repro.graphs import generators as gen

        assert gen.make_family("cycle", 8).n == 8
